#!/usr/bin/env bash
# Hermetic CI gate: every step runs with --offline and must pass with the
# network unplugged (the workspace has zero crates.io dependencies — see
# DESIGN.md §4a). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q 2>&1 | tee /tmp/devudf-ci-test.txt

echo "==> doctests (every module example must run)"
cargo test --offline --workspace --doc -q

# The failure-injection suite asserts "never hang" semantics (socket
# deadlines, retry budgets, the server's mid-frame deadline). Re-run it
# under a hard wall-clock cap so a regression that reintroduces an
# unbounded wait fails CI instead of wedging it.
echo "==> fault-injection suite under hard timeout"
timeout --kill-after=10 120 cargo test --offline -q --test failures

# Telemetry must compile to no-ops with the feature off: build and test
# crates/obs on its --no-default-features path, then run its full suite
# with the feature on.
echo "==> obs telemetry suite (feature on + no-op path)"
cargo test --offline -q -p obs
cargo build --offline -p obs --no-default-features
cargo test --offline -q -p obs --no-default-features

# The chunked transfer container must put identical bytes on the wire no
# matter how wide the codec pool is (DESIGN.md §11): run the digest
# printer single-threaded and with the default pool and diff the output.
echo "==> transfer wire-determinism digests (1 thread vs default pool)"
DEVUDF_POOL_THREADS=1 cargo run --offline --release -q -p devudf-bench --bin transfer_digest \
  > /tmp/devudf-digest-t1.txt
cargo run --offline --release -q -p devudf-bench --bin transfer_digest \
  > /tmp/devudf-digest-default.txt
diff /tmp/devudf-digest-t1.txt /tmp/devudf-digest-default.txt
echo "digests identical"

# Throughput guards, all ratio-normalized so host drift cancels out:
#  - the compressed/1000 extract must stay within 10% of the committed
#    BENCH_transfer.json baseline, normalized by plain/1000;
#  - the pylite bytecode VM must keep its Scenario-A speedup over the
#    AST walker (committed BENCH_pylite_vm.json documents >=5x; the
#    live re-measurement passes at a noise-tolerant 3x floor);
#  - the Froid-style inlined UDF plan must keep its Scenario-A speedup
#    over the bytecode VM, end-to-end through the SQL engine (committed
#    BENCH_udf_inline.json documents >=3x; live floor 2x);
#  - observability must stay effectively free when idle: the committed
#    BENCH_profile.json documents Scenario A within 1% of a
#    telemetry-disabled build with nothing listening and within 5% under
#    a live trace capture (live floors 1.25x / 1.50x — the guard catches
#    an idle-path hook doing real work, which shows up as 2x+);
#  - 16 concurrent TCP sessions must not run queries slower than one
#    session (committed BENCH_server_concurrency.json; the floor is
#    core-count-aware — a real speedup is only demanded on >=8 cores,
#    elsewhere the guard catches a convoying scheduler at ~0.5x);
#  - the embedded transport must keep beating the TCP wire on input
#    extraction (committed BENCH_embedded.json documents >=5x on 200k
#    rows; live floor 2x — an embedded path that starts serializing
#    again lands near 1x).
echo "==> bench guards (transfer codec + bytecode VM + UDF inlining + observability + concurrency + embedded)"
cargo run --offline --release -q -p devudf-bench --bin bench_guard

# Embedded-mode smoke, no server anywhere: create a persistent data
# directory, then drive the import -> run loop over the in-process
# transport in a *separate* invocation (so the catalog demonstrably
# survives the WAL replay), checkpoint it, and verify the WAL folded.
echo "==> embedded mode smoke (WAL replay + checkpoint, no server)"
EMB_DIR=$(mktemp -d /tmp/devudf-ci-embedded.XXXXXX)
cargo run --offline --release -q -p devudf-ide --bin devudf open "$EMB_DIR/data" --demo \
  | grep -q "seeded demo data"
mkdir -p "$EMB_DIR/proj/.devudf"
cat > "$EMB_DIR/proj/.devudf/settings.json" <<EOF
{"host": "localhost", "port": 50000, "database": "demo",
 "user": "monetdb", "password": "monetdb",
 "debug_query": "SELECT mean_deviation(i) FROM numbers",
 "transfer": {"compress": false, "encrypt": false, "sample": null},
 "storage": {"data_dir": "$EMB_DIR/data", "fsync": "never"}}
EOF
cargo run --offline --release -q -p devudf-ide --bin devudf import "$EMB_DIR/proj" --embedded \
  | grep -q "imported mean_deviation"
cargo run --offline --release -q -p devudf-ide --bin devudf run "$EMB_DIR/proj" mean_deviation --embedded \
  | grep -q "result ="
cargo run --offline --release -q -p devudf-ide --bin devudf checkpoint "$EMB_DIR/data" \
  | grep -q "checkpointed"
cargo run --offline --release -q -p devudf-ide --bin devudf open "$EMB_DIR/data" \
  | grep -q "wal: empty"
rm -rf "$EMB_DIR"
echo "embedded smoke OK"

# End-to-end observability smoke over a real TCP socket: start the demo
# server, point a project at it, and check that `devudf trace` prints one
# stitched client->wire->server->engine span tree and `devudf profile`
# prints a per-line annotated source listing.
echo "==> devudf trace + profile smoke (real TCP)"
SMOKE_DIR=$(mktemp -d /tmp/devudf-ci-smoke.XXXXXX)
cargo run --offline --release -q -p devudf-ide --bin devudf serve \
  > /tmp/devudf-ci-serve.txt 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" /tmp/devudf-ci-serve.txt && break
  sleep 0.2
done
ADDR=$(sed -n 's/.*listening on //p' /tmp/devudf-ci-serve.txt | head -n1)
test -n "$ADDR" || { echo "demo server did not come up"; exit 1; }
mkdir -p "$SMOKE_DIR/.devudf"
cat > "$SMOKE_DIR/.devudf/settings.json" <<EOF
{"host": "${ADDR%:*}", "port": ${ADDR##*:}, "database": "demo",
 "user": "monetdb", "password": "monetdb",
 "debug_query": "SELECT mean_deviation(i) FROM numbers",
 "transfer": {"compress": false, "encrypt": false, "sample": null}}
EOF
cargo run --offline --release -q -p devudf-ide --bin devudf import "$SMOKE_DIR" mean_deviation
cargo run --offline --release -q -p devudf-ide --bin devudf trace "$SMOKE_DIR" \
  > /tmp/devudf-ci-trace.txt
grep -q "client.query" /tmp/devudf-ci-trace.txt
grep -q "server.command" /tmp/devudf-ci-trace.txt
grep -q "monet.op.scan" /tmp/devudf-ci-trace.txt
cargo run --offline --release -q -p devudf-ide --bin devudf profile "$SMOKE_DIR" mean_deviation \
  > /tmp/devudf-ci-profile.txt
grep -q "hits" /tmp/devudf-ci-profile.txt
grep -q "distance += column\[i\] - mean" /tmp/devudf-ci-profile.txt

# Concurrency smoke against the same live server: 8 clients trace the
# debug query simultaneously, each under a hard wall-clock cap so a
# scheduler deadlock or leaked queue slot fails CI instead of wedging it.
# Each client gets its own project dir (separate TCP session + cache).
echo "==> concurrent-session smoke (8 TCP clients under timeout)"
CONC_PIDS=()
for i in $(seq 1 8); do
  mkdir -p "$SMOKE_DIR/conc$i/.devudf"
  cp "$SMOKE_DIR/.devudf/settings.json" "$SMOKE_DIR/conc$i/.devudf/settings.json"
  timeout --kill-after=10 60 \
    cargo run --offline --release -q -p devudf-ide --bin devudf trace "$SMOKE_DIR/conc$i" \
    > "/tmp/devudf-ci-conc-$i.txt" 2>&1 &
  CONC_PIDS+=("$!")
done
for i in $(seq 1 8); do
  wait "${CONC_PIDS[$((i - 1))]}"
  grep -q "server.command" "/tmp/devudf-ci-conc-$i.txt"
done
cargo run --offline --release -q -p devudf-ide --bin devudf sessions "$SMOKE_DIR" \
  > /tmp/devudf-ci-sessions.txt
grep -q "peer" /tmp/devudf-ci-sessions.txt
echo "concurrent-session smoke OK (8 clients, sys.sessions answered)"

kill "$SERVE_PID" 2>/dev/null || true
trap - EXIT
rm -rf "$SMOKE_DIR"
echo "trace + profile smoke OK"

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

# Documentation gate: intra-repo markdown links must resolve, README's
# headline test count must match the run above, DESIGN § references must
# hit real headings, and BENCH_*.json mentions must match the committed
# baselines in both directions.
echo "==> doclint (markdown links + stale counts + stale baselines)"
DEVUDF_TEST_LOG=/tmp/devudf-ci-test.txt scripts/doclint.sh

echo "CI OK"
