#!/usr/bin/env bash
# Hermetic CI gate: every step runs with --offline and must pass with the
# network unplugged (the workspace has zero crates.io dependencies — see
# DESIGN.md §4a). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q 2>&1 | tee /tmp/devudf-ci-test.txt

echo "==> doctests (every module example must run)"
cargo test --offline --workspace --doc -q

# The failure-injection suite asserts "never hang" semantics (socket
# deadlines, retry budgets, the server's mid-frame deadline). Re-run it
# under a hard wall-clock cap so a regression that reintroduces an
# unbounded wait fails CI instead of wedging it.
echo "==> fault-injection suite under hard timeout"
timeout --kill-after=10 120 cargo test --offline -q --test failures

# Telemetry must compile to no-ops with the feature off: build and test
# crates/obs on its --no-default-features path, then run its full suite
# with the feature on.
echo "==> obs telemetry suite (feature on + no-op path)"
cargo test --offline -q -p obs
cargo build --offline -p obs --no-default-features
cargo test --offline -q -p obs --no-default-features

# The chunked transfer container must put identical bytes on the wire no
# matter how wide the codec pool is (DESIGN.md §11): run the digest
# printer single-threaded and with the default pool and diff the output.
echo "==> transfer wire-determinism digests (1 thread vs default pool)"
DEVUDF_POOL_THREADS=1 cargo run --offline --release -q -p devudf-bench --bin transfer_digest \
  > /tmp/devudf-digest-t1.txt
cargo run --offline --release -q -p devudf-bench --bin transfer_digest \
  > /tmp/devudf-digest-default.txt
diff /tmp/devudf-digest-t1.txt /tmp/devudf-digest-default.txt
echo "digests identical"

# Throughput guards, all ratio-normalized so host drift cancels out:
#  - the compressed/1000 extract must stay within 10% of the committed
#    BENCH_transfer.json baseline, normalized by plain/1000;
#  - the pylite bytecode VM must keep its Scenario-A speedup over the
#    AST walker (committed BENCH_pylite_vm.json documents >=5x; the
#    live re-measurement passes at a noise-tolerant 3x floor);
#  - the Froid-style inlined UDF plan must keep its Scenario-A speedup
#    over the bytecode VM, end-to-end through the SQL engine (committed
#    BENCH_udf_inline.json documents >=3x; live floor 2x).
echo "==> bench guards (transfer codec + bytecode VM + UDF inlining vs committed baselines)"
cargo run --offline --release -q -p devudf-bench --bin bench_guard

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

# Documentation gate: intra-repo markdown links must resolve and README's
# headline test count must match the run above.
echo "==> doclint (markdown links + stale counts)"
DEVUDF_TEST_LOG=/tmp/devudf-ci-test.txt scripts/doclint.sh

echo "CI OK"
