#!/usr/bin/env bash
# Hermetic CI gate: every step runs with --offline and must pass with the
# network unplugged (the workspace has zero crates.io dependencies — see
# DESIGN.md §4a). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

# The failure-injection suite asserts "never hang" semantics (socket
# deadlines, retry budgets, the server's mid-frame deadline). Re-run it
# under a hard wall-clock cap so a regression that reintroduces an
# unbounded wait fails CI instead of wedging it.
echo "==> fault-injection suite under hard timeout"
timeout --kill-after=10 120 cargo test --offline -q --test failures

# Telemetry must compile to no-ops with the feature off: build and test
# crates/obs on its --no-default-features path, then run its full suite
# with the feature on.
echo "==> obs telemetry suite (feature on + no-op path)"
cargo test --offline -q -p obs
cargo build --offline -p obs --no-default-features
cargo test --offline -q -p obs --no-default-features

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

echo "CI OK"
