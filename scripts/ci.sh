#!/usr/bin/env bash
# Hermetic CI gate: every step runs with --offline and must pass with the
# network unplugged (the workspace has zero crates.io dependencies — see
# DESIGN.md §4a). Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q

echo "CI OK"
