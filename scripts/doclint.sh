#!/usr/bin/env bash
# doclint: documentation consistency gate.
#
#  1. Every intra-repo markdown link in the top-level docs (README.md,
#     DESIGN.md, EXPERIMENTS.md, CHANGES.md) must resolve to a real file
#     or directory, and every `#anchor` must resolve to a real heading in
#     its target (GitHub slug rules: lowercase, punctuation stripped,
#     spaces become hyphens).
#  2. Every "<N> tests" claim in README.md must match the actual total
#     from `cargo test --workspace` output — so the headline count can
#     never go stale again.
#
# Standalone it runs the test suite itself; CI passes the already-captured
# log via DEVUDF_TEST_LOG to avoid a duplicate run.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md CHANGES.md)
fail=0

# GitHub-style heading slugs of a markdown file, one per line.
anchors_of() {
    grep -E '^#{1,6} ' "$1" | sed -E 's/^#+ +//' |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

echo "doclint: checking intra-repo links in ${DOCS[*]}"
for doc in "${DOCS[@]}"; do
    [[ -f "$doc" ]] || {
        echo "doclint: FAIL: $doc is missing"
        fail=1
        continue
    }
    # Every "](target)" in the file; external schemes are out of scope.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        file="${target%%#*}"
        anchor=""
        [[ "$target" == *#* ]] && anchor="${target#*#}"
        [[ -z "$file" ]] && file="$doc" # pure "#anchor" self-link
        if [[ ! -e "$file" ]]; then
            echo "doclint: FAIL: $doc links to missing path '$file'"
            fail=1
            continue
        fi
        if [[ -n "$anchor" ]]; then
            if [[ ! -f "$file" ]] || ! anchors_of "$file" | grep -qxF "$anchor"; then
                echo "doclint: FAIL: $doc links to '$target' but '$file' has no heading '#$anchor'"
                fail=1
            fi
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//' || true)
done

echo "doclint: checking README test-count claims"
if [[ -n "${DEVUDF_TEST_LOG:-}" && -r "${DEVUDF_TEST_LOG}" ]]; then
    test_log=$(cat "$DEVUDF_TEST_LOG")
else
    echo "doclint: (no DEVUDF_TEST_LOG; running cargo test to count)"
    test_log=$(cargo test --offline --workspace -q 2>&1)
fi
actual=$(printf '%s\n' "$test_log" |
    grep -E '^test result:' |
    awk -F'[ ;]+' '{ s += $4 } END { print s + 0 }')
if [[ "$actual" -eq 0 ]]; then
    echo "doclint: FAIL: could not parse a test count from the cargo test log"
    fail=1
else
    while IFS= read -r claim; do
        if [[ "$claim" -ne "$actual" ]]; then
            echo "doclint: FAIL: README.md claims '$claim tests' but cargo test reports $actual"
            fail=1
        fi
    done < <(grep -oE '[0-9]+ tests' README.md | awk '{ print $1 }')
    echo "doclint: cargo test reports $actual tests"
fi

# 3. Every DESIGN.md section reference must resolve to a real `## N.`
#    heading: "DESIGN[.md] §N" citations in any top-level doc, and bare
#    "§N" self-references inside DESIGN.md itself. Dotted ids (§2.1 …)
#    cite the *paper's* sections and are out of scope.
echo "doclint: checking DESIGN.md section references"
design_sections=$(grep -E '^## ' DESIGN.md | sed -E 's/^## ([0-9]+[a-z]?)\..*/\1/;t;d')
check_section() {
    local id="$1" where="$2"
    if ! printf '%s\n' "$design_sections" | grep -qxF "$id"; then
        echo "doclint: FAIL: $where references DESIGN.md §$id but DESIGN.md has no '## $id.' heading"
        fail=1
    fi
}
for doc in "${DOCS[@]}"; do
    [[ -f "$doc" ]] || continue
    while IFS= read -r ref; do
        check_section "${ref#§}" "$doc"
    done < <(grep -oE 'DESIGN(\.md)? §[0-9]+[a-z]?' "$doc" | grep -oE '§[0-9]+[a-z]?' || true)
done
while IFS= read -r ref; do
    check_section "${ref#§}" "DESIGN.md"
done < <(grep -oE '§[0-9]+[a-z]?(\.[0-9]+)?' DESIGN.md | grep -vE '\.' || true)

# 4. Bench baselines may not go stale in either direction: every
#    `BENCH_*.json` mentioned in the top-level docs must exist as a
#    committed file, and every committed `BENCH_*.json` must be
#    documented in EXPERIMENTS.md (an orphaned baseline is a perf claim
#    nobody can audit).
echo "doclint: checking BENCH_*.json baselines against docs"
for doc in "${DOCS[@]}"; do
    [[ -f "$doc" ]] || continue
    while IFS= read -r mention; do
        if [[ ! -f "$mention" ]]; then
            echo "doclint: FAIL: $doc mentions '$mention' but no such baseline is committed"
            fail=1
        fi
    done < <(grep -oE 'BENCH_[A-Za-z0-9_]+\.json' "$doc" | sort -u || true)
done
for baseline in BENCH_*.json; do
    [[ -e "$baseline" ]] || continue # unmatched glob
    if ! grep -qF "$baseline" EXPERIMENTS.md; then
        echo "doclint: FAIL: committed baseline '$baseline' is not documented in EXPERIMENTS.md"
        fail=1
    fi
done

if [[ "$fail" -ne 0 ]]; then
    echo "doclint: FAILED"
    exit 1
fi
echo "doclint: OK"
