//! Demo Scenario B (paper §2.5 + Listing 5): a *data-dependent* bug.
//!
//! The CSV loader iterates `range(0, len(files) - 1)`, silently skipping
//! the last file in the directory ("it considers that range is right side
//! inclusive"). Results look plausible — they are just computed on less
//! data. The debugger makes the skipped file visible immediately: `files`
//! has 3 entries, the loop counter stops at 1.
//!
//! One incidental deviation from the verbatim listing: files are opened as
//! `path + '/' + files[i]` because `os.listdir` returns bare names (the
//! paper's `open(files[i], …)` assumes the server's working directory; see
//! EXPERIMENTS.md L5).
//!
//! ```sh
//! cargo run --example scenario_b_data_loader
//! ```

use devudf::{DevUdf, Settings};
use pylite::{DebugCommand, Debugger};
use wireproto::{Server, ServerConfig};

const LISTING5: &str = concat!(
    "CREATE FUNCTION loadnumbers(path STRING) RETURNS TABLE(i INTEGER) LANGUAGE PYTHON {\n",
    "import os\n",
    "files = os.listdir(path)\n",
    "result = []\n",
    "for i in range(0, len(files) - 1):\n",
    "    file = open(path + '/' + files[i], 'r')\n",
    "    for line in file:\n",
    "        result.append(int(line))\n",
    "return result\n",
    "}"
);

const CSVS: &[(&str, &str)] = &[
    ("data/part1.csv", "1\n2\n3\n"),
    ("data/part2.csv", "4\n5\n6\n"),
    ("data/part3.csv", "7\n8\n9\n"),
];

fn main() {
    // The server's filesystem holds the CSV directory the demo ingests.
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        for (path, content) in CSVS {
            db.fs().write(path, content.as_bytes()).unwrap();
        }
        db.execute(LISTING5).unwrap();
    });

    let project = std::env::temp_dir().join(format!("devudf-scenario-b-{}", std::process::id()));
    std::fs::remove_dir_all(&project).ok();
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT * FROM loadnumbers('data')".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &project).unwrap();

    println!("── the loader runs 'fine' in the server, but the numbers are off:");
    let t = dev
        .server_query("SELECT sum(i), count(*) FROM loadnumbers('data')")
        .unwrap()
        .into_table()
        .unwrap();
    print!("{}", t.render_ascii());
    println!("expected sum(1..9) = 45 over 9 rows — we got less. Which file vanished?\n");

    println!("── devUDF: import and debug locally");
    dev.import(&["loadnumbers"]).unwrap();
    // Mirror the demo's CSV directory into the project so the local run
    // sees the same data (the demo setup step: CSVs live in one directory).
    for (path, content) in CSVS {
        dev.project
            .fs_provider()
            .write(path, content.as_bytes())
            .unwrap();
    }

    let dbg = Debugger::scripted(vec![DebugCommand::Continue; 64]);
    // Break on the loop header (body line 4) and watch the bound.
    dbg.borrow_mut()
        .add_breakpoint(5 + devudf::transform::BODY_LINE_OFFSET);
    dbg.borrow_mut().add_watch("files");
    dbg.borrow_mut().add_watch("len(files) - 1");
    dbg.borrow_mut().add_watch("i");
    let outcome = dev.debug_udf("loadnumbers", dbg.clone()).unwrap();
    println!("paused {} times at the file-open line:", outcome.pauses);
    for pause in dbg.borrow().pauses() {
        let w = &pause.watches;
        println!(
            "  {} = {}, loop bound = {}, i = {}",
            w[0].0, w[0].1, w[1].1, w[2].1
        );
    }
    println!("  3 files, but the loop bound is 2 → part3.csv is never opened.");
    println!("  `range(0, len(files) - 1)` excludes the end already; the -1 is the bug.\n");

    println!("── fix, verify locally, export");
    let script = dev.project.read_udf("loadnumbers").unwrap();
    dev.project
        .write_udf(
            "loadnumbers",
            &script.replace("range(0, len(files) - 1)", "range(0, len(files))"),
        )
        .unwrap();
    let local = dev.run_udf("loadnumbers").unwrap();
    println!("local result = {}", local.result_repr);
    dev.export(&["loadnumbers"]).unwrap();
    let t = dev
        .server_query("SELECT sum(i), count(*) FROM loadnumbers('data')")
        .unwrap()
        .into_table()
        .unwrap();
    println!("server after export:\n{}", t.render_ascii());

    std::fs::remove_dir_all(&project).ok();
    server.shutdown();
}
