//! Demo Scenario A (paper §2.5 + Listing 4): a *semantic* bug.
//!
//! `mean_deviation` accumulates `column[i] - mean` instead of
//! `abs(column[i] - mean)` — syntactically fine, logically wrong: the signed
//! deviations cancel to ~0. Print debugging shows only the wrong final
//! number; the interactive debugger shows `distance` going negative, which
//! is impossible for a true absolute deviation.
//!
//! ```sh
//! cargo run --example scenario_a_mean_deviation
//! ```

use devudf::{DevUdf, Settings};
use pylite::{DebugCommand, Debugger};
use wireproto::{Server, ServerConfig};

/// Paper Listing 4, verbatim body (the bug is on the `distance +=` line).
const LISTING4: &str = concat!(
    "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n",
    "mean = 0\n",
    "for i in range(0, len(column)):\n",
    "    mean += column[i]\n",
    "mean = mean / len(column)\n",
    "distance = 0\n",
    "for i in range(0, len(column)):\n",
    "    distance += column[i] - mean\n",
    "deviation = distance / len(column)\n",
    "return deviation\n",
    "}"
);

fn main() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        let values: Vec<String> = (1..=20).map(|i| format!("({i})")).collect();
        db.execute(&format!("INSERT INTO numbers VALUES {}", values.join(", ")))
            .unwrap();
        db.execute(LISTING4).unwrap();
    });

    let project = std::env::temp_dir().join(format!("devudf-scenario-a-{}", std::process::id()));
    std::fs::remove_dir_all(&project).ok();
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &project).unwrap();

    println!("── step 1: run the UDF the traditional way (inside the server)");
    let t = dev
        .server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    print!("{}", t.render_ascii());
    println!("mean |x - mean| of 1..20 should be 5.0, not 0.0. Why?\n");

    println!("── step 3: print debugging (the paper's 'simplistic strategy')");
    dev.server_query(
        &LISTING4
            .replace(
                "deviation = distance / len(column)",
                "print('distance is', distance)\ndeviation = distance / len(column)",
            )
            .replace("CREATE FUNCTION", "CREATE OR REPLACE FUNCTION"),
    )
    .unwrap();
    dev.server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap();
    print!("{}", dev.client().borrow_mut().last_udf_stdout());
    println!(
        "…one number, no insight into *when* it went wrong. Recreate + rerun for every probe.\n"
    );

    println!("── step 4: devUDF — import and debug interactively, locally");
    dev.import(&["mean_deviation"]).unwrap();
    let dbg = Debugger::scripted(vec![DebugCommand::Continue; 64]);
    // Break on the buggy accumulation line (body line 7).
    dbg.borrow_mut()
        .add_breakpoint(7 + devudf::transform::BODY_LINE_OFFSET);
    dbg.borrow_mut().add_watch("distance");
    let outcome = dev.debug_udf("mean_deviation", dbg.clone()).unwrap();
    println!(
        "paused {} times; watch values of `distance`:",
        outcome.pauses
    );
    for pause in dbg.borrow().pauses().iter().take(6) {
        println!("  line {}: distance = {}", pause.line, pause.watches[0].1);
    }
    println!("  …negative! A sum of absolute values can never be negative → missing abs().\n");

    println!("── fix locally, verify locally, export");
    let script = dev.project.read_udf("mean_deviation").unwrap();
    dev.project
        .write_udf(
            "mean_deviation",
            &script.replace(
                "distance += column[i] - mean",
                "distance += abs(column[i] - mean)",
            ),
        )
        .unwrap();
    let local = dev.run_udf("mean_deviation").unwrap();
    println!("local result = {}", local.result_repr);
    dev.export(&["mean_deviation"]).unwrap();
    let t = dev
        .server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    println!("server result after export:\n{}", t.render_ascii());

    std::fs::remove_dir_all(&project).ok();
    server.shutdown();
}
