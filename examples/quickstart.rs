//! Quickstart: the full devUDF loop in ~60 lines.
//!
//! Starts an embedded database server with one stored UDF, connects a
//! devUDF session, imports the UDF as a project file, runs it locally on
//! extracted input data, edits it, exports it back, and re-runs it
//! server-side.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use devudf::{DevUdf, Settings};
use wireproto::{Server, ServerConfig};

fn main() {
    // 1. A "MonetDB": in-memory columnar engine + wire server.
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
            .unwrap();
        db.execute(
            "CREATE FUNCTION double_it(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
        )
        .unwrap();
    });

    // 2. A devUDF session over a project directory.
    let project = std::env::temp_dir().join(format!("devudf-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&project).ok();
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT double_it(i) FROM t".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &project).unwrap();

    // 3. Import: the UDF body leaves the meta tables and becomes a file.
    let report = dev.import_all().unwrap();
    println!("imported: {:?}", report.imported);
    println!("--- generated local script (paper Listing 2 shape) ---");
    println!("{}", dev.project.read_udf("double_it").unwrap());

    // 4. Run locally: inputs are extracted via the server-side extract
    //    function, stored as input.bin, and the script runs in-process.
    let outcome = dev.run_udf("double_it").unwrap();
    println!("local result  = {}", outcome.result_repr);

    // 5. Edit the file (triple instead of double) and export it back.
    let script = dev.project.read_udf("double_it").unwrap();
    dev.project
        .write_udf("double_it", &script.replace("i * 2", "i * 3"))
        .unwrap();
    dev.export(&["double_it"]).unwrap();

    // 6. The server now runs the edited version.
    let table = dev
        .server_query("SELECT double_it(i) FROM t")
        .unwrap()
        .into_table()
        .unwrap();
    println!("server result after export:\n{}", table.render_ascii());

    std::fs::remove_dir_all(&project).ok();
    server.shutdown();
}
