//! Nested UDFs and loopback queries (paper §2.3, Listings 1 + 3).
//!
//! `find_best_classifier` issues loopback queries through `_conn`: one
//! plain data query (the testing set) and one *nested UDF call* — it trains
//! a random forest via `train_rnforest` for several `n_estimators`
//! candidates and keeps the best. devUDF runs the whole pipeline locally:
//! the outer UDF in the IDE, nested `train_rnforest` calls on inputs
//! extracted per loopback query.
//!
//! ```sh
//! cargo run --example nested_udfs
//! ```

use devudf::{DevUdf, Settings};
use wireproto::{Server, ServerConfig};

/// Paper Listing 1: the stored body of `train_rnforest`.
const TRAIN_RNFOREST: &str = concat!(
    "CREATE FUNCTION train_rnforest(data INTEGER, classes INTEGER, n_estimators INTEGER) ",
    "RETURNS TABLE(clf BLOB, estimators INTEGER) LANGUAGE PYTHON {\n",
    "import pickle\n",
    "from sklearn.ensemble import RandomForestClassifier\n",
    "clf = RandomForestClassifier(n_estimators)\n",
    "clf.fit(data, classes)\n",
    "return {'clf': pickle.dumps(clf), 'estimators': n_estimators}\n",
    "}"
);

/// Paper Listing 3 (adapted: `import numpy` added — the paper's listing
/// uses numpy without importing it — and the result is returned as a table).
const FIND_BEST: &str = concat!(
    "CREATE FUNCTION find_best_classifier(esttest INTEGER) ",
    "RETURNS TABLE(clf BLOB, n_estimators INTEGER) LANGUAGE PYTHON {\n",
    "import pickle\n",
    "import numpy\n",
    "(tdata, tlabels) = _conn.execute(\"\"\"SELECT data,\n",
    "    labels FROM testingset\"\"\")\n",
    "best_classifier = None\n",
    "best_classifier_answers = -1\n",
    "best_estimator = -1\n",
    "for estimator in esttest:\n",
    "    res = _conn.execute(\n",
    "        \"\"\"\n",
    "        SELECT *\n",
    "        FROM train_rnforest(\n",
    "            (SELECT data, labels\n",
    "            FROM trainingset), %d);\n",
    "        \"\"\" % estimator)\n",
    "    classifier = pickle.loads(res['clf'])\n",
    "    predictions = classifier.predict(tdata)\n",
    "    correct_predictions = predictions == tlabels\n",
    "    correct_ans = numpy.sum(correct_predictions)\n",
    "    if correct_ans > best_classifier_answers:\n",
    "        best_classifier = classifier\n",
    "        best_classifier_answers = correct_ans\n",
    "        best_estimator = estimator\n",
    "return {'clf': pickle.dumps(best_classifier), 'n_estimators': best_estimator}\n",
    "}"
);

fn seed(db: &monetlite::Engine) {
    // A learnable dataset: label = 1 iff feature > 6 (mod 13).
    db.execute("CREATE TABLE trainingset (data INTEGER, labels INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE testingset (data INTEGER, labels INTEGER)")
        .unwrap();
    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut state = 0xdead_beef_u64;
    for i in 0..240 {
        let x = i % 13;
        let mut y = (x > 6) as i64;
        if i % 3 == 0 {
            test.push(format!("({x}, {y})"));
        } else {
            // ~20% label noise in the training set: single trees overfit
            // the noise, so more estimators genuinely help.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.is_multiple_of(5) {
                y = 1 - y;
            }
            train.push(format!("({x}, {y})"));
        }
    }
    db.execute(&format!(
        "INSERT INTO trainingset VALUES {}",
        train.join(", ")
    ))
    .unwrap();
    db.execute(&format!(
        "INSERT INTO testingset VALUES {}",
        test.join(", ")
    ))
    .unwrap();
    // Candidate n_estimators values probed by the outer UDF.
    db.execute("CREATE TABLE candidates (est INTEGER)").unwrap();
    db.execute("INSERT INTO candidates VALUES (1), (4), (16)")
        .unwrap();
    db.execute(TRAIN_RNFOREST).unwrap();
    db.execute(FIND_BEST).unwrap();
}

fn main() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), seed);

    let project = std::env::temp_dir().join(format!("devudf-nested-{}", std::process::id()));
    std::fs::remove_dir_all(&project).ok();
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = Settings::default();
    settings.debug_query =
        "SELECT * FROM find_best_classifier((SELECT est FROM candidates))".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &project).unwrap();

    println!("── the stored UDF, as the meta tables show it (paper Listing 1):");
    let t = dev
        .server_query("SELECT name, func FROM sys.functions WHERE name = 'train_rnforest'")
        .unwrap()
        .into_table()
        .unwrap();
    print!("{}", t.render_ascii());

    println!("\n── run the nested pipeline inside the server:");
    let t = dev
        .server_query("SELECT n_estimators FROM find_best_classifier((SELECT est FROM candidates))")
        .unwrap()
        .into_table()
        .unwrap();
    print!("{}", t.render_ascii());

    println!("\n── devUDF: the same pipeline, locally");
    let report = dev.import_all().unwrap();
    println!(
        "imported {:?}",
        report.imported.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    // Nested-call discovery (§2.3): the outer body references train_rnforest.
    let info = dev.function_info("find_best_classifier").unwrap();
    let known = dev.server_functions().unwrap();
    let loopbacks = devudf::nested::find_loopback_queries(&info.body, &known);
    for q in &loopbacks {
        println!(
            "  loopback at body line {}: nested UDFs {:?}",
            q.line, q.udfs
        );
    }

    let outcome = dev.run_udf("find_best_classifier").unwrap();
    match &outcome.result {
        pylite::Value::Dict(d) => {
            let best = d
                .borrow()
                .get(&pylite::Value::str("n_estimators"))
                .unwrap()
                .unwrap();
            println!("\nlocal best n_estimators = {}", best.repr());
        }
        other => println!("\nlocal result = {}", other.repr()),
    }
    println!(
        "transfers performed: {} (1 outer input extraction + 1 per nested train_rnforest call)",
        dev.transfer_log().len()
    );

    std::fs::remove_dir_all(&project).ok();
    server.shutdown();
}
