//! Version control over UDFs (paper §1): "UDFs are stored within the
//! database server. As a result, version control systems such as Git cannot
//! be easily integrated." Once devUDF turns UDFs into project files, they
//! version like any other code — this example walks the full history loop.
//!
//! ```sh
//! cargo run --example version_control
//! ```

use devudf::{DevUdf, Settings};
use minivcs::ObjectId;
use wireproto::{Server, ServerConfig};

fn main() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (1), (2), (3), (4), (5), (6)")
            .unwrap();
        db.execute(concat!(
            "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n",
            "mean = 0\n",
            "for i in range(0, len(column)):\n",
            "    mean += column[i]\n",
            "mean = mean / len(column)\n",
            "distance = 0\n",
            "for i in range(0, len(column)):\n",
            "    distance += column[i] - mean\n",
            "return distance / len(column)\n",
            "}"
        ))
        .unwrap();
    });

    let project = std::env::temp_dir().join(format!("devudf-vcs-{}", std::process::id()));
    std::fs::remove_dir_all(&project).ok();
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &project).unwrap();
    dev.project.init_vcs().unwrap();

    println!("── import the UDF and commit the pristine version");
    dev.import_all().unwrap();
    let c1 = dev
        .project
        .commit_all("import mean_deviation from server", "dev")
        .unwrap();
    println!("committed {}", &c1[..10]);

    println!("\n── fix the bug locally and commit the fix");
    let script = dev.project.read_udf("mean_deviation").unwrap();
    dev.project
        .write_udf(
            "mean_deviation",
            &script.replace(
                "distance += column[i] - mean",
                "distance += abs(column[i] - mean)",
            ),
        )
        .unwrap();
    let c2 = dev
        .project
        .commit_all("fix: take the absolute deviation (Scenario A)", "dev")
        .unwrap();
    println!("committed {}", &c2[..10]);

    println!("\n── history (newest first):");
    let repo = dev.project.vcs().unwrap();
    for commit in repo.log().unwrap() {
        println!(
            "  {}  #{}  {}",
            &commit.id[..10],
            commit.seq,
            commit.message
        );
    }

    println!("\n── the diff between the two versions:");
    let diff = repo
        .diff_file(
            "mean_deviation.py",
            &ObjectId(c1.clone()),
            Some(&ObjectId(c2.clone())),
        )
        .unwrap();
    for line in diff
        .lines()
        .filter(|l| l.starts_with('+') || l.starts_with('-'))
    {
        println!("  {line}");
    }

    println!("\n── status after an uncommitted tweak:");
    let script = dev.project.read_udf("mean_deviation").unwrap();
    dev.project
        .write_udf("mean_deviation", &format!("{script}# reviewed\n"))
        .unwrap();
    for (path, status) in dev.project.vcs().unwrap().status().unwrap().entries {
        println!("  {status:?}: {path}");
    }

    println!("\n── checkout the buggy version again (time travel), then back:");
    repo.checkout(&ObjectId(c1)).unwrap();
    let restored = dev.project.read_udf("mean_deviation").unwrap();
    println!(
        "  buggy line restored: {}",
        restored.contains("distance += column[i] - mean")
    );
    repo.checkout(&ObjectId(c2)).unwrap();

    println!("\n── export the fixed version to the server and verify:");
    dev.export(&["mean_deviation"]).unwrap();
    let t = dev
        .server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    print!("{}", t.render_ascii());

    std::fs::remove_dir_all(&project).ok();
    server.shutdown();
}
