//! The data-transfer options of paper §2.1: compression, encryption,
//! sampling — with measured payload sizes and timings.
//!
//! ```sh
//! cargo run --release --example transfer_options
//! ```

use std::time::Instant;

use devudf::{DevUdf, Settings};
use wireproto::{Server, ServerConfig, TransferOptions};

fn main() {
    let rows = 200_000usize;
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), move |db| {
        db.execute("CREATE TABLE sensor (reading INTEGER)").unwrap();
        // Locally-correlated sensor readings: realistic and compressible.
        let mut state = 7u64;
        let mut values = Vec::with_capacity(rows);
        for idx in 0..rows {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            values.push(format!("({})", (idx / 64) % 500 + (state % 4) as usize));
        }
        for chunk in values.chunks(2000) {
            db.execute(&format!("INSERT INTO sensor VALUES {}", chunk.join(", ")))
                .unwrap();
        }
        db.execute(
            "CREATE FUNCTION analyze(reading INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\nreturn sum(reading) / len(reading)\n}",
        )
        .unwrap();
    });

    let project = std::env::temp_dir().join(format!("devudf-transfer-{}", std::process::id()));
    std::fs::remove_dir_all(&project).ok();
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT analyze(reading) FROM sensor".to_string();
    let dev = DevUdf::connect_in_proc(&server, settings, &project).unwrap();

    println!("extracting the inputs of analyze() over {rows} rows\n");
    println!(
        "{:<24} {:>12} {:>12} {:>8} {:>10}",
        "options", "raw bytes", "wire bytes", "ratio", "time"
    );
    let cases = [
        ("plain", TransferOptions::plain()),
        ("compress", TransferOptions::compressed()),
        ("encrypt", TransferOptions::encrypted()),
        (
            "compress+encrypt",
            TransferOptions {
                compress: true,
                encrypt: true,
                sample: None,
                ..Default::default()
            },
        ),
        ("sample 10%", TransferOptions::sampled(rows / 10)),
        ("sample 1%", TransferOptions::sampled(rows / 100)),
        (
            "sample 1% + compress",
            TransferOptions {
                compress: true,
                encrypt: false,
                sample: Some(rows / 100),
                ..Default::default()
            },
        ),
    ];
    for (label, opts) in cases {
        let start = Instant::now();
        let (_, stats) = dev
            .client()
            .borrow_mut()
            .extract_inputs("SELECT analyze(reading) FROM sensor", "analyze", opts)
            .unwrap();
        let elapsed = start.elapsed();
        println!(
            "{label:<24} {:>12} {:>12} {:>8.3} {:>10.1?}",
            stats.raw_len,
            stats.wire_len,
            stats.ratio(),
            elapsed
        );
    }

    println!(
        "\nwrong-password check: encrypted payloads are unreadable without the user's password"
    );
    let (payload_ok, _) = dev
        .client()
        .borrow_mut()
        .extract_inputs(
            "SELECT analyze(reading) FROM sensor",
            "analyze",
            TransferOptions::encrypted(),
        )
        .unwrap();
    drop(payload_ok);
    println!(
        "(decoding with the right password succeeded; wireproto tests cover the failure path)"
    );

    std::fs::remove_dir_all(&project).ok();
    server.shutdown();
}
