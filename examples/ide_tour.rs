//! A tour of the headless IDE: regenerates the paper's three figures as
//! text and walks the interactive debugger REPL on a scripted session.
//!
//! ```sh
//! cargo run --example ide_tour
//! ```

use devudf::Settings;
use devudf_ide::{HeadlessIde, ReplController, SharedBuf};
use std::io::Cursor;
use wireproto::{Server, ServerConfig};

fn main() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (3), (1), (4), (1), (5)")
            .unwrap();
        db.execute(concat!(
            "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n",
            "mean = 0\n",
            "for i in range(0, len(column)):\n",
            "    mean += column[i]\n",
            "mean = mean / len(column)\n",
            "distance = 0\n",
            "for i in range(0, len(column)):\n",
            "    distance += column[i] - mean\n",
            "return distance / len(column)\n",
            "}"
        ))
        .unwrap();
    });

    let project = std::env::temp_dir().join(format!("devudf-tour-{}", std::process::id()));
    std::fs::remove_dir_all(&project).ok();
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    settings.transfer.compress = true;
    let mut ide = HeadlessIde::open_in_proc(&server, settings, &project).unwrap();

    println!("════ Figure 1: the main menu ════");
    println!("{}", ide.render_main_menu());

    println!("════ Figure 2: the settings dialog ════");
    println!("{}\n", ide.render_settings_dialog());

    println!("════ Figure 3(a): Import UDFs ════");
    let mut import = ide.open_import_dialog().unwrap();
    import.import_all = true;
    println!("{}\n", import.render());
    ide.confirm_import(&import).unwrap();

    println!("════ the interactive debugger (scripted session) ════");
    // A scripted REPL session: look at locals, step, print a variable, go.
    let commands = "l\nn\np distance\nc\n";
    let out = SharedBuf::new();
    let controller = ReplController::new(Cursor::new(commands.to_string()), out.clone());
    let dbg = controller.into_debugger();
    dbg.borrow_mut()
        .add_breakpoint(8 + devudf::transform::BODY_LINE_OFFSET);
    ide.dev.debug_udf("mean_deviation", dbg).unwrap();
    println!("{}", out.contents());

    println!("════ Figure 3(b): Export UDFs ════");
    let mut export = ide.open_export_dialog().unwrap();
    export.toggle("mean_deviation");
    println!("{}", export.render());
    ide.confirm_export(&export).unwrap();
    println!("\nexported mean_deviation back to the server.");

    std::fs::remove_dir_all(&project).ok();
    server.shutdown();
}
