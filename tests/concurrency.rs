//! Concurrency suite for the read/write-split server (DESIGN §16).
//!
//! The invariants under test:
//!
//! * **Snapshot consistency** — a concurrent read never observes a torn
//!   mix of epochs: every row it sees comes from one catalog snapshot,
//!   even while the writer commits between its statements.
//! * **Read-your-writes** — a session's read after its own DML sees the
//!   mutation (the writer publishes the new snapshot before replying).
//! * **Backpressure** — a saturated bounded queue answers with the typed,
//!   retryable `ServerBusy` instead of queueing without limit.
//! * **Fairness** — pings answer inline; a pool full of slow reads cannot
//!   starve them.
//! * **Slot reclamation** — a client that disconnects mid-extract frees
//!   its scheduler slot; the server keeps serving.
//! * **Writer equivalence** — the scheduled server computes exactly what
//!   a single serialized engine computes.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wireproto::transport::{read_frame, write_frame};
use wireproto::{
    Client, ClientOptions, Message, RetryPolicy, Server, ServerConfig, TransferOptions, WireError,
    WireValue,
};

fn config() -> ServerConfig {
    ServerConfig::new("demo", "monetdb", "monetdb")
}

fn connect(server: &Server) -> Client {
    Client::connect_in_proc(server, "monetdb", "monetdb", "demo").unwrap()
}

/// A stored UDF that burns enough interpreter steps to hold a reader
/// worker for tens of milliseconds — long enough for every competing
/// session to reach the queue, far below the engine's step budget.
const SLOW_UDF: &str = "CREATE FUNCTION slow(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nx = 0\nfor i in range(0, 150000):\n    x = x + 1\nreturn x\n}";

fn int_cell(row: &[WireValue]) -> i64 {
    match row[0] {
        WireValue::Int(v) => v,
        WireValue::Null => 0,
        ref other => panic!("unexpected cell {other:?}"),
    }
}

// ---------------------------------------------------------------- snapshots

/// The torn-read property test: the writer runs a seeded random stream of
/// DML — every statement preserving the invariant "the column holds
/// balanced `(k, -k)` pairs" — while readers continuously sum the column.
/// Any snapshot between statements holds complete pairs, so `sum == 0`
/// and `count` even *always*; a single torn observation means a reader
/// saw half-applied state (a mix of epochs).
#[test]
fn concurrent_reads_never_observe_torn_snapshots() {
    let server = Server::start(config(), |db| {
        db.execute("CREATE TABLE pairs (v INTEGER)").unwrap();
    });
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let server = server.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut client = connect(&server);
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = client
                        .query("SELECT sum(v), count(v) FROM pairs")
                        .unwrap()
                        .into_table()
                        .unwrap();
                    let sum = int_cell(&t.rows[0]);
                    let count = match t.rows[0][1] {
                        WireValue::Int(v) => v,
                        ref other => panic!("unexpected count {other:?}"),
                    };
                    assert_eq!(sum, 0, "torn snapshot: sum {sum} over {count} rows");
                    assert_eq!(count % 2, 0, "torn snapshot: odd row count {count}");
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    // Seeded random DML stream; each op is one statement = one atomic
    // writer command. Inserts dominate so the table keeps growing.
    let mut rng = devharness::Rng::new(0xc0ffee);
    let mut writer = connect(&server);
    let mut live: Vec<i64> = Vec::new();
    let mut next_k = 1i64;
    for _ in 0..90 {
        match rng.next_u64() % 4 {
            // Insert a fresh balanced pair.
            0 | 1 => {
                let k = next_k;
                next_k += 1;
                writer
                    .query(&format!("INSERT INTO pairs VALUES ({k}), ({})", -k))
                    .unwrap();
                live.push(k);
            }
            // Delete one whole pair (both halves in one statement).
            2 if !live.is_empty() => {
                let idx = (rng.next_u64() as usize) % live.len();
                let k = live.swap_remove(idx);
                writer
                    .query(&format!("DELETE FROM pairs WHERE v = {k} OR v = {}", -k))
                    .unwrap();
            }
            // Flip every sign: rewrites all rows, preserves the invariant.
            _ => {
                writer.query("UPDATE pairs SET v = 0 - v").unwrap();
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers never ran");

    // Quiescent end state: exactly the surviving pairs.
    let t = writer
        .query("SELECT sum(v), count(v) FROM pairs")
        .unwrap()
        .into_table()
        .unwrap();
    assert_eq!(int_cell(&t.rows[0]), 0);
    assert_eq!(
        match t.rows[0][1] {
            WireValue::Int(v) => v,
            ref other => panic!("{other:?}"),
        },
        2 * live.len() as i64
    );
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn sessions_read_their_own_writes() {
    let server = Server::start(config(), |db| {
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    });
    let mut client = connect(&server);
    for i in 0..20i64 {
        client
            .query(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
        // The very next read — scheduled concurrently on a snapshot — must
        // already include the row the server just acknowledged.
        let t = client
            .query("SELECT count(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(int_cell(&t.rows[0]), i + 1);
    }
    server.shutdown();
}

// ------------------------------------------------------------- backpressure

/// With one reader worker and a one-slot queue, a burst of slow reads must
/// produce `ServerBusy` refusals — typed, transient, and harmless: the
/// refused commands never executed and the server stays healthy.
#[test]
fn saturated_read_queue_returns_typed_busy() {
    let server = Server::start(
        config().with_read_workers(1).with_queue_capacity(1, 1),
        |db| {
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            db.execute(SLOW_UDF).unwrap();
        },
    );
    let server = Arc::new(server);
    let busy = Arc::new(AtomicU32::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let server = server.clone();
            let busy = busy.clone();
            std::thread::spawn(move || {
                let mut client = connect(&server);
                match client.query("SELECT slow(i) FROM t") {
                    Ok(_) => {}
                    Err(err) => {
                        assert!(matches!(err, WireError::Busy(_)), "{err:?}");
                        assert!(err.is_transient(), "busy must be retryable");
                        busy.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // 8 near-simultaneous slow reads into 1 worker + 1 queue slot: most
    // must have been refused (≥1 even under the most generous scheduling).
    assert!(busy.load(Ordering::Relaxed) >= 1, "no busy refusals seen");
    // The server is unharmed and accepts the same query afterwards.
    let mut client = connect(&server);
    client.query("SELECT slow(i) FROM t").unwrap();
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

/// Busy refusals combined with a retry policy: the client transparently
/// backs off and lands the command once a slot frees up.
#[test]
fn retrying_clients_ride_out_saturation() {
    let server = Server::start(
        config().with_read_workers(1).with_queue_capacity(1, 1),
        |db| {
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            db.execute(SLOW_UDF).unwrap();
        },
    );
    let server = Arc::new(server);
    let retry = RetryPolicy {
        max_attempts: 50,
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        deadline: Some(Duration::from_secs(30)),
    };
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_in_proc_with(
                    &server,
                    "monetdb",
                    "monetdb",
                    "demo",
                    ClientOptions::with_retry(retry),
                )
                .unwrap();
                client.query("SELECT slow(i) FROM t").unwrap();
            })
        })
        .collect();
    // Every session completes despite the 1-worker/1-slot scheduler.
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

// ----------------------------------------------------------------- fairness

/// Pings answer inline on the session's own thread: a reader pool wedged
/// full of slow extracts cannot delay them.
#[test]
fn slow_reads_do_not_starve_pings() {
    let server = Server::start(
        config().with_read_workers(1).with_queue_capacity(1, 1),
        |db| {
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            db.execute(SLOW_UDF).unwrap();
        },
    );
    let server = Arc::new(server);
    let bg: Vec<_> = (0..2)
        .map(|_| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut client = connect(&server);
                // Occupy the worker and the queue slot (a refusal is fine
                // too — the pool stays busy either way).
                let _ = client.query("SELECT slow(i) FROM t");
            })
        })
        .collect();
    let mut client = connect(&server);
    std::thread::sleep(Duration::from_millis(5)); // let the slow reads land
    let started = Instant::now();
    client.ping().unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(250),
        "ping starved behind slow reads: {elapsed:?}"
    );
    for h in bg {
        h.join().unwrap();
    }
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

// --------------------------------------------------------- slot reclamation

/// A client that vanishes mid-extract (lossy link, killed IDE) must not
/// leak its scheduler slot: with a single reader worker, the next healthy
/// session's extract still completes.
#[test]
fn mid_extract_disconnect_frees_the_scheduler_slot() {
    let server = Server::start(
        config().with_read_workers(1).with_queue_capacity(4, 4),
        |db| {
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
            db.execute(SLOW_UDF).unwrap();
        },
    );
    let addr = server.listen_tcp().unwrap();

    // Raw TCP session: authenticate, fire an extract, vanish without
    // reading the reply.
    {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let login = Message::Login {
            user: "monetdb".into(),
            password: "monetdb".into(),
            database: "demo".into(),
        };
        write_frame(&mut stream, &login.encode()).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert!(matches!(
            Message::decode(&reply).unwrap(),
            Message::LoginOk { .. }
        ));
        let extract = Message::ExtractInputs {
            query: "SELECT slow(i) FROM t".into(),
            udf: "slow".into(),
            options: TransferOptions::plain(),
            transfer_id: 1,
        };
        write_frame(&mut stream, &extract.encode()).unwrap();
        drop(stream); // gone mid-extract
    }

    // The lone worker finishes the orphaned extract, notices the dead
    // peer, and serves the next session.
    let mut client = connect(&server);
    let (inputs, _) = client
        .extract_inputs("SELECT slow(i) FROM t", "slow", TransferOptions::plain())
        .unwrap();
    let (again, _) = client
        .extract_inputs("SELECT slow(i) FROM t", "slow", TransferOptions::plain())
        .unwrap();
    assert!(inputs.py_eq(&again), "healthy extracts stay deterministic");

    // The dead session eventually deregisters from the registry.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        // One live in-proc session (ours) is expected; the TCP ghost must
        // disappear once its connection thread observes the hangup.
        if server.session_count() <= 1 || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.session_count() <= 1,
        "disconnected session never deregistered"
    );
    server.shutdown();
}

// --------------------------------------------------------------- equivalence

/// Differential test: the scheduled, classified, snapshot-reading server
/// must compute exactly what one serialized engine computes for a mixed
/// read/write script.
#[test]
fn scheduled_server_matches_a_serialized_engine() {
    let script: Vec<String> = {
        let mut s = vec![
            "CREATE TABLE t (i INTEGER)".to_string(),
            "CREATE FUNCTION double_it(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return column * 2 }".to_string(),
        ];
        for k in 0..15i64 {
            s.push(format!("INSERT INTO t VALUES ({k}), ({})", k * 10));
            s.push("SELECT sum(i), count(i) FROM t".to_string());
            s.push("SELECT double_it(i) FROM t".to_string());
            s.push(format!("UPDATE t SET i = i + 1 WHERE i = {k}"));
            s.push("SELECT min(i), max(i) FROM t".to_string());
            if k % 5 == 4 {
                s.push(format!("DELETE FROM t WHERE i > {}", k * 9));
            }
        }
        s
    };

    // Reference: one bare engine, strictly serial.
    let reference: Vec<String> = {
        let db = monetlite::Engine::new();
        script
            .iter()
            .map(|sql| match db.execute(sql) {
                Ok(r) => format!(
                    "{:?}",
                    wireproto::message::WireResult::from_query_result(&r)
                ),
                Err(e) => format!("error {}", e.code.name()),
            })
            .collect()
    };

    // Candidate: the same script through the scheduling server.
    let server = Server::start(config(), |_| {});
    let mut client = connect(&server);
    let candidate: Vec<String> = script
        .iter()
        .map(|sql| match client.query(sql) {
            Ok(r) => format!("{r:?}"),
            Err(WireError::Server { code, .. }) => format!("error {code}"),
            Err(other) => panic!("unexpected transport error: {other:?}"),
        })
        .collect();
    server.shutdown();

    assert_eq!(reference, candidate);
}

// ------------------------------------------------------------- sys.sessions

#[test]
fn sys_sessions_lists_live_sessions() {
    let server = Server::start(config(), |db| {
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    });
    let mut a = connect(&server);
    let mut b = connect(&server);
    b.query("SELECT i FROM t").unwrap();
    let t = a
        .query("SELECT id, peer, state, commands FROM sys.sessions")
        .unwrap()
        .into_table()
        .unwrap();
    assert!(t.rows.len() >= 2, "expected both sessions: {:?}", t.rows);
    for row in &t.rows {
        assert!(matches!(row[1], WireValue::Str(ref p) if p == "in-proc"));
        assert!(
            matches!(row[2], WireValue::Str(ref s) if ["idle", "queued", "running"].contains(&s.as_str()))
        );
    }
    // The querying session is mid-command, so its counter is visible to
    // itself only after the fact; session b's completed work must show.
    let commands: Vec<i64> = t.rows.iter().map(|r| int_cell(&r[3..4])).collect();
    assert!(commands.iter().any(|&c| c >= 1), "{commands:?}");
    server.shutdown();
}
