//! Cross-crate property tests: invariants that must hold for arbitrary
//! data across the whole stack.

use proptest::prelude::*;

use devudf::transform;
use wireproto::client::FunctionInfo;
use wireproto::transfer::{decode_payload, encode_payload, sample_inputs};
use wireproto::TransferOptions;

use pylite::value::Dict;
use pylite::{Array, Value};

fn int_inputs(v: Vec<i64>) -> Value {
    let mut d = Dict::new();
    d.insert(Value::str("column"), Value::array(Array::Int(v)))
        .unwrap();
    Value::dict(d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode is identity for every option combination.
    #[test]
    fn transfer_pipeline_round_trips(
        data in proptest::collection::vec(any::<i64>(), 0..300),
        compress in any::<bool>(),
        encrypt in any::<bool>(),
        transfer_id in any::<u64>(),
    ) {
        let inputs = int_inputs(data);
        let options = TransferOptions { compress, encrypt, sample: None };
        let (payload, _) = encode_payload(&inputs, &options, "pw", transfer_id, 7).unwrap();
        let back = decode_payload(&payload, &options, "pw", transfer_id).unwrap();
        prop_assert!(back.py_eq(&inputs));
    }

    /// Sampling returns exactly min(k, n) rows and every value came from
    /// the original column.
    #[test]
    fn sampling_bounds_and_membership(
        data in proptest::collection::vec(-1000i64..1000, 1..200),
        k in 0usize..300,
        seed in any::<u64>(),
    ) {
        let n = data.len();
        let inputs = int_inputs(data.clone());
        let sampled = sample_inputs(&inputs, k, seed).unwrap();
        let Value::Dict(d) = &sampled else { panic!() };
        let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
        let Value::Array(a) = col else { panic!() };
        prop_assert_eq!(a.len(), k.min(n));
        for i in 0..a.len() {
            let Value::Int(x) = a.get(i) else { panic!() };
            prop_assert!(data.contains(&x));
        }
    }

    /// Import → export body transformation is the identity on arbitrary
    /// well-formed bodies.
    #[test]
    fn transform_round_trip_identity(
        n_lines in 1usize..12,
        seed in any::<u64>(),
    ) {
        // Generate a structured body: assignments, a loop, a return.
        let mut body = String::new();
        let mut s = seed | 1;
        for i in 0..n_lines {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            match s % 4 {
                0 => body.push_str(&format!("v{i} = {}\n", s % 100)),
                1 => body.push_str(&format!("v{i} = len(column) + {}\n", s % 10)),
                2 => body.push_str(&format!(
                    "for j{i} in range(0, 3):\n    acc{i} = j{i} * {}\n",
                    s % 7
                )),
                _ => body.push_str(&format!("s{i} = 'text {}'\n", s % 50)),
            }
        }
        body.push_str("return len(column)\n");
        let info = FunctionInfo {
            name: "generated".to_string(),
            params: vec![("column".to_string(), "INTEGER".to_string())],
            return_type: "INTEGER".to_string(),
            language: "PYTHON".to_string(),
            body: body.clone(),
        };
        let script = transform::to_local_script(&info);
        prop_assert!(pylite::parse_module(&script).is_ok(), "script must parse:\n{script}");
        let recovered = transform::extract_body(&script, "generated").unwrap();
        prop_assert_eq!(recovered, body);
    }

    /// The SQL engine's sum() agrees with Rust over arbitrary int columns.
    #[test]
    fn sql_aggregates_match_rust(data in proptest::collection::vec(-10_000i64..10_000, 1..80)) {
        let db = monetlite::Engine::new();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        let t = db
            .execute("SELECT sum(i), count(*), min(i), max(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        prop_assert_eq!(t.row(0)[0].clone(), monetlite::SqlValue::Int(data.iter().sum()));
        prop_assert_eq!(t.row(0)[1].clone(), monetlite::SqlValue::Int(data.len() as i64));
        prop_assert_eq!(t.row(0)[2].clone(), monetlite::SqlValue::Int(*data.iter().min().unwrap()));
        prop_assert_eq!(t.row(0)[3].clone(), monetlite::SqlValue::Int(*data.iter().max().unwrap()));
    }

    /// A Python UDF computing a sum agrees with SQL sum() for any column —
    /// the operator-at-a-time bridge preserves data exactly.
    #[test]
    fn udf_bridge_preserves_columns(data in proptest::collection::vec(-1000i64..1000, 1..60)) {
        let db = monetlite::Engine::new();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        db.execute(
            "CREATE FUNCTION pysum(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return sum(i) }",
        )
        .unwrap();
        let sql = db.execute("SELECT sum(i) FROM t").unwrap().into_table().unwrap();
        let udf = db.execute("SELECT pysum(i) FROM t").unwrap().into_table().unwrap();
        prop_assert_eq!(sql.row(0)[0].clone(), udf.row(0)[0].clone());
    }

    /// Wire message round trip for query results with arbitrary content.
    #[test]
    fn wire_result_round_trips(
        strings in proptest::collection::vec("[a-zA-Z0-9 ]{0,16}", 0..20),
    ) {
        use wireproto::message::{Message, WireResult, WireTable, WireValue};
        let table = WireTable {
            name: "r".to_string(),
            columns: vec![("s".to_string(), "STRING".to_string())],
            rows: strings.iter().map(|s| vec![WireValue::Str(s.clone())]).collect(),
        };
        let msg = Message::ResultSet {
            result: WireResult::Table(table),
            udf_stdout: String::new(),
        };
        let decoded = Message::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }
}
