//! Cross-crate property tests: invariants that must hold for arbitrary
//! data across the whole stack (devharness::prop).

use devharness::prop::{self, Config};
use devharness::{prop_assert, prop_assert_eq};

use devudf::transform;
use wireproto::client::FunctionInfo;
use wireproto::transfer::{
    decode_blocks, decode_payload, encode_blocks, encode_payload, sample_inputs, TransferError,
};
use wireproto::TransferOptions;

use pylite::value::Dict;
use pylite::{Array, Value};

fn cfg() -> Config {
    Config::cases(64)
}

fn int_inputs(v: Vec<i64>) -> Value {
    let mut d = Dict::new();
    d.insert(Value::str("column"), Value::array(Array::Int(v)))
        .unwrap();
    Value::dict(d)
}

/// encode ∘ decode is identity for every option combination — all 8
/// compress × encrypt × sample combos, with both the default and a tiny
/// (multi-block-forcing) container block size.
#[test]
fn transfer_pipeline_round_trips() {
    let strategy = (
        prop::vec_of(prop::any_i64(), 0..300),
        prop::any_bool(),
        prop::any_bool(),
        prop::option_of(prop::usize_in(1..400)),
        prop::any_u64(),
    );
    prop::check(
        cfg(),
        strategy,
        |(data, compress, encrypt, sample, transfer_id)| {
            let inputs = int_inputs(data.clone());
            for block_size in [wireproto::DEFAULT_BLOCK_SIZE, 1024] {
                let options = TransferOptions {
                    compress: *compress,
                    encrypt: *encrypt,
                    sample: *sample,
                    block_size,
                };
                let (payload, _) =
                    encode_payload(&inputs, &options, "pw", *transfer_id, 7).unwrap();
                let back = decode_payload(&payload, &options, "pw", *transfer_id).unwrap();
                match *sample {
                    // Sampling draws min(k, n) of the original rows; the
                    // codecs must deliver exactly that dict.
                    Some(k) => {
                        let Value::Dict(d) = &back else {
                            return Err("decoded inputs not a dict".into());
                        };
                        let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
                        let Value::Array(a) = col else {
                            return Err("decoded column not an array".into());
                        };
                        prop_assert_eq!(a.len(), k.min(data.len()));
                    }
                    None => prop_assert!(back.py_eq(&inputs)),
                }
            }
            Ok(())
        },
    );
}

/// The chunked container round-trips raw bytes for every codec combo at
/// every payload-size edge: empty, one byte, exactly one block, and one
/// byte either side of each block boundary.
#[test]
fn chunked_container_round_trips_edge_sizes() {
    const BS: usize = 1024;
    let pool = devharness::Pool::new(3);
    let strategy = (
        prop::usize_in(0..6), // which boundary region
        prop::usize_in(0..3), // offset within {-1, 0, +1} around it
        prop::any_u64(),      // content seed
        prop::any_bool(),     // compressible or noise
    );
    prop::check(
        Config::cases(48),
        strategy,
        |&(blocks, offset, seed, compressible)| {
            // Sizes 0, 1 and every block boundary ± 1 up to 5 blocks.
            let len = (blocks * BS + offset).saturating_sub(1);
            let data: Vec<u8> = if compressible {
                (0..len).map(|i| (i / 17) as u8).collect()
            } else {
                let mut rng = devharness::Rng::new(seed);
                let mut v = vec![0u8; len];
                rng.fill_bytes(&mut v);
                v
            };
            for compress in [false, true] {
                for encrypt in [false, true] {
                    let options = TransferOptions {
                        compress,
                        encrypt,
                        ..Default::default()
                    }
                    .with_block_size(BS);
                    let payload = encode_blocks(&pool, &data, &options, "pw", seed);
                    let back = decode_blocks(&pool, &payload, &options, "pw", seed).unwrap();
                    prop_assert_eq!(&back, &data);
                }
            }
            Ok(())
        },
    );
}

/// Flipping any single byte in a container's block bodies produces a
/// loud, typed error — never silently-garbage rows.
#[test]
fn chunked_container_corruption_is_loud() {
    const BS: usize = 512;
    let pool = devharness::Pool::new(2);
    let strategy = (
        prop::usize_in(1..4000),
        prop::any_u64(),
        prop::any_bool(),
        prop::any_bool(),
    );
    prop::check(
        Config::cases(48),
        strategy,
        |&(len, seed, compress, encrypt)| {
            let data: Vec<u8> = (0..len).map(|i| (i / 13) as u8).collect();
            let options = TransferOptions {
                compress,
                encrypt,
                ..Default::default()
            }
            .with_block_size(BS);
            let payload = encode_blocks(&pool, &data, &options, "pw", 1);
            // Flip one bit anywhere: block bodies are covered by the
            // per-block integrity tag, header bytes by the decoder's
            // structural validation.
            let mut rng = devharness::Rng::new(seed);
            let at = rng.usize_in(0, payload.len());
            let mut bad = payload.clone();
            bad[at] ^= 1 << rng.usize_in(0, 8);
            match decode_blocks(&pool, &bad, &options, "pw", 1) {
                // Ok is only acceptable if the flip was semantically
                // inert and the exact original bytes came back.
                Ok(out) => prop_assert_eq!(&out, &data),
                Err(
                    TransferError::BlockIntegrity { .. }
                    | TransferError::BlockCodec { .. }
                    | TransferError::Container(_),
                ) => {}
                Err(other) => return Err(format!("unexpected error kind: {other:?}")),
            }
            Ok(())
        },
    );
}

/// Sampling returns exactly min(k, n) rows and every value came from
/// the original column.
#[test]
fn sampling_bounds_and_membership() {
    let strategy = (
        prop::vec_of(prop::i64_in(-1000..1000), 1..200),
        prop::usize_in(0..300),
        prop::any_u64(),
    );
    prop::check(cfg(), strategy, |(data, k, seed)| {
        let n = data.len();
        let inputs = int_inputs(data.clone());
        let sampled = sample_inputs(&inputs, *k, *seed).unwrap();
        let Value::Dict(d) = &sampled else {
            return Err("sampled inputs not a dict".into());
        };
        let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
        let Value::Array(a) = col else {
            return Err("sampled column not an array".into());
        };
        prop_assert_eq!(a.len(), (*k).min(n));
        for i in 0..a.len() {
            let Value::Int(x) = a.get(i) else {
                return Err("sampled cell not an int".into());
            };
            prop_assert!(data.contains(&x));
        }
        Ok(())
    });
}

/// Import → export body transformation is the identity on arbitrary
/// well-formed bodies.
#[test]
fn transform_round_trip_identity() {
    let strategy = (prop::usize_in(1..12), prop::any_u64());
    prop::check(cfg(), strategy, |&(n_lines, seed)| {
        // Generate a structured body: assignments, a loop, a return.
        let mut body = String::new();
        let mut rng = devharness::Rng::new(seed);
        for i in 0..n_lines {
            let s = rng.next_u64();
            match s % 4 {
                0 => body.push_str(&format!("v{i} = {}\n", s % 100)),
                1 => body.push_str(&format!("v{i} = len(column) + {}\n", s % 10)),
                2 => body.push_str(&format!(
                    "for j{i} in range(0, 3):\n    acc{i} = j{i} * {}\n",
                    s % 7
                )),
                _ => body.push_str(&format!("s{i} = 'text {}'\n", s % 50)),
            }
        }
        body.push_str("return len(column)\n");
        let info = FunctionInfo {
            name: "generated".to_string(),
            params: vec![("column".to_string(), "INTEGER".to_string())],
            return_type: "INTEGER".to_string(),
            language: "PYTHON".to_string(),
            body: body.clone(),
        };
        let script = transform::to_local_script(&info);
        prop_assert!(
            pylite::parse_module(&script).is_ok(),
            "script must parse:\n{script}"
        );
        let recovered = transform::extract_body(&script, "generated").unwrap();
        prop_assert_eq!(recovered, body);
        Ok(())
    });
}

/// The SQL engine's sum() agrees with Rust over arbitrary int columns.
#[test]
fn sql_aggregates_match_rust() {
    prop::check(
        cfg(),
        prop::vec_of(prop::i64_in(-10_000..10_000), 1..80),
        |data| {
            let db = monetlite::Engine::new();
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
                .unwrap();
            let t = db
                .execute("SELECT sum(i), count(*), min(i), max(i) FROM t")
                .unwrap()
                .into_table()
                .unwrap();
            prop_assert_eq!(
                t.row(0)[0].clone(),
                monetlite::SqlValue::Int(data.iter().sum())
            );
            prop_assert_eq!(
                t.row(0)[1].clone(),
                monetlite::SqlValue::Int(data.len() as i64)
            );
            prop_assert_eq!(
                t.row(0)[2].clone(),
                monetlite::SqlValue::Int(*data.iter().min().unwrap())
            );
            prop_assert_eq!(
                t.row(0)[3].clone(),
                monetlite::SqlValue::Int(*data.iter().max().unwrap())
            );
            Ok(())
        },
    );
}

/// A Python UDF computing a sum agrees with SQL sum() for any column —
/// the operator-at-a-time bridge preserves data exactly.
#[test]
fn udf_bridge_preserves_columns() {
    prop::check(
        cfg(),
        prop::vec_of(prop::i64_in(-1000..1000), 1..60),
        |data| {
            let db = monetlite::Engine::new();
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
                .unwrap();
            db.execute(
                "CREATE FUNCTION pysum(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return sum(i) }",
            )
            .unwrap();
            let sql = db
                .execute("SELECT sum(i) FROM t")
                .unwrap()
                .into_table()
                .unwrap();
            let udf = db
                .execute("SELECT pysum(i) FROM t")
                .unwrap()
                .into_table()
                .unwrap();
            prop_assert_eq!(sql.row(0)[0].clone(), udf.row(0)[0].clone());
            Ok(())
        },
    );
}

/// Cache coherence of the content-addressed delta layer (DESIGN §12):
/// under an arbitrary interleaving of DML and extracts, a delta-caching
/// client must always observe exactly what a cache-less client fetches
/// fresh — a stale block served from the cache would diverge the two.
/// Exercised over all 8 option combos: compress × encrypt via full
/// extracts, and sampling via its cache-bypass path.
#[test]
fn delta_cache_never_serves_stale_data() {
    use wireproto::{Client, ClientOptions, Server, ServerConfig};
    let strategy = (prop::vec_of(prop::usize_in(0..5), 1..10), prop::any_u64());
    prop::check(Config::cases(24), strategy, |(ops, seed)| {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE sensor (i INTEGER)").unwrap();
            let values: Vec<String> = (0..300).map(|i| format!("({})", 1000 + i)).collect();
            db.execute(&format!("INSERT INTO sensor VALUES {}", values.join(", ")))
                .unwrap();
            db.execute(
                "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return sum(column) / len(column) }",
            )
            .unwrap();
        });
        let mut cached = Client::connect_in_proc_with(
            &server,
            "monetdb",
            "monetdb",
            "demo",
            ClientOptions {
                cache: Some(2),
                ..ClientOptions::default()
            },
        )
        .unwrap();
        let mut fresh = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
        let mut rng = devharness::Rng::new(*seed);
        let combos = [(false, false), (true, false), (false, true), (true, true)];
        // Small blocks so every payload spans many of them and a stale
        // block would corrupt a visible slice of the column.
        let options = |(compress, encrypt): (bool, bool)| {
            TransferOptions {
                compress,
                encrypt,
                ..Default::default()
            }
            .with_block_size(256)
        };
        let query = "SELECT f(i) FROM sensor";
        for op in ops.iter().chain([&4]) {
            match *op {
                0 => {
                    let v = 1000 + rng.usize_in(0, 400);
                    cached
                        .query(&format!("INSERT INTO sensor VALUES ({v})"))
                        .unwrap();
                }
                1 => {
                    let (a, b) = (1000 + rng.usize_in(0, 400), 1000 + rng.usize_in(0, 400));
                    cached
                        .query(&format!("UPDATE sensor SET i = {a} WHERE i = {b}"))
                        .unwrap();
                }
                2 => {
                    let v = 1000 + rng.usize_in(0, 400);
                    cached
                        .query(&format!("DELETE FROM sensor WHERE i = {v}"))
                        .unwrap();
                }
                3 => {
                    // Sampled extract: bypasses the cache, must still
                    // honour the requested row count.
                    let opts = options(combos[rng.usize_in(0, 4)]);
                    let (v, _) = cached
                        .extract_inputs(
                            query,
                            "f",
                            TransferOptions {
                                sample: Some(20),
                                ..opts
                            },
                        )
                        .unwrap();
                    let Value::Dict(d) = &v else {
                        return Err("sampled inputs not a dict".into());
                    };
                    let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
                    let Value::Array(a) = col else {
                        return Err("sampled column not an array".into());
                    };
                    prop_assert_eq!(a.len(), 20);
                }
                _ => {
                    // Full extract under every combo: the delta-served
                    // value must match a cache-less fetch byte for byte.
                    for combo in combos {
                        let opts = options(combo);
                        let (warm, _) = cached.extract_inputs(query, "f", opts).unwrap();
                        let (truth, _) = fresh.extract_inputs(query, "f", opts).unwrap();
                        prop_assert!(warm.py_eq(&truth), "delta client diverged under {combo:?}");
                    }
                }
            }
        }
        server.shutdown();
        Ok(())
    });
}

/// The bytecode VM and the AST walker are observationally identical on
/// arbitrary generated UDF bodies: same result value, same globals, same
/// captured stdout, and — when the program fails — the same error kind,
/// message and blamed line. The walker is the reference oracle (DESIGN
/// §13); any divergence here is a VM bug by definition.
#[test]
fn bytecode_vm_matches_ast_walker_on_random_udf_bodies() {
    use pylite::{ExecMode, Interp};

    // Run one source under one engine and collapse everything observable
    // into comparable form.
    #[allow(clippy::type_complexity)]
    fn observe(src: &str, mode: ExecMode) -> (Result<(String, Vec<String>), String>, String) {
        let mut interp = Interp::new();
        interp.set_exec_mode(mode);
        interp.set_step_budget(200_000);
        let outcome = match interp.eval_module(src) {
            Ok(v) => {
                let globals = interp
                    .global_names()
                    .iter()
                    .map(|n| format!("{n}={}", interp.get_global(n).unwrap().repr()))
                    .collect();
                Ok((v.repr(), globals))
            }
            Err(e) => Err(format!(
                "{:?}: {} @ {:?}",
                e.kind,
                e.message,
                e.innermost_line()
            )),
        };
        (outcome, interp.stdout().to_string())
    }

    let strategy = (prop::usize_in(2..10), prop::any_u64());
    prop::check(Config::cases(96), strategy, |&(n_stmts, seed)| {
        let mut rng = devharness::Rng::new(seed);
        let mut body = String::from("acc = 0\nitems = [3, 1, 4, 1, 5, 9, 2, 6]\n");
        for i in 0..n_stmts {
            let s = rng.next_u64();
            let k = (s % 7) as i64;
            match s % 12 {
                0 => body.push_str(&format!("x{i} = ({} - {k}) * 3 % 5\n", s % 40)),
                1 => body.push_str(&format!(
                    "for j{i} in items:\n    if j{i} % 2 == 0:\n        continue\n    if j{i} > {}:\n        break\n    acc += j{i}\n",
                    s % 10
                )),
                2 => body.push_str(&format!(
                    "w{i} = {k}\nwhile w{i} > 0:\n    w{i} -= 1\n    acc += w{i}\n"
                )),
                3 => body.push_str(&format!(
                    "try:\n    acc += items[{}]\nexcept Exception as e{i}:\n    m{i} = str(e{i})\nfinally:\n    acc += 1\n",
                    s % 12
                )),
                4 => body.push_str(&format!(
                    "def f{i}(x, y={k}):\n    return x * y + len(items)\nacc += f{i}({})\n",
                    s % 5
                )),
                5 => body.push_str("print('acc is', acc)\n"),
                6 => body.push_str(&format!(
                    "sq{i} = [v * v for v in items if v > {k}]\nacc += len(sq{i})\n"
                )),
                7 => body.push_str(&format!("s{i} = 'ab' * {k}\nacc += len(s{i})\n")),
                8 => body.push_str(&format!(
                    "part{i} = items[1:{}]\nacc += sum(part{i})\n",
                    s % 9
                )),
                9 => body.push_str(&format!(
                    "d{i} = {{'a': {k}, 'b': acc}}\nacc += d{i}['a']\n"
                )),
                10 => body.push_str(&format!(
                    "if acc % 3 == 0:\n    acc += {k}\nelif acc % 3 == 1:\n    acc -= 1\nelse:\n    acc = acc * 2\n"
                )),
                // Rarely: an uncaught failure, so error parity is
                // exercised too (index error or a type error mid-binop).
                _ => body.push_str(if s.is_multiple_of(5) {
                    "acc += items[99]\n"
                } else {
                    "acc = acc + sorted(items)[0] * 2\n"
                }),
            }
        }
        let (ast_out, ast_stdout) = observe(&body, ExecMode::Ast);
        let (vm_out, vm_stdout) = observe(&body, ExecMode::Bytecode);
        prop_assert!(
            vm_out == ast_out,
            "engines diverged ({vm_out:?} vs {ast_out:?}) on:\n{body}"
        );
        prop_assert!(vm_stdout == ast_stdout, "stdout diverged on:\n{body}");
        Ok(())
    });
}

/// Three-way differential oracle over random *straight-line* UDFs: the AST
/// walker, the bytecode VM, and the Froid-style inlined plan must agree on
/// every observable — result values, or the full error when a body fails.
/// Bodies mix int/float arithmetic, `/` `//` `%` (div-by-zero included),
/// CASE-shaped `if/elif/else` with early returns, chained comparisons,
/// whitelisted builtins, and occasionally NULL-bearing or empty input
/// columns (which force the inlined plan's runtime-bail path). Both
/// invocation models run: operator-at-a-time and tuple-at-a-time.
#[test]
fn inlined_udfs_match_ast_and_bytecode_interpreters() {
    use monetlite::{Engine, ExecutionModel};
    use pylite::ExecMode;

    // (pylite engine, engine-side inlining) — the three `interp` modes.
    const CONFIGS: [(ExecMode, bool, &str); 3] = [
        (ExecMode::Ast, false, "ast"),
        (ExecMode::Bytecode, false, "bytecode"),
        (ExecMode::Bytecode, true, "inlined"),
    ];

    fn build_db(
        rows: &[(Option<i64>, Option<f64>)],
        body: &str,
        mode: ExecMode,
        inline: bool,
        model: ExecutionModel,
    ) -> Engine {
        let db = Engine::new();
        db.set_exec_mode(mode);
        db.set_inline(inline);
        db.set_model(model);
        db.execute("CREATE TABLE t (i INTEGER, d DOUBLE)").unwrap();
        for (i, d) in rows {
            let iv = i.map(|v| v.to_string()).unwrap_or("NULL".to_string());
            let dv = d.map(|v| format!("{v:?}")).unwrap_or("NULL".to_string());
            db.execute(&format!("INSERT INTO t VALUES ({iv}, {dv})"))
                .unwrap();
        }
        db.execute(&format!(
            "CREATE FUNCTION f(i INTEGER, d DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON {{\n{body}}}"
        ))
        .unwrap();
        db
    }

    // Collapse a query outcome into comparable form. Float rendering goes
    // through SqlValue::render on both paths, so equal values compare
    // equal textually.
    fn observe(db: &Engine) -> Result<Vec<String>, String> {
        match db.execute("SELECT f(i, d) FROM t") {
            Ok(r) => {
                let t = r.into_table().map_err(|e| e.to_string())?;
                let col = t.column(0).expect("one output column");
                Ok((0..col.len()).map(|j| col.get(j).render()).collect())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    // A small random arithmetic expression over the parameters, prior
    // locals and literals. `funcs` enables the builtin whitelist.
    fn gen_expr(rng: &mut devharness::Rng, locals: &[String], depth: u32) -> String {
        let roll = rng.next_u64();
        if depth == 0 || roll.is_multiple_of(4) {
            return match roll % 5 {
                0 => "i".to_string(),
                1 => "d".to_string(),
                2 => format!("{}", (roll % 13) as i64 - 4),
                3 if !locals.is_empty() => locals[(roll % locals.len() as u64) as usize].clone(),
                _ => format!("{}.5", roll % 7),
            };
        }
        let a = gen_expr(rng, locals, depth - 1);
        let b = gen_expr(rng, locals, depth - 1);
        match roll % 11 {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / {b})"),
            4 => format!("({a} // {b})"),
            5 => format!("({a} % {b})"),
            6 => format!("(-{a})"),
            7 => format!("abs({a})"),
            8 => format!("float({a})"),
            9 => format!("({a} ** 2)"),
            _ => format!("int({a})"),
        }
    }

    fn gen_cond(rng: &mut devharness::Rng, locals: &[String]) -> String {
        let a = gen_expr(rng, locals, 1);
        let b = gen_expr(rng, locals, 1);
        match rng.next_u64() % 6 {
            0 => format!("{a} < {b}"),
            1 => format!("{a} <= {b}"),
            2 => format!("{a} > {b}"),
            3 => format!("{a} == {b}"),
            4 => format!("{a} != {b}"),
            // Chained comparison, lowered as an AND of pairs.
            _ => format!("0 <= {a} < 100"),
        }
    }

    let strategy = (prop::usize_in(1..6), prop::usize_in(0..7), prop::any_u64());
    let inlined_plans = std::cell::Cell::new(0usize);
    let total = std::cell::Cell::new(0usize);
    prop::check(Config::cases(96), strategy, |&(n_stmts, n_rows, seed)| {
        let mut rng = devharness::Rng::new(seed);
        let mut rows: Vec<(Option<i64>, Option<f64>)> = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let r = rng.next_u64();
            // Small ints (zero and negatives included) so `//`, `%` and
            // `/` hit zero divisors; NULLs roughly one row in eight.
            let i = (!r.is_multiple_of(8)).then_some((r % 11) as i64 - 3);
            let d = (r % 16 != 7).then_some(((r / 7) % 9) as f64 / 2.0 - 1.0);
            rows.push((i, d));
        }

        let mut body = String::new();
        let mut locals: Vec<String> = Vec::new();
        for k in 0..n_stmts {
            let roll = rng.next_u64();
            match roll % 4 {
                // Straight-line local binding.
                0 | 1 => {
                    let e = gen_expr(&mut rng, &locals, 2);
                    body.push_str(&format!("v{k} = {e}\n"));
                    locals.push(format!("v{k}"));
                }
                // Guard-style early return.
                2 => {
                    let c = gen_cond(&mut rng, &locals);
                    let e = gen_expr(&mut rng, &locals, 1);
                    body.push_str(&format!("if {c}:\n    return {e}\n"));
                }
                // if/elif/else rebinding a local (CASE-shaped).
                _ => {
                    let c1 = gen_cond(&mut rng, &locals);
                    let c2 = gen_cond(&mut rng, &locals);
                    let (e1, e2, e3) = (
                        gen_expr(&mut rng, &locals, 1),
                        gen_expr(&mut rng, &locals, 1),
                        gen_expr(&mut rng, &locals, 1),
                    );
                    body.push_str(&format!(
                        "if {c1}:\n    w{k} = {e1}\nelif {c2}:\n    w{k} = {e2}\nelse:\n    w{k} = {e3}\n"
                    ));
                    locals.push(format!("w{k}"));
                }
            }
        }
        body.push_str(&format!("return {}\n", gen_expr(&mut rng, &locals, 2)));

        for model in [
            ExecutionModel::OperatorAtATime,
            ExecutionModel::TupleAtATime,
        ] {
            let mut outcomes = Vec::new();
            for (mode, inline, label) in CONFIGS {
                let db = build_db(&rows, &body, mode, inline, model);
                outcomes.push((label, observe(&db)));
                if inline && model == ExecutionModel::OperatorAtATime {
                    // Tally how often the plan actually inlines, via the
                    // EXPLAIN annotation — the oracle is vacuous if every
                    // body bails.
                    let explain = db
                        .execute("EXPLAIN SELECT f(i, d) FROM t")
                        .unwrap()
                        .into_table()
                        .unwrap();
                    let rendered = explain.render_ascii();
                    prop_assert!(
                        rendered.contains("udf f"),
                        "EXPLAIN must annotate the UDF call:\n{rendered}"
                    );
                    total.set(total.get() + 1);
                    if rendered.contains("inlined as") {
                        inlined_plans.set(inlined_plans.get() + 1);
                    }
                }
            }
            let (ref_label, ref_out) = &outcomes[0];
            for (label, out) in &outcomes[1..] {
                prop_assert!(
                    out == ref_out,
                    "{label} diverged from {ref_label} under {model:?}\n  {ref_label}: {ref_out:?}\n  {label}: {out:?}\non body:\n{body}"
                );
            }
        }
        Ok(())
    });
    assert!(
        inlined_plans.get() * 2 >= total.get(),
        "straight-line generator should inline most plans ({}/{})",
        inlined_plans.get(),
        total.get()
    );
}

/// Wire message round trip for query results with arbitrary content.
#[test]
fn wire_result_round_trips() {
    let strings = prop::vec_of(
        prop::string_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ",
            0..16,
        ),
        0..20,
    );
    prop::check(cfg(), strings, |strings| {
        use wireproto::message::{Message, WireResult, WireTable, WireValue};
        let table = WireTable {
            name: "r".to_string(),
            columns: vec![("s".to_string(), "STRING".to_string())],
            rows: strings
                .iter()
                .map(|s| vec![WireValue::Str(s.clone())])
                .collect(),
        };
        let msg = Message::ResultSet {
            result: WireResult::Table(table),
            udf_stdout: String::new(),
        };
        let decoded = Message::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
        Ok(())
    });
}
