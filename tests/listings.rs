//! Reproduction of the paper's Listings 1, 2, 4 and 5 (Listing 3 lives in
//! tests/nested.rs) — each stored, queried, transformed and executed against
//! the real stack.

use devudf::{DevUdf, Settings};
use wireproto::{Server, ServerConfig, WireValue};

/// The verbatim body of paper Listing 1 (`train_rnforest`).
const LISTING1_BODY: &str = "\
import pickle
from sklearn.ensemble import RandomForestClassifier
clf = RandomForestClassifier(n_estimators)
clf.fit(data, classes)
return {'clf': pickle.dumps(clf), 'estimators': n_estimators}
";

fn server_with_listing1() -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE trainingset (data INTEGER, labels INTEGER)")
            .unwrap();
        let rows: Vec<String> = (0..60)
            .map(|i| format!("({}, {})", i % 11, (i % 11 > 5) as i64))
            .collect();
        db.execute(&format!(
            "INSERT INTO trainingset VALUES {}",
            rows.join(", ")
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE FUNCTION train_rnforest(data INTEGER, classes INTEGER, n_estimators INTEGER) RETURNS TABLE(clf BLOB, estimators INTEGER) LANGUAGE PYTHON {{\n{LISTING1_BODY}}}"
        ))
        .unwrap();
    })
}

fn temp_project(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn listing1_source_is_stored_and_queryable_via_meta_tables() {
    // Paper Listing 1 shows `SELECT name, func FROM …` returning the UDF
    // body; reproduce exactly that.
    let server = server_with_listing1();
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let t = client
        .query("SELECT name, func FROM sys.functions")
        .unwrap()
        .into_table()
        .unwrap();
    assert_eq!(t.rows.len(), 1);
    assert_eq!(t.rows[0][0], WireValue::Str("train_rnforest".into()));
    match &t.rows[0][1] {
        WireValue::Str(body) => {
            assert!(body.contains("import pickle"));
            assert!(body.contains("RandomForestClassifier"));
            assert!(body.contains("pickle.dumps(clf)"));
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn listing1_udf_actually_trains_a_forest() {
    let server = server_with_listing1();
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let t = client
        .query("SELECT estimators FROM train_rnforest((SELECT data, labels FROM trainingset), 8)")
        .unwrap()
        .into_table()
        .unwrap();
    assert_eq!(t.rows[0][0], WireValue::Int(8));
    // The clf column is a non-empty pickled blob.
    let t = client
        .query("SELECT clf FROM train_rnforest((SELECT data, labels FROM trainingset), 4)")
        .unwrap()
        .into_table()
        .unwrap();
    match &t.rows[0][0] {
        WireValue::Blob(b) => assert!(b.len() > 10),
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn listing2_transformation_produces_the_papers_shape() {
    // Import Listing 1 and verify the generated file has every structural
    // element of paper Listing 2.
    let server = server_with_listing1();
    let dir = temp_project("listing2");
    let mut settings = Settings::default();
    settings.debug_query =
        "SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), 8)".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    let script = dev.project.read_udf("train_rnforest").unwrap();

    // Line 1: `import pickle`.
    assert!(script.starts_with("import pickle\n"));
    // Line 3: the synthesized def header from name + meta-table parameters.
    assert!(script.contains("def train_rnforest(data, classes, n_estimators):"));
    // The body, indented.
    assert!(script.contains("    clf.fit(data, classes)"));
    // The input.bin loading harness.
    assert!(script.contains("input_parameters = pickle.load(open('./input.bin', 'rb'))"));
    // The call with parameters wired from the input dict.
    assert!(script.contains("train_rnforest(input_parameters['data']"));

    // And it runs: the harness + extracted inputs produce a classifier dict.
    let outcome = dev.run_udf("train_rnforest").unwrap();
    assert!(outcome.result_repr.contains("'estimators': 8"));

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn listing4_runs_and_exhibits_the_semantic_bug() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (2), (4), (6), (8)")
            .unwrap();
        db.execute(concat!(
            "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n",
            "mean = 0\n",
            "for i in range(0, len(column)):\n",
            "    mean += column[i]\n",
            "mean = mean / len(column)\n",
            "distance = 0\n",
            "for i in range(0, len(column)):\n",
            "    distance += column[i] - mean\n",
            "deviation = distance / len(column)\n",
            "return deviation\n",
            "}"
        ))
        .unwrap();
    });
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let t = client
        .query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    match t.rows[0][0] {
        // Signed deviations cancel: the bug makes the result 0, not 2.
        WireValue::Double(d) => assert!(d.abs() < 1e-9, "got {d}"),
        ref other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn listing5_runs_and_skips_the_last_file() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.fs().write("data/a.csv", b"1\n2\n").unwrap();
        db.fs().write("data/b.csv", b"3\n4\n").unwrap();
        db.fs().write("data/c.csv", b"5\n6\n").unwrap();
        db.execute(concat!(
            "CREATE FUNCTION loadnumbers(path STRING) RETURNS TABLE(i INTEGER) LANGUAGE PYTHON {\n",
            "import os\n",
            "files = os.listdir(path)\n",
            "result = []\n",
            "for i in range(0, len(files) - 1):\n",
            "    file = open(path + '/' + files[i], 'r')\n",
            "    for line in file:\n",
            "        result.append(int(line))\n",
            "return result\n",
            "}"
        ))
        .unwrap();
    });
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let t = client
        .query("SELECT count(*), sum(i) FROM loadnumbers('data')")
        .unwrap()
        .into_table()
        .unwrap();
    // Only a.csv and b.csv are read: 4 rows summing to 10 (not 6 rows / 21).
    assert_eq!(t.rows[0][0], WireValue::Int(4));
    assert_eq!(t.rows[0][1], WireValue::Int(10));
    server.shutdown();
}
