//! Crash-recovery property tests for the embedded persistence layer
//! (DESIGN §17): a persistent engine must reopen to *exactly* the state
//! the WAL + snapshot describe, and a torn WAL tail must recover to a
//! **statement-prefix** of the committed history — never a partial
//! transaction, never a failure to open.

use devharness::prop::{self, Config};

use monetlite::{Engine, FsyncPolicy, StorageOptions};

fn no_sync(snapshot_every: u64) -> StorageOptions {
    StorageOptions {
        fsync: FsyncPolicy::Never,
        snapshot_every,
    }
}

fn temp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-persist-{tag}-{}-{case}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Decode one generated op into a SQL statement. The pool deliberately
/// mixes DDL (tables, stored UDFs) with row DML (insert/update/delete)
/// so replay exercises every WAL-logged statement shape; values are
/// derived from the op index, keeping runs deterministic.
fn op_sql(op: u8, i: usize) -> String {
    let t = i % 3; // three table names, so ops collide and sometimes fail
    match op % 6 {
        0 => format!("CREATE TABLE t{t} (a INTEGER, b DOUBLE)"),
        1 => format!(
            "INSERT INTO t{t} VALUES ({}, {}.5), ({}, {}.25)",
            i,
            i,
            i + 1,
            i + 1
        ),
        2 => format!("UPDATE t{t} SET a = a + {} WHERE a > {}", i % 7, i % 11),
        3 => format!("DELETE FROM t{t} WHERE a = {}", i % 13),
        4 => format!(
            "CREATE FUNCTION f{} (x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {{ return x + {i} }}",
            i % 4
        ),
        _ => format!("SELECT count(a) FROM t{t}"), // reads must never be logged
    }
}

/// A full, order-sensitive fingerprint of the catalog: every table's
/// contents plus every stored function's metadata.
fn digest(db: &Engine) -> String {
    let mut out = String::new();
    for t in 0..3 {
        match db.execute(&format!("SELECT * FROM t{t}")) {
            Ok(r) => out.push_str(&format!("t{t}: {:?}\n", r.table())),
            Err(_) => out.push_str(&format!("t{t}: absent\n")),
        }
    }
    for name in db.function_names() {
        let def = db.get_function(&name).unwrap().unwrap();
        out.push_str(&format!(
            "{name}: {:?} -> {:?} {{{}}}\n",
            def.params, def.returns, def.body
        ));
    }
    out.push_str(&format!("version {}", db.catalog_version()));
    out
}

/// Random DML against a persistent engine, then a clean close + reopen:
/// the reopened engine must be indistinguishable from an in-memory
/// engine that executed the same statements — tables, rows, stored
/// UDFs, even the catalog version counter. Runs with and without
/// automatic checkpoints, so both the pure-WAL and the
/// snapshot-plus-WAL recovery paths are exercised.
#[test]
fn restart_survives_random_dml() {
    let strategy = (
        prop::vec_of(prop::u64_in(0..6), 1..24),
        prop::u64_in(0..3), // snapshot cadence: 0 (never), 1, or 2
        prop::any_u64(),
    );
    let case = std::cell::Cell::new(0u64);
    prop::check(Config::cases(32), strategy, |(ops, cadence, _seed)| {
        case.set(case.get() + 1);
        let dir = temp_dir("restart", case.get());
        let reference = Engine::new();
        {
            let db = Engine::open_with(&dir, no_sync(*cadence)).unwrap();
            for (i, op) in ops.iter().enumerate() {
                let sql = op_sql(*op as u8, i);
                let persisted = db.execute(&sql);
                let in_memory = reference.execute(&sql);
                // Same statement, same verdict — else the runs diverged.
                if persisted.is_ok() != in_memory.is_ok() {
                    return Err(format!("verdicts diverged on {sql:?}"));
                }
            }
        } // drop = close
        let reopened = Engine::open_with(&dir, no_sync(*cadence)).unwrap();
        let got = digest(&reopened);
        let want = digest(&reference);
        std::fs::remove_dir_all(&dir).ok();
        if got != want {
            return Err(format!(
                "reopened state diverged:\n{got}\n--- want ---\n{want}"
            ));
        }
        Ok(())
    });
}

/// Kill-point fault injection: truncate the WAL at an arbitrary byte
/// offset (a crash mid-append) and demand that the reopened catalog
/// equals the state after some *whole-statement prefix* of the history.
/// A partial statement surviving, or the open failing, is a bug.
#[test]
fn torn_wal_tail_recovers_to_a_statement_prefix() {
    let strategy = (
        prop::vec_of(prop::u64_in(0..5), 2..16), // no SELECTs: every op may log
        prop::any_u64(),                         // picks the kill point
    );
    let case = std::cell::Cell::new(0u64);
    prop::check(Config::cases(32), strategy, |(ops, kill)| {
        case.set(case.get() + 1);
        let dir = temp_dir("kill", case.get());
        // snapshot_every = 0: everything stays in the WAL, so the kill
        // point can land inside any statement of the whole history.
        let mut executed: Vec<String> = Vec::new();
        {
            let db = Engine::open_with(&dir, no_sync(0)).unwrap();
            for (i, op) in ops.iter().enumerate() {
                let sql = op_sql(*op as u8, i);
                if db.execute(&sql).is_ok() {
                    executed.push(sql);
                }
            }
        }
        // Crash: chop the WAL mid-byte, anywhere from "just the header"
        // to "one byte short of complete".
        let wal = dir.join("wal.log");
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = 8 + kill % len.max(9).saturating_sub(8);
        let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let reopened = Engine::open_with(&dir, no_sync(0)).unwrap();
        let got = digest(&reopened);
        std::fs::remove_dir_all(&dir).ok();
        // Prefix-consistency: the recovered state must match replaying
        // the first j successful statements, for some j.
        let replay = Engine::new();
        let mut prefixes = vec![digest(&replay)];
        for sql in &executed {
            replay.execute(sql).unwrap();
            prefixes.push(digest(&replay));
        }
        if !prefixes.contains(&got) {
            return Err(format!(
                "recovered state (cut at byte {cut}) matches no statement prefix:\n{got}"
            ));
        }
        Ok(())
    });
}

/// A crash *during checkpoint* leaves a partial `snapshot.tmp` behind.
/// The tmp file is garbage by definition (the rename never happened) —
/// recovery must discard it and replay the intact WAL, whatever bytes
/// the torn tmp holds.
#[test]
fn truncated_snapshot_tmp_is_discarded_on_reopen() {
    let strategy = (prop::vec_of(prop::any_u8(), 0..200), prop::any_u64());
    let case = std::cell::Cell::new(0u64);
    prop::check(Config::cases(24), strategy, |(junk, _seed)| {
        case.set(case.get() + 1);
        let dir = temp_dir("tmp", case.get());
        let want;
        {
            let db = Engine::open_with(&dir, no_sync(0)).unwrap();
            db.execute("CREATE TABLE t0 (a INTEGER, b DOUBLE)").unwrap();
            db.execute("INSERT INTO t0 VALUES (1, 1.5)").unwrap();
            want = digest(&db);
        }
        std::fs::write(dir.join("snapshot.tmp"), junk).unwrap();
        let reopened = Engine::open_with(&dir, no_sync(0)).unwrap();
        let got = digest(&reopened);
        std::fs::remove_dir_all(&dir).ok();
        if got != want {
            return Err(format!(
                "state diverged after torn tmp:\n{got}\n--- want ---\n{want}"
            ));
        }
        Ok(())
    });
}

/// The explicit restart-survives acceptance check, end to end through
/// `devudf`'s own session layer: open a project in embedded mode on a
/// data directory, create a UDF through the transport, reconnect, and
/// find catalog + stored UDF + rows identical.
#[test]
fn embedded_session_state_survives_reconnect() {
    let data = temp_dir("session", 0);
    let project = temp_dir("session-proj", 0);
    std::fs::create_dir_all(&project).unwrap();
    let mut settings = devudf::Settings::default();
    settings.storage.data_dir = data.display().to_string();
    settings.storage.fsync = monetlite::FsyncPolicy::Never;
    settings.debug_query = "SELECT double_it(i) FROM t".to_string();

    let mut dev = devudf::DevUdf::connect_embedded(settings.clone(), &project, |_| {}).unwrap();
    dev.server_query("CREATE TABLE t (i INTEGER)").unwrap();
    dev.server_query("INSERT INTO t VALUES (1), (2), (3)")
        .unwrap();
    dev.server_query(
        "CREATE FUNCTION double_it(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
    )
    .unwrap();
    let before = dev
        .server_query("SELECT double_it(i) FROM t")
        .unwrap()
        .into_table()
        .unwrap();
    drop(dev);

    let mut dev = devudf::DevUdf::connect_embedded(settings, &project, |_| {}).unwrap();
    assert_eq!(
        dev.server_functions().unwrap(),
        vec!["double_it".to_string()]
    );
    let after = dev
        .server_query("SELECT double_it(i) FROM t")
        .unwrap()
        .into_table()
        .unwrap();
    assert_eq!(before, after);
    // The imported-and-run loop works against the replayed catalog too.
    dev.import_all().unwrap();
    let run = dev.run_udf("double_it").unwrap();
    assert_eq!(run.result_repr, "array([2, 4, 6], dtype=int64)");
    std::fs::remove_dir_all(&data).ok();
    std::fs::remove_dir_all(&project).ok();
}
