//! End-to-end coverage of the content-addressed extract cache (DESIGN
//! §12): warm unchanged extracts answer `NotModified` with zero payload
//! bytes and zero server-side codec work, DML invalidates via per-table
//! epochs and reships only the dirty blocks, and sampled extracts bypass
//! the cache entirely.
//!
//! Counter assertions compare before/after deltas under
//! `obs::metrics::test_lock()` — the registry is process-global and this
//! file is the only binary whose tests touch the `transfer.delta.*`
//! family.

use pylite::Value;
use wireproto::{Client, ClientOptions, Server, ServerConfig, TransferOptions};

/// A table big enough that a 1 KiB block grid has plenty of blocks, plus
/// the paper's intercepted UDF. Values are four digits wide so a
/// same-width UPDATE dirties one localized byte range of the pickle.
fn sensor_server() -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE sensor (i INTEGER)").unwrap();
        let values: Vec<String> = (0..2000).map(|i| format!("({})", 1000 + i)).collect();
        db.execute(&format!("INSERT INTO sensor VALUES {}", values.join(", ")))
            .unwrap();
        db.execute(
            "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return sum(column) / len(column) }",
        )
        .unwrap();
    })
}

fn cached_client(server: &Server) -> Client {
    let options = ClientOptions {
        cache: Some(4),
        ..ClientOptions::default()
    };
    Client::connect_in_proc_with(server, "monetdb", "monetdb", "demo", options).unwrap()
}

const QUERY: &str = "SELECT f(i) FROM sensor";

#[test]
fn warm_unchanged_extract_is_not_modified_with_zero_codec_work() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let not_modified = obs::counter!("transfer.delta.server.not_modified");
    let shipped = obs::counter!("transfer.delta.server.blocks_shipped");
    let encode_ns = obs::histogram!("transfer.block.encode_ns");
    let bytes_saved = obs::counter!("transfer.delta.bytes_saved");

    let server = sensor_server();
    let mut client = cached_client(&server);
    // Encryption makes codec work (KDF + ChaCha20) observable: the warm
    // path must do none of it.
    let options = TransferOptions {
        compress: true,
        encrypt: true,
        ..Default::default()
    }
    .with_block_size(1024);

    let (cold, cold_stats) = client.extract_inputs(QUERY, "f", options).unwrap();
    assert!(cold_stats.wire_len > 0);

    let nm0 = not_modified.get();
    let sh0 = shipped.get();
    let enc0 = encode_ns.count();
    let bs0 = bytes_saved.get();

    let (warm, warm_stats) = client.extract_inputs(QUERY, "f", options).unwrap();
    assert!(warm.py_eq(&cold));
    assert_eq!(warm_stats.raw_len, cold_stats.raw_len);
    assert_eq!(warm_stats.wire_len, 0, "NotModified carries no payload");
    assert_eq!(not_modified.get() - nm0, 1);
    assert_eq!(
        shipped.get() - sh0,
        0,
        "no block crossed the wire on the warm extract"
    );
    assert_eq!(
        encode_ns.count() - enc0,
        0,
        "the server ran the block codec despite answering NotModified"
    );
    assert_eq!(bytes_saved.get() - bs0, cold_stats.raw_len as u64);
    server.shutdown();
}

#[test]
fn dml_invalidates_the_epoch_and_reships_only_dirty_blocks() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let shipped = obs::counter!("transfer.delta.server.blocks_shipped");
    let reused = obs::histogram!("transfer.delta.blocks_reused");
    let hits = obs::counter!("transfer.delta.hits");

    let server = sensor_server();
    let mut client = cached_client(&server);
    let options = TransferOptions::plain().with_block_size(1024);

    let sh0 = shipped.get();
    let (_, cold_stats) = client.extract_inputs(QUERY, "f", options).unwrap();
    let cold_shipped = shipped.get() - sh0;
    assert!(
        cold_shipped >= 4,
        "payload should span several 1 KiB blocks, got {cold_shipped}"
    );

    // One same-width value changes: the epoch moves, but only the blocks
    // covering that row's bytes differ.
    client
        .query("UPDATE sensor SET i = 1001 WHERE i = 1500")
        .unwrap();

    let sh1 = shipped.get();
    let ru1 = (reused.count(), reused.sum());
    let h1 = hits.get();
    let (warm, warm_stats) = client.extract_inputs(QUERY, "f", options).unwrap();
    let warm_shipped = shipped.get() - sh1;
    assert!(warm_stats.wire_len > 0, "a change must ship something");
    assert!(
        warm_shipped < cold_shipped,
        "dirty-block reship ({warm_shipped}) should be sparser than cold ({cold_shipped})"
    );
    assert_eq!(reused.count() - ru1.0, 1);
    assert_eq!(
        reused.sum() - ru1.1,
        cold_shipped - warm_shipped,
        "every block not shipped was reused from the client cache"
    );
    assert_eq!(hits.get() - h1, 1);
    assert!(
        warm_stats.wire_len < cold_stats.wire_len,
        "sparse delta ({}) must undercut the cold transfer ({})",
        warm_stats.wire_len,
        cold_stats.wire_len
    );

    // The reconstructed payload matches what a cache-less client fetches
    // fresh over the classic protocol.
    let mut plain = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let (fresh, _) = plain.extract_inputs(QUERY, "f", options).unwrap();
    assert!(warm.py_eq(&fresh));
    server.shutdown();
}

#[test]
fn delta_and_classic_clients_agree_across_option_combinations() {
    // No metric assertions here, but the extracts below bump the same
    // process-global counters the sibling tests measure: serialize so
    // this test does not pollute their deltas mid-flight.
    let _serial = obs::metrics::test_lock();
    let server = sensor_server();
    let mut cached = cached_client(&server);
    let mut plain = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    for (compress, encrypt) in [(false, false), (true, false), (false, true), (true, true)] {
        let options = TransferOptions {
            compress,
            encrypt,
            ..Default::default()
        }
        .with_block_size(2048);
        let (cold, _) = cached.extract_inputs(QUERY, "f", options).unwrap();
        let (warm, warm_stats) = cached.extract_inputs(QUERY, "f", options).unwrap();
        let (classic, _) = plain.extract_inputs(QUERY, "f", options).unwrap();
        assert!(
            cold.py_eq(&classic),
            "compress={compress} encrypt={encrypt}"
        );
        assert!(
            warm.py_eq(&classic),
            "compress={compress} encrypt={encrypt}"
        );
        assert_eq!(
            warm_stats.wire_len, 0,
            "compress={compress} encrypt={encrypt}"
        );
    }
    server.shutdown();
}

#[test]
fn sampled_extracts_bypass_the_cache() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let not_modified = obs::counter!("transfer.delta.server.not_modified");
    let shipped = obs::counter!("transfer.delta.server.blocks_shipped");
    let nm0 = not_modified.get();
    let sh0 = shipped.get();

    let server = sensor_server();
    let mut client = cached_client(&server);
    for _ in 0..2 {
        let (value, _) = client
            .extract_inputs(QUERY, "f", TransferOptions::sampled(50))
            .unwrap();
        let Value::Dict(d) = &value else { panic!() };
        let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
        let Value::Array(a) = col else { panic!() };
        assert_eq!(a.len(), 50);
    }
    // Both sampled extracts took the classic path: the delta protocol
    // never engaged.
    assert_eq!(not_modified.get() - nm0, 0);
    assert_eq!(shipped.get() - sh0, 0);
    server.shutdown();
}
