//! Failure injection across the stack: every layer must fail loudly and
//! cleanly, never hang or corrupt state. Every blocking wait in this
//! suite is bounded — by socket deadlines, retry budgets or the server's
//! mid-frame deadline — and `scripts/ci.sh` runs it under a hard
//! `timeout` so a reintroduced hang fails CI instead of wedging it.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use devudf::{DevUdf, DevUdfError, Settings};
use wireproto::transport::{read_frame, write_frame};
use wireproto::{Client, ClientOptions, FaultPolicy, RetryPolicy, Server, ServerConfig, WireError};

fn temp_project(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-fail-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn demo_server() -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (1), (2), (3)")
            .unwrap();
        db.execute(
            "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return sum(column) / len(column) }",
        )
        .unwrap();
    })
}

#[test]
fn client_errors_cleanly_after_server_shutdown() {
    let server = demo_server();
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    client.ping().unwrap();
    server.shutdown();
    let err = client.query("SELECT 1").unwrap_err();
    assert!(matches!(err, WireError::Io(_)), "{err:?}");
}

#[test]
fn corrupted_input_bin_fails_with_pickle_error() {
    let server = demo_server();
    let dir = temp_project("corrupt-input");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT f(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    dev.fetch_inputs("f").unwrap();
    // Corrupt the transferred data on disk.
    std::fs::write(dir.join("input.bin"), b"definitely not a pickle").unwrap();
    let err = dev.run_udf("f").unwrap_err();
    match err {
        DevUdfError::Python(e) => assert!(e.message.contains("pickle"), "{e}"),
        other => panic!("{other:?}"),
    }
    // Refetching repairs the project.
    dev.fetch_inputs("f").unwrap();
    assert!(dev.run_udf("f").is_ok());
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn export_after_server_side_drop_fails_cleanly() {
    let server = demo_server();
    let dir = temp_project("dropped");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT f(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    dev.server_query("DROP FUNCTION f").unwrap();
    let err = dev.export(&["f"]).unwrap_err();
    match err {
        DevUdfError::Wire(WireError::Server { code, .. }) => assert_eq!(code, "CatalogError"),
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn debug_query_not_invoking_the_udf_is_a_clean_error() {
    let server = demo_server();
    let dir = temp_project("noinvoke");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT i FROM numbers".to_string(); // no UDF call
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    let err = dev.fetch_inputs("f").unwrap_err();
    match err {
        DevUdfError::Wire(WireError::Server { message, .. }) => {
            assert!(message.contains("does not invoke"), "{message}")
        }
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn runaway_udf_is_stopped_by_the_step_budget() {
    let db = monetlite::Engine::new();
    db.set_udf_step_budget(10_000);
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE FUNCTION forever(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nwhile True:\n    pass\nreturn 1\n}",
    )
    .unwrap();
    let err = db.execute("SELECT forever(i) FROM t").unwrap_err();
    assert!(err.message.contains("budget"), "{err}");
    // The engine is still usable afterwards.
    assert!(db.execute("SELECT count(*) FROM t").is_ok());
}

#[test]
fn deep_udf_recursion_is_capped_not_a_stack_overflow() {
    let db = monetlite::Engine::new();
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE FUNCTION deep(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\ndef rec(n):\n    return rec(n + 1)\nreturn rec(0)\n}",
    )
    .unwrap();
    let err = db.execute("SELECT deep(i) FROM t").unwrap_err();
    assert!(err.message.contains("recursion"), "{err}");
}

#[test]
fn loopback_recursion_through_the_engine_is_bounded() {
    // A UDF that invokes itself through a loopback query must not hang or
    // blow the stack: the interpreter recursion/step guards fire first.
    let db = monetlite::Engine::new();
    db.set_udf_step_budget(100_000);
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE FUNCTION ouro(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT ouro(i) FROM t')\nreturn 1\n}",
    )
    .unwrap();
    let err = db.execute("SELECT ouro(i) FROM t").unwrap_err();
    // Whatever guard fires (budget or stack depth), it must be an error,
    // not a crash.
    assert_eq!(err.code, monetlite::ErrorCode::Udf);
}

#[test]
fn malformed_frames_do_not_kill_the_server() {
    let server = demo_server();
    let (core, session) = server.in_proc_connection();
    // Send raw garbage as a frame body.
    let reply = core.handle_frame(session, &[0xde, 0xad, 0xbe, 0xef]);
    match wireproto::Message::decode(&reply).unwrap() {
        wireproto::Message::Error { code, .. } => assert_eq!(code, "ProtocolError"),
        other => panic!("{other:?}"),
    }
    // The server still answers healthy clients.
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    client.ping().unwrap();
    server.shutdown();
}

/// A fast retry policy for tests: real backoff shape, millisecond scale,
/// so no test ever sleeps for more than the 8 ms cap per retry.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        deadline: Some(Duration::from_secs(5)),
    }
}

fn faulty_options(fault: FaultPolicy, retry: RetryPolicy) -> ClientOptions {
    ClientOptions {
        retry,
        fault: Some(fault),
        ..ClientOptions::default()
    }
}

// Acceptance criterion of the robustness layer: under a seeded 10 %
// drop/corrupt schedule, a retrying client completes 100 consecutive
// query round trips while a bare client on the same schedule fails.
#[test]
fn retrying_client_survives_10pct_faults_where_bare_client_fails() {
    // Counter deltas below demand exact equality: serialize against every
    // other test that records into the process-global registry.
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let fault_counters = [
        ("dropped", obs::counter!("wire.fault.injected.dropped")),
        ("truncated", obs::counter!("wire.fault.injected.truncated")),
        ("corrupted", obs::counter!("wire.fault.injected.corrupted")),
        (
            "disconnected",
            obs::counter!("wire.fault.injected.disconnected"),
        ),
    ];
    let before: Vec<u64> = fault_counters.iter().map(|(_, c)| c.get()).collect();
    let retries_before = obs::counter!("wire.client.retries").get();
    let reconnects_before = obs::counter!("wire.client.reconnects").get();

    let server = demo_server();
    let fault = FaultPolicy::lossy(0xFA17, 0.10);

    let mut robust = Client::connect_in_proc_with(
        &server,
        "monetdb",
        "monetdb",
        "demo",
        faulty_options(fault, test_retry()),
    )
    .unwrap();
    let started = Instant::now();
    for i in 0..100 {
        let t = robust
            .query("SELECT sum(i) FROM numbers")
            .unwrap_or_else(|e| panic!("retrying client failed round trip {i}: {e}"))
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], wireproto::WireValue::Int(6));
    }
    // Every wait is bounded by the backoff cap; the whole loop must be
    // far under the 5 s retry deadline even on a loaded machine.
    assert!(started.elapsed() < Duration::from_secs(5), "not bounded");

    // The registry's injected-fault counters must equal the injector's own
    // per-schedule tally, fault by fault — the metrics are the schedule.
    let stats = robust.fault_stats().expect("client wraps a fault injector");
    for (i, (kind, counter)) in fault_counters.iter().enumerate() {
        let delta = counter.get() - before[i];
        let expected = match *kind {
            "dropped" => stats.dropped,
            "truncated" => stats.truncated,
            "corrupted" => stats.corrupted,
            "disconnected" => stats.disconnected,
            _ => unreachable!(),
        };
        assert_eq!(delta, expected, "counter wire.fault.injected.{kind}");
    }
    // Each injected fault on an idempotent call triggered exactly one
    // retry, and every retry reconnects before re-sending.
    let retries = obs::counter!("wire.client.retries").get() - retries_before;
    let reconnects = obs::counter!("wire.client.reconnects").get() - reconnects_before;
    assert_eq!(retries, reconnects, "every retry reconnects first");
    assert_eq!(
        reconnects, stats.reconnects,
        "transport saw every reconnect"
    );
    // Every retry was provoked by an injected fault; faults drawn during
    // the post-reconnect re-login (whose failures are swallowed and
    // surface on the next attempt) account for the difference.
    assert!(retries > 0, "the 10% schedule must have fired");
    assert!(
        retries <= stats.injected(),
        "retries {retries} vs injected {}",
        stats.injected()
    );

    // Same fault schedule, retries disabled: the connection-level faults
    // surface raw. (Login itself may be the call that dies.)
    let bare_failures = match Client::connect_in_proc_with(
        &server,
        "monetdb",
        "monetdb",
        "demo",
        faulty_options(fault, RetryPolicy::none()),
    ) {
        Err(_) => 1,
        Ok(mut bare) => (0..100)
            .filter(|_| bare.query("SELECT sum(i) FROM numbers").is_err())
            .count(),
    };
    assert!(bare_failures > 0, "bare client should have seen faults");
    server.shutdown();
}

// The delta protocol rides the same retry machinery as every idempotent
// call: a dropped `ExtractDelta` frame (or its reply) must surface as a
// retried, correct payload — never a stale or partial reconstruction.
#[test]
fn dropped_delta_frames_retry_to_a_correct_payload() {
    let _serial = obs::metrics::test_lock();
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE sensor (i INTEGER)").unwrap();
        let values: Vec<String> = (0..500).map(|i| format!("({})", 1000 + i)).collect();
        db.execute(&format!("INSERT INTO sensor VALUES {}", values.join(", ")))
            .unwrap();
        db.execute(
            "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return sum(column) / len(column) }",
        )
        .unwrap();
    });
    let fault = FaultPolicy::lossy(0xDE17A, 0.20);
    let mut flaky = Client::connect_in_proc_with(
        &server,
        "monetdb",
        "monetdb",
        "demo",
        ClientOptions {
            cache: Some(4),
            ..faulty_options(fault, test_retry())
        },
    )
    .unwrap();
    let mut truth = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let options = wireproto::TransferOptions::plain().with_block_size(512);
    let query = "SELECT f(i) FROM sensor";
    // Repeated extracts interleaved with DML: cold, warm-unchanged
    // (NotModified) and warm-dirty (sparse delta) rounds all run under
    // the 20 % drop/corrupt schedule.
    for round in 0..10 {
        let (flaky_value, _) = flaky
            .extract_inputs(query, "f", options)
            .unwrap_or_else(|e| panic!("delta extract failed in round {round}: {e}"));
        let (truth_value, _) = truth.extract_inputs(query, "f", options).unwrap();
        assert!(
            flaky_value.py_eq(&truth_value),
            "retried delta extract diverged in round {round}"
        );
        if round % 2 == 0 {
            truth
                .query(&format!(
                    "UPDATE sensor SET i = {} WHERE i = {}",
                    1000 + round,
                    1250 + round
                ))
                .unwrap();
        }
    }
    let stats = flaky.fault_stats().expect("fault injector configured");
    assert!(stats.injected() > 0, "the 20% schedule must have fired");
    server.shutdown();
}

#[test]
fn non_idempotent_statement_is_never_replayed() {
    // Bumps the shared wire.fault.* counters: keep the exact-equality test
    // above honest by serializing with it.
    let _serial = obs::metrics::test_lock();
    let server = demo_server();
    let fault = FaultPolicy {
        drop_rate: 0.5,
        ..FaultPolicy::none(21)
    };
    let mut client = Client::connect_in_proc_with(
        &server,
        "monetdb",
        "monetdb",
        "demo",
        faulty_options(fault, test_retry()),
    )
    .unwrap();
    // INSERTs must not retry: the first transient failure surfaces as
    // RetriesExhausted with attempts == 1 (the write may have executed).
    let mut first_err = None;
    for _ in 0..50 {
        if let Err(e) = client.query("INSERT INTO numbers VALUES (9)") {
            first_err = Some(e);
            break;
        }
    }
    match first_err.expect("a 50% drop rate must hit within 50 inserts") {
        WireError::RetriesExhausted { attempts, last, .. } => {
            assert_eq!(attempts, 1);
            assert!(matches!(*last, WireError::Io(_)), "{last:?}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn exhausted_retries_surface_as_typed_error() {
    let _serial = obs::metrics::test_lock();
    let server = demo_server();
    // Connect cleanly first, then every frame vanishes.
    let mut client = Client::connect_in_proc_with(
        &server,
        "monetdb",
        "monetdb",
        "demo",
        ClientOptions::default(),
    )
    .unwrap();
    client.ping().unwrap();
    drop(client);

    let err = Client::connect_in_proc_with(
        &server,
        "monetdb",
        "monetdb",
        "demo",
        faulty_options(FaultPolicy::black_hole(4), test_retry()),
    )
    .unwrap_err();
    match err {
        WireError::RetriesExhausted {
            attempts,
            last,
            elapsed,
        } => {
            assert_eq!(attempts, 5);
            assert!(matches!(*last, WireError::Io(_)));
            // 4 backoff sleeps of >= 1 ms each separated the attempts.
            assert!(elapsed >= Duration::from_millis(4), "{elapsed:?}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn stalled_tcp_server_cannot_hang_the_client() {
    // A "server" that accepts and then never replies: the client's read
    // deadline must turn the stall into a clean IO error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let mut buf = [0u8; 1024];
        let _ = conn.read(&mut buf); // swallow the login frame, say nothing
        std::thread::sleep(Duration::from_millis(500));
    });
    let started = Instant::now();
    let err = Client::connect_tcp_with(
        addr,
        "monetdb",
        "monetdb",
        "demo",
        ClientOptions {
            read_timeout: Some(Duration::from_millis(150)),
            ..ClientOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, WireError::Io(_)), "{err:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "hung on a stall"
    );
    stall.join().unwrap();
}

#[test]
fn mid_frame_disconnect_is_a_clean_io_error() {
    // The peer dies after sending a length prefix and half a body.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let half = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        read_frame(&mut conn).unwrap(); // the login frame
        conn.write_all(&100u32.to_le_bytes()).unwrap();
        conn.write_all(&[0u8; 10]).unwrap();
        // Drop: connection closes mid-frame.
    });
    let err = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap_err();
    assert!(matches!(err, WireError::Io(_)), "{err:?}");
    half.join().unwrap();
}

#[test]
fn corrupted_reply_frame_is_a_checksum_protocol_error() {
    // The reply arrives complete but bit-flipped: the frame checksum must
    // reject it as a protocol error naming the checksum.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let corrupt = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        read_frame(&mut conn).unwrap();
        let mut frame = Vec::new();
        write_frame(&mut frame, b"some well-formed reply body").unwrap();
        frame[7] ^= 0x01; // flip one body bit; length + checksum intact
        conn.write_all(&frame).unwrap();
    });
    let err = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap_err();
    match err {
        WireError::Protocol(msg) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("{other:?}"),
    }
    corrupt.join().unwrap();
}

#[test]
fn server_shutdown_with_live_listener_is_immediate() {
    let server = demo_server();
    let addr = server.listen_tcp().unwrap();
    let mut client = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap();
    client.ping().unwrap();
    // Blocking accept must be woken by the shutdown self-connection, not
    // discovered by a poll loop.
    let started = Instant::now();
    server.shutdown();
    assert!(started.elapsed() < Duration::from_secs(2), "slow shutdown");
}

#[test]
fn stalled_peer_is_dropped_and_does_not_wedge_other_sessions() {
    let server = Server::start(
        ServerConfig::new("demo", "monetdb", "monetdb")
            .with_frame_deadline(Duration::from_millis(200)),
        |db| {
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
        },
    );
    let addr = server.listen_tcp().unwrap();
    // A peer that sends a length prefix and then stalls mid-frame.
    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(&64u32.to_le_bytes()).unwrap();
    // Healthy clients are unaffected (each session has its own thread).
    let mut client = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap();
    client.ping().unwrap();
    // The stalled session is cut once the mid-frame deadline expires:
    // our next read observes the server-side close, never a 5 s wait.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 8];
    match stalled.read(&mut buf) {
        Ok(0) => {}                                                     // clean EOF
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {} // RST
        other => panic!("stalled session was not dropped: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn metrics_registry_is_exact_under_concurrency() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let counter = obs::counter!("test.failures.smoke.counter");
    let hist = obs::histogram!("test.failures.smoke.hist");
    let c0 = counter.get();
    let h0 = hist.count();
    let s0 = hist.sum();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                // Fresh handles per thread: same registry entry either way.
                let counter = obs::counter!("test.failures.smoke.counter");
                let hist = obs::histogram!("test.failures.smoke.hist");
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record((t as u64) * PER_THREAD + i);
                }
            });
        }
    });
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get() - c0, n);
    assert_eq!(hist.count() - h0, n);
    // Sum of 0..n recorded exactly once each.
    assert_eq!(hist.sum() - s0, n * (n - 1) / 2);
}

#[test]
fn vcs_checkout_of_bogus_commit_errors() {
    let dir = temp_project("vcs-bogus");
    let repo = minivcs::Repository::init(&dir).unwrap();
    let err = repo.checkout(&minivcs::ObjectId("0123456789abcdef".to_string()));
    assert!(err.is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn local_loopback_recursion_is_bounded_too() {
    // A self-recursive UDF debugged *locally* must hit the devUDF-side
    // nesting guard, not the native stack.
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute(
            "CREATE FUNCTION ouro(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT ouro(i) FROM t')\nreturn 1\n}",
        )
        .unwrap();
    });
    let dir = temp_project("local-ouro");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT ouro(i) FROM t".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    let err = dev.run_udf("ouro").unwrap_err();
    match err {
        DevUdfError::Python(e) => {
            assert!(
                e.message.contains("depth") || e.message.contains("recursion"),
                "{e}"
            );
        }
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}
