//! Failure injection across the stack: every layer must fail loudly and
//! cleanly, never hang or corrupt state.

use devudf::{DevUdf, DevUdfError, Settings};
use wireproto::{Server, ServerConfig, WireError};

fn temp_project(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-fail-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn demo_server() -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (1), (2), (3)")
            .unwrap();
        db.execute(
            "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return sum(column) / len(column) }",
        )
        .unwrap();
    })
}

#[test]
fn client_errors_cleanly_after_server_shutdown() {
    let server = demo_server();
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    client.ping().unwrap();
    server.shutdown();
    let err = client.query("SELECT 1").unwrap_err();
    assert!(matches!(err, WireError::Io(_)), "{err:?}");
}

#[test]
fn corrupted_input_bin_fails_with_pickle_error() {
    let server = demo_server();
    let dir = temp_project("corrupt-input");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT f(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    dev.fetch_inputs("f").unwrap();
    // Corrupt the transferred data on disk.
    std::fs::write(dir.join("input.bin"), b"definitely not a pickle").unwrap();
    let err = dev.run_udf("f").unwrap_err();
    match err {
        DevUdfError::Python(e) => assert!(e.message.contains("pickle"), "{e}"),
        other => panic!("{other:?}"),
    }
    // Refetching repairs the project.
    dev.fetch_inputs("f").unwrap();
    assert!(dev.run_udf("f").is_ok());
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn export_after_server_side_drop_fails_cleanly() {
    let server = demo_server();
    let dir = temp_project("dropped");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT f(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    dev.server_query("DROP FUNCTION f").unwrap();
    let err = dev.export(&["f"]).unwrap_err();
    match err {
        DevUdfError::Wire(WireError::Server { code, .. }) => assert_eq!(code, "CatalogError"),
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn debug_query_not_invoking_the_udf_is_a_clean_error() {
    let server = demo_server();
    let dir = temp_project("noinvoke");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT i FROM numbers".to_string(); // no UDF call
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    let err = dev.fetch_inputs("f").unwrap_err();
    match err {
        DevUdfError::Wire(WireError::Server { message, .. }) => {
            assert!(message.contains("does not invoke"), "{message}")
        }
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn runaway_udf_is_stopped_by_the_step_budget() {
    let db = monetlite::Engine::new();
    db.set_udf_step_budget(10_000);
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE FUNCTION forever(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nwhile True:\n    pass\nreturn 1\n}",
    )
    .unwrap();
    let err = db.execute("SELECT forever(i) FROM t").unwrap_err();
    assert!(err.message.contains("budget"), "{err}");
    // The engine is still usable afterwards.
    assert!(db.execute("SELECT count(*) FROM t").is_ok());
}

#[test]
fn deep_udf_recursion_is_capped_not_a_stack_overflow() {
    let db = monetlite::Engine::new();
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE FUNCTION deep(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\ndef rec(n):\n    return rec(n + 1)\nreturn rec(0)\n}",
    )
    .unwrap();
    let err = db.execute("SELECT deep(i) FROM t").unwrap_err();
    assert!(err.message.contains("recursion"), "{err}");
}

#[test]
fn loopback_recursion_through_the_engine_is_bounded() {
    // A UDF that invokes itself through a loopback query must not hang or
    // blow the stack: the interpreter recursion/step guards fire first.
    let db = monetlite::Engine::new();
    db.set_udf_step_budget(100_000);
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE FUNCTION ouro(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT ouro(i) FROM t')\nreturn 1\n}",
    )
    .unwrap();
    let err = db.execute("SELECT ouro(i) FROM t").unwrap_err();
    // Whatever guard fires (budget or stack depth), it must be an error,
    // not a crash.
    assert_eq!(err.code, monetlite::ErrorCode::Udf);
}

#[test]
fn malformed_frames_do_not_kill_the_server() {
    let server = demo_server();
    let (sender, session) = server.in_proc_connection();
    // Send raw garbage as a frame body.
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    sender
        .send(wireproto::server::ServerRequest::Frame {
            session,
            body: vec![0xde, 0xad, 0xbe, 0xef],
            reply: reply_tx,
        })
        .unwrap();
    let reply = reply_rx.recv().unwrap();
    match wireproto::Message::decode(&reply).unwrap() {
        wireproto::Message::Error { code, .. } => assert_eq!(code, "ProtocolError"),
        other => panic!("{other:?}"),
    }
    // The server still answers healthy clients.
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn vcs_checkout_of_bogus_commit_errors() {
    let dir = temp_project("vcs-bogus");
    let repo = minivcs::Repository::init(&dir).unwrap();
    let err = repo.checkout(&minivcs::ObjectId("0123456789abcdef".to_string()));
    assert!(err.is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn local_loopback_recursion_is_bounded_too() {
    // A self-recursive UDF debugged *locally* must hit the devUDF-side
    // nesting guard, not the native stack.
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute(
            "CREATE FUNCTION ouro(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nres = _conn.execute('SELECT ouro(i) FROM t')\nreturn 1\n}",
        )
        .unwrap();
    });
    let dir = temp_project("local-ouro");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT ouro(i) FROM t".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    let err = dev.run_udf("ouro").unwrap_err();
    match err {
        DevUdfError::Python(e) => {
            assert!(
                e.message.contains("depth") || e.message.contains("recursion"),
                "{e}"
            );
        }
        other => panic!("{other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}
