//! Cross-crate end-to-end tests: TCP transport, VCS integration, workflow
//! comparison, execution models, and failure injection across the stack.

use devudf::{workflow, DevUdf, Settings};
use wireproto::{Server, ServerConfig, TransferOptions, WireError, WireValue};

fn temp_project(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn demo_server(rows: usize) -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), move |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        // Locally repetitive values: realistic and compressible.
        let values: Vec<String> = (1..=rows).map(|i| format!("({})", i % 50)).collect();
        for chunk in values.chunks(1000) {
            db.execute(&format!("INSERT INTO numbers VALUES {}", chunk.join(", ")))
                .unwrap();
        }
        db.execute(concat!(
            "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n",
            "mean = 0\n",
            "for i in range(0, len(column)):\n",
            "    mean += column[i]\n",
            "mean = mean / len(column)\n",
            "distance = 0\n",
            "for i in range(0, len(column)):\n",
            "    distance += abs(column[i] - mean)\n",
            "return distance / len(column)\n",
            "}"
        ))
        .unwrap();
    })
}

#[test]
fn full_cycle_over_tcp() {
    let server = demo_server(50);
    let addr = server.listen_tcp().unwrap();
    let dir = temp_project("tcp");
    let mut settings = Settings::default();
    settings.host = addr.ip().to_string();
    settings.port = addr.port();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_tcp(settings, &dir).unwrap();
    dev.import_all().unwrap();
    let outcome = dev.run_udf("mean_deviation").unwrap();
    assert!(matches!(outcome.result, pylite::Value::Float(f) if f > 0.0));
    dev.export(&["mean_deviation"]).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn vcs_tracks_the_fix_history() {
    let server = demo_server(20);
    let dir = temp_project("vcs");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.project.init_vcs().unwrap();

    dev.import_all().unwrap();
    let c1 = dev
        .project
        .commit_all("import UDFs from server", "dev")
        .unwrap();

    let script = dev.project.read_udf("mean_deviation").unwrap();
    dev.project
        .write_udf("mean_deviation", &script.replace("abs(", "abs( "))
        .unwrap();
    let c2 = dev.project.commit_all("cosmetic tweak", "dev").unwrap();
    assert_ne!(c1, c2);

    let repo = dev.project.vcs().unwrap();
    let log = repo.log().unwrap();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].message, "cosmetic tweak");
    let diff = repo
        .diff_file(
            "mean_deviation.py",
            &minivcs::ObjectId(c1.clone()),
            Some(&minivcs::ObjectId(c2.clone())),
        )
        .unwrap();
    assert!(diff.contains("-"), "diff shows the change:\n{diff}");

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn workflow_comparison_round_trips() {
    let server = demo_server(500);
    let dir = temp_project("workflow");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();

    let trad = workflow::traditional_workflow(
        &mut dev,
        "CREATE OR REPLACE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON",
        "SELECT mean_deviation(i) FROM numbers",
        6,
        |i| format!("return {i}.0 + sum(column) * 0\n"),
    )
    .unwrap();
    let devw = workflow::devudf_workflow(&mut dev, "mean_deviation", 6, |i, original| {
        original.replace("return", &format!("ignored = {i}\n    return"))
    })
    .unwrap();
    assert_eq!(trad.server_round_trips, 12);
    assert!(devw.server_round_trips < trad.server_round_trips);

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn sampling_transfers_fewer_bytes_end_to_end() {
    let server = demo_server(5_000);
    let dir = temp_project("sampling");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    settings.transfer.sample = Some(100);
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
    dev.import_all().unwrap();
    let stats = dev.fetch_inputs("mean_deviation").unwrap();
    // Running locally on the sample still works and is plausible.
    let outcome = dev.run_udf("mean_deviation").unwrap();
    assert!(matches!(outcome.result, pylite::Value::Float(f) if f > 0.0));
    // 100 of 5000 rows → a small payload.
    let full_estimate = 5_000 * 2; // ≥2 bytes per varint-encoded value
    assert!(stats.wire_len < full_estimate / 5, "{}", stats.wire_len);

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn server_rejects_bad_password_and_client_reports_auth_error() {
    let server = demo_server(5);
    let err = wireproto::Client::connect_in_proc(&server, "monetdb", "oops", "demo").unwrap_err();
    assert!(matches!(err, WireError::Auth(_)));
    server.shutdown();
}

#[test]
fn udf_runtime_error_travels_with_traceback_through_every_layer() {
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute(concat!(
            "CREATE FUNCTION crashy(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\n",
            "x = 10\n",
            "return x / (len(i) - len(i))\n",
            "}"
        ))
        .unwrap();
    });
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let err = client.query("SELECT crashy(i) FROM t").unwrap_err();
    match err {
        WireError::Server {
            code, traceback, ..
        } => {
            assert_eq!(code, "UdfError");
            let tb = traceback.unwrap();
            assert!(tb.contains("line 2"), "{tb}");
            assert!(tb.contains("ZeroDivisionError"), "{tb}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn tuple_at_a_time_server_matches_operator_at_a_time_for_rowwise_udfs() {
    // §2.4: for per-row UDFs the two models must agree on results.
    let run = |model: monetlite::ExecutionModel| -> Vec<WireValue> {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), move |db| {
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
            db.execute(
                "CREATE FUNCTION sq(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * i }",
            )
            .unwrap();
            db.set_model(model);
        });
        let mut client =
            wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
        let t = client
            .query("SELECT sq(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        let vals: Vec<WireValue> = t.rows.into_iter().map(|mut r| r.remove(0)).collect();
        server.shutdown();
        vals
    };
    assert_eq!(
        run(monetlite::ExecutionModel::OperatorAtATime),
        run(monetlite::ExecutionModel::TupleAtATime)
    );
}

#[test]
fn transfer_options_matrix_end_to_end() {
    let server = demo_server(300);
    for (compress, encrypt, sample) in [
        (false, false, None),
        (true, false, None),
        (false, true, None),
        (true, true, Some(50usize)),
    ] {
        let dir = temp_project(&format!("matrix-{compress}-{encrypt}-{sample:?}"));
        let mut settings = Settings::default();
        settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        settings.transfer.compress = compress;
        settings.transfer.encrypt = encrypt;
        settings.transfer.sample = sample;
        let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
        dev.import_all().unwrap();
        let outcome = dev.run_udf("mean_deviation").unwrap();
        assert!(
            matches!(outcome.result, pylite::Value::Float(f) if f > 0.0),
            "options ({compress},{encrypt},{sample:?})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    server.shutdown();
}

#[test]
fn extract_options_also_work_directly_on_the_client() {
    let server = demo_server(1_000);
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let (plain, plain_stats) = client
        .extract_inputs(
            "SELECT mean_deviation(i) FROM numbers",
            "mean_deviation",
            TransferOptions::plain(),
        )
        .unwrap();
    let (compressed, compressed_stats) = client
        .extract_inputs(
            "SELECT mean_deviation(i) FROM numbers",
            "mean_deviation",
            TransferOptions::compressed(),
        )
        .unwrap();
    assert!(plain.py_eq(&compressed), "payload content identical");
    assert!(compressed_stats.wire_len < plain_stats.wire_len);
    server.shutdown();
}

// Acceptance criterion of the telemetry layer: a live `sys.metrics` query
// over TCP surfaces counters from both sides of the wire — client retry
// activity and engine-side UDF invocations — in one result set.
#[test]
fn sys_metrics_over_tcp_shows_wire_and_udf_counters() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let server = demo_server(50);
    let addr = server.listen_tcp().unwrap();
    let retries_before = obs::counter!("wire.client.retries").get();
    let udfs_before = obs::counter!("monet.udf.invocations").get();

    // A lossy link plus a retry budget: the client both exercises the UDF
    // path and is forced into retries by the seeded fault schedule.
    let mut client = wireproto::Client::connect_tcp_with(
        addr,
        "monetdb",
        "monetdb",
        "demo",
        wireproto::ClientOptions {
            retry: wireproto::RetryPolicy {
                max_attempts: 8,
                initial_backoff: std::time::Duration::from_millis(1),
                max_backoff: std::time::Duration::from_millis(4),
                deadline: Some(std::time::Duration::from_secs(10)),
            },
            fault: Some(wireproto::FaultPolicy::lossy(0x5e7ec5, 0.20)),
            ..wireproto::ClientOptions::default()
        },
    )
    .unwrap();
    for _ in 0..20 {
        client
            .query("SELECT mean_deviation(i) FROM numbers")
            .unwrap();
    }
    assert!(
        obs::counter!("wire.client.retries").get() > retries_before,
        "the 20% schedule must have forced at least one retry"
    );

    let table = client
        .query("SELECT * FROM sys.metrics")
        .unwrap()
        .into_table()
        .unwrap();
    let name_idx = table.columns.iter().position(|(n, _)| n == "name").unwrap();
    let value_idx = table
        .columns
        .iter()
        .position(|(n, _)| n == "value")
        .unwrap();
    let value_of = |metric: &str| -> i64 {
        let row = table
            .rows
            .iter()
            .find(|r| r[name_idx] == WireValue::Str(metric.to_string()))
            .unwrap_or_else(|| panic!("sys.metrics has no row '{metric}'"));
        match &row[value_idx] {
            WireValue::Int(v) => *v,
            other => panic!("{other:?}"),
        }
    };
    assert!(value_of("wire.client.retries") as u64 > retries_before);
    assert!(value_of("monet.udf.invocations") as u64 > udfs_before);
    assert!(value_of("wire.server.frames") > 0);
    assert!(value_of("monet.queries.executed") > 0);
    server.shutdown();
}
