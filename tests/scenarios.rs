//! The paper's two demo scenarios (§2.5), end-to-end: the bug is observed
//! the traditional way, localized with the interactive debugger, fixed
//! locally, exported, and verified server-side.

use devudf::{transform, DevUdf, Settings};
use pylite::{DebugCommand, Debugger};
use wireproto::{Server, ServerConfig, WireValue};

fn temp_project(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-scen-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const LISTING4: &str = concat!(
    "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\n",
    "mean = 0\n",
    "for i in range(0, len(column)):\n",
    "    mean += column[i]\n",
    "mean = mean / len(column)\n",
    "distance = 0\n",
    "for i in range(0, len(column)):\n",
    "    distance += column[i] - mean\n",
    "deviation = distance / len(column)\n",
    "return deviation\n",
    "}"
);

#[test]
fn scenario_a_full_cycle() {
    // Serialize with the telemetry test: debug pauses bump the global
    // `pylite.debug.*` counters it measures as deltas.
    let _serial = obs::metrics::test_lock();
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        let rows: Vec<String> = (1..=30).map(|i| format!("({i})")).collect();
        db.execute(&format!("INSERT INTO numbers VALUES {}", rows.join(", ")))
            .unwrap();
        db.execute(LISTING4).unwrap();
    });
    let dir = temp_project("a");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();

    // Step 1/2: the wrong server-side answer.
    let before = dev
        .server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    assert!(matches!(before.rows[0][0], WireValue::Double(d) if d.abs() < 1e-9));

    // Step 4: import + interactive debugging reveals the sign bug.
    dev.import(&["mean_deviation"]).unwrap();
    let dbg = Debugger::scripted(vec![DebugCommand::Continue; 64]);
    dbg.borrow_mut()
        .add_breakpoint(7 + transform::BODY_LINE_OFFSET);
    dbg.borrow_mut().add_watch("distance");
    let outcome = dev.debug_udf("mean_deviation", dbg.clone()).unwrap();
    assert_eq!(outcome.pauses, 30, "one pause per row");
    let negative_seen = dbg
        .borrow()
        .pauses()
        .iter()
        .any(|p| p.watches[0].1.starts_with('-'));
    assert!(
        negative_seen,
        "debugger exposes the impossible negative distance"
    );

    // Fix locally, verify locally.
    let script = dev.project.read_udf("mean_deviation").unwrap();
    dev.project
        .write_udf(
            "mean_deviation",
            &script.replace(
                "distance += column[i] - mean",
                "distance += abs(column[i] - mean)",
            ),
        )
        .unwrap();
    let local = dev.run_udf("mean_deviation").unwrap();
    match local.result {
        pylite::Value::Float(f) => assert!(
            (f - 7.5).abs() < 1e-9,
            "mean |x-15.5| of 1..30 = 7.5, got {f}"
        ),
        other => panic!("{other:?}"),
    }

    // Export and verify server-side.
    dev.export(&["mean_deviation"]).unwrap();
    let after = dev
        .server_query("SELECT mean_deviation(i) FROM numbers")
        .unwrap()
        .into_table()
        .unwrap();
    assert!(matches!(after.rows[0][0], WireValue::Double(d) if (d - 7.5).abs() < 1e-9));

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn scenario_b_full_cycle() {
    // Serialize with the telemetry test: debug pauses bump the global
    // `pylite.debug.*` counters it measures as deltas.
    let _serial = obs::metrics::test_lock();
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        for (name, content) in [
            ("data/part1.csv", "1\n2\n3\n"),
            ("data/part2.csv", "4\n5\n6\n"),
            ("data/part3.csv", "7\n8\n9\n"),
        ] {
            db.fs().write(name, content.as_bytes()).unwrap();
        }
        db.execute(concat!(
            "CREATE FUNCTION loadnumbers(path STRING) RETURNS TABLE(i INTEGER) LANGUAGE PYTHON {\n",
            "import os\n",
            "files = os.listdir(path)\n",
            "result = []\n",
            "for i in range(0, len(files) - 1):\n",
            "    file = open(path + '/' + files[i], 'r')\n",
            "    for line in file:\n",
            "        result.append(int(line))\n",
            "return result\n",
            "}"
        ))
        .unwrap();
    });
    let dir = temp_project("b");
    let mut settings = Settings::default();
    settings.debug_query = "SELECT * FROM loadnumbers('data')".to_string();
    let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();

    // The data-dependent bug: sum over 6 instead of 9 values.
    let before = dev
        .server_query("SELECT sum(i) FROM loadnumbers('data')")
        .unwrap()
        .into_table()
        .unwrap();
    assert_eq!(before.rows[0][0], WireValue::Int(21));

    // Debug locally: mirror the CSV directory into the project (demo setup).
    dev.import(&["loadnumbers"]).unwrap();
    for (name, content) in [
        ("data/part1.csv", "1\n2\n3\n"),
        ("data/part2.csv", "4\n5\n6\n"),
        ("data/part3.csv", "7\n8\n9\n"),
    ] {
        dev.project
            .fs_provider()
            .write(name, content.as_bytes())
            .unwrap();
    }
    let dbg = Debugger::scripted(vec![DebugCommand::Continue; 16]);
    dbg.borrow_mut()
        .add_breakpoint(5 + transform::BODY_LINE_OFFSET);
    dbg.borrow_mut().add_watch("len(files)");
    let outcome = dev.debug_udf("loadnumbers", dbg.clone()).unwrap();
    // The loop body runs only twice even though there are three files.
    assert_eq!(outcome.pauses, 2);
    assert_eq!(dbg.borrow().pauses()[0].watches[0].1, "3");

    // Fix, verify locally, export, verify remotely.
    let script = dev.project.read_udf("loadnumbers").unwrap();
    dev.project
        .write_udf(
            "loadnumbers",
            &script.replace("range(0, len(files) - 1)", "range(0, len(files))"),
        )
        .unwrap();
    let local = dev.run_udf("loadnumbers").unwrap();
    assert_eq!(
        local.result,
        pylite::Value::list((1..=9).map(pylite::Value::Int).collect())
    );
    dev.export(&["loadnumbers"]).unwrap();
    let after = dev
        .server_query("SELECT sum(i), count(*) FROM loadnumbers('data')")
        .unwrap()
        .into_table()
        .unwrap();
    assert_eq!(after.rows[0][0], WireValue::Int(45));
    assert_eq!(after.rows[0][1], WireValue::Int(9));

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

/// The debugger contract is engine-independent: running Scenario A's
/// debug session under the AST walker and under the bytecode VM must
/// produce the same pause count AND the same `pylite.debug.*` telemetry
/// (pauses, breakpoint hits, step pauses) in `sys.metrics`' counters.
#[test]
fn debugger_telemetry_is_identical_across_engines() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let pauses_c = obs::counter!("pylite.debug.pauses");
    let breaks_c = obs::counter!("pylite.debug.breakpoints");
    let steps_c = obs::counter!("pylite.debug.steps");

    let mut observed = Vec::new();
    for mode in [devudf::InterpMode::Ast, devudf::InterpMode::Bytecode] {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            let rows: Vec<String> = (1..=30).map(|i| format!("({i})")).collect();
            db.execute(&format!("INSERT INTO numbers VALUES {}", rows.join(", ")))
                .unwrap();
            db.execute(LISTING4).unwrap();
        });
        let dir = temp_project(&format!("dbg-metrics-{}", mode.as_str()));
        let mut settings = Settings::default();
        settings.debug_query = "SELECT mean_deviation(i) FROM numbers".to_string();
        settings.interp = mode;
        let mut dev = DevUdf::connect_in_proc(&server, settings, &dir).unwrap();
        dev.import(&["mean_deviation"]).unwrap();

        // Alternate Step/Continue so both breakpoint-hit and step pauses
        // occur; 200 commands comfortably outlast the session.
        let cmds: Vec<DebugCommand> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    DebugCommand::StepInto
                } else {
                    DebugCommand::Continue
                }
            })
            .collect();
        let dbg = Debugger::scripted(cmds);
        dbg.borrow_mut()
            .add_breakpoint(7 + transform::BODY_LINE_OFFSET);

        let (p0, b0, s0) = (pauses_c.get(), breaks_c.get(), steps_c.get());
        let outcome = dev.debug_udf("mean_deviation", dbg).unwrap();
        observed.push((
            outcome.pauses,
            pauses_c.get() - p0,
            breaks_c.get() - b0,
            steps_c.get() - s0,
        ));

        std::fs::remove_dir_all(&dir).ok();
        server.shutdown();
    }

    assert_eq!(
        observed[0], observed[1],
        "debugger telemetry diverged across engines (pauses, pauses_c, breakpoints, steps)"
    );
    let (pauses, pauses_metric, breakpoints, steps) = observed[0];
    assert_eq!(pauses as u64, pauses_metric);
    assert!(breakpoints > 0, "breakpoint pauses must occur");
    assert!(steps > 0, "step pauses must occur");
}

#[test]
fn print_debugging_baseline_gives_less_insight() {
    // The paper's step 3: print debugging requires re-CREATE + rerun per
    // probe and only surfaces final aggregates.
    let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
        db.execute("INSERT INTO numbers VALUES (1), (2), (3)")
            .unwrap();
        db.execute(LISTING4).unwrap();
    });
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    // Probe 1: recreate with a print.
    client
        .query(
            &LISTING4
                .replace("CREATE FUNCTION", "CREATE OR REPLACE FUNCTION")
                .replace(
                    "deviation = distance / len(column)",
                    "print('distance =', distance)\ndeviation = distance / len(column)",
                ),
        )
        .unwrap();
    client
        .query("SELECT mean_deviation(i) FROM numbers")
        .unwrap();
    assert!(client.last_udf_stdout().contains("distance ="));
    server.shutdown();
}
