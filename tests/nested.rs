//! Paper §2.3 / Listing 3 end-to-end: nested UDFs inside loopback queries,
//! executed server-side and then locally (with the debugger stepping into
//! the nested UDF).

use devudf::{DevUdf, Settings};
use pylite::{DebugCommand, Debugger, Value};
use wireproto::{Server, ServerConfig, WireValue};

const TRAIN_RNFOREST: &str = concat!(
    "CREATE FUNCTION train_rnforest(data INTEGER, classes INTEGER, n_estimators INTEGER) ",
    "RETURNS TABLE(clf BLOB, estimators INTEGER) LANGUAGE PYTHON {\n",
    "import pickle\n",
    "from sklearn.ensemble import RandomForestClassifier\n",
    "clf = RandomForestClassifier(n_estimators)\n",
    "clf.fit(data, classes)\n",
    "return {'clf': pickle.dumps(clf), 'estimators': n_estimators}\n",
    "}"
);

const FIND_BEST: &str = concat!(
    "CREATE FUNCTION find_best_classifier(esttest INTEGER) ",
    "RETURNS TABLE(clf BLOB, n_estimators INTEGER) LANGUAGE PYTHON {\n",
    "import pickle\n",
    "import numpy\n",
    "(tdata, tlabels) = _conn.execute(\"\"\"SELECT data,\n",
    "    labels FROM testingset\"\"\")\n",
    "best_classifier = None\n",
    "best_classifier_answers = -1\n",
    "best_estimator = -1\n",
    "for estimator in esttest:\n",
    "    res = _conn.execute(\n",
    "        \"\"\"\n",
    "        SELECT *\n",
    "        FROM train_rnforest(\n",
    "            (SELECT data, labels\n",
    "            FROM trainingset), %d);\n",
    "        \"\"\" % estimator)\n",
    "    classifier = pickle.loads(res['clf'])\n",
    "    predictions = classifier.predict(tdata)\n",
    "    correct_predictions = predictions == tlabels\n",
    "    correct_ans = numpy.sum(correct_predictions)\n",
    "    if correct_ans > best_classifier_answers:\n",
    "        best_classifier = classifier\n",
    "        best_classifier_answers = correct_ans\n",
    "        best_estimator = estimator\n",
    "return {'clf': pickle.dumps(best_classifier), 'n_estimators': best_estimator}\n",
    "}"
);

fn listing3_server() -> Server {
    Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
        db.execute("CREATE TABLE trainingset (data INTEGER, labels INTEGER)")
            .unwrap();
        db.execute("CREATE TABLE testingset (data INTEGER, labels INTEGER)")
            .unwrap();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for i in 0..150 {
            let x = i % 11;
            let y = (x > 5) as i64;
            if i % 3 == 0 {
                test.push(format!("({x}, {y})"));
            } else {
                train.push(format!("({x}, {y})"));
            }
        }
        db.execute(&format!(
            "INSERT INTO trainingset VALUES {}",
            train.join(", ")
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO testingset VALUES {}",
            test.join(", ")
        ))
        .unwrap();
        db.execute("CREATE TABLE candidates (est INTEGER)").unwrap();
        db.execute("INSERT INTO candidates VALUES (2), (8)")
            .unwrap();
        db.execute(TRAIN_RNFOREST).unwrap();
        db.execute(FIND_BEST).unwrap();
    })
}

fn temp_project(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "devudf-nested-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn settings() -> Settings {
    let mut s = Settings::default();
    s.debug_query = "SELECT * FROM find_best_classifier((SELECT est FROM candidates))".to_string();
    s
}

#[test]
fn listing3_runs_server_side() {
    let server = listing3_server();
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let t = client
        .query("SELECT n_estimators FROM find_best_classifier((SELECT est FROM candidates))")
        .unwrap()
        .into_table()
        .unwrap();
    match t.rows[0][0] {
        WireValue::Int(n) => assert!(n == 2 || n == 8, "best estimator from candidates, got {n}"),
        ref other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn listing3_runs_locally_with_nested_extraction() {
    let server = listing3_server();
    let dir = temp_project("local");
    let mut dev = DevUdf::connect_in_proc(&server, settings(), &dir).unwrap();
    dev.import_all().unwrap();

    let outcome = dev.run_udf("find_best_classifier").unwrap();
    let Value::Dict(d) = &outcome.result else {
        panic!("{:?}", outcome.result)
    };
    let best = d
        .borrow()
        .get(&Value::str("n_estimators"))
        .unwrap()
        .unwrap();
    assert!(matches!(best, Value::Int(2) | Value::Int(8)));
    // Transfers: 1 outer inputs + 2 nested (one per candidate).
    assert_eq!(dev.transfer_log().len(), 3);

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn local_and_server_results_agree() {
    // Determinism: the forest seed is fixed on both sides, so the chosen
    // n_estimators must match between server-side and local execution.
    let server = listing3_server();
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let t = client
        .query("SELECT n_estimators FROM find_best_classifier((SELECT est FROM candidates))")
        .unwrap()
        .into_table()
        .unwrap();
    let WireValue::Int(server_best) = t.rows[0][0] else {
        panic!()
    };

    let dir = temp_project("agree");
    let mut dev = DevUdf::connect_in_proc(&server, settings(), &dir).unwrap();
    dev.import_all().unwrap();
    let outcome = dev.run_udf("find_best_classifier").unwrap();
    let Value::Dict(d) = &outcome.result else {
        panic!()
    };
    let local_best = d
        .borrow()
        .get(&Value::str("n_estimators"))
        .unwrap()
        .unwrap();
    assert_eq!(local_best, Value::Int(server_best));

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn debugger_steps_into_nested_udf() {
    let server = listing3_server();
    let dir = temp_project("stepin");
    let mut dev = DevUdf::connect_in_proc(&server, settings(), &dir).unwrap();
    dev.import_all().unwrap();

    // Break on `clf.fit(...)` — line 4 of the *nested* train_rnforest body,
    // which only executes inside the loopback call.
    let dbg = Debugger::scripted(vec![DebugCommand::Continue; 8]);
    dbg.borrow_mut().add_breakpoint(4);
    let outcome = dev.debug_udf("find_best_classifier", dbg.clone()).unwrap();
    assert!(outcome.run.is_some());
    let d = dbg.borrow();
    let nested_pauses: Vec<_> = d
        .pauses()
        .iter()
        .filter(|p| p.locals.iter().any(|(n, _)| n == "n_estimators"))
        .collect();
    assert!(
        !nested_pauses.is_empty(),
        "the debugger must pause inside the nested UDF's body"
    );

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn pickled_classifier_round_trips_between_engines() {
    // The classifier pickled by the nested UDF (server) must be loadable by
    // the outer UDF (locally) — the exact dance Listing 3 performs.
    let server = listing3_server();
    let mut client =
        wireproto::Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
    let t = client
        .query("SELECT clf FROM train_rnforest((SELECT data, labels FROM trainingset), 4)")
        .unwrap()
        .into_table()
        .unwrap();
    let WireValue::Blob(blob) = &t.rows[0][0] else {
        panic!()
    };
    let mut interp = pylite::Interp::new();
    interp.set_global("blob", Value::bytes(blob.clone()));
    interp
        .eval_module(
            "import pickle\nclf = pickle.loads(blob)\npreds = clf.predict([1, 2, 9, 10])\nn = len(preds)\n",
        )
        .unwrap();
    assert_eq!(interp.get_global("n").unwrap(), Value::Int(4));
    server.shutdown();
}
