//! Differential test: the embedded transport must be observationally
//! identical to the wire (DESIGN §17's "one engine, two transports"
//! claim) — same results, same error codes, same UDF stdout, same
//! extracted inputs — across the full three-way interpreter matrix.

use devudf::{DevUdf, InterpMode, Settings};
use wireproto::message::WireResult;
use wireproto::{Server, ServerConfig};

fn seed(db: &monetlite::Engine) {
    db.execute("CREATE TABLE t (i INTEGER, s STRING)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, NULL), (4, 'd')")
        .unwrap();
    db.execute(
        "CREATE FUNCTION double_it(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
    )
    .unwrap();
    db.execute(concat!(
        "CREATE FUNCTION loud_sum(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\n",
        "print('summing')\n",
        "total = 0\n",
        "for k in range(0, len(i)):\n",
        "    total += i[k]\n",
        "return total\n",
        "}"
    ))
    .unwrap();
    db.execute("CREATE FUNCTION boom(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i / 0 }")
        .unwrap();
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("devudf-embdiff-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Queries whose replies the two transports must agree on, including a
/// write (both transports route it to the live engine) and a read after
/// it (the embedded snapshot reader must see the new row).
const QUERIES: &[&str] = &[
    "SELECT i, s FROM t",
    "SELECT double_it(i) FROM t",
    "SELECT loud_sum(i) FROM t",
    "SELECT sum(i) FROM t WHERE s IS NOT NULL",
    "INSERT INTO t VALUES (5, 'e')",
    "SELECT double_it(i) FROM t WHERE i > 3",
];

#[test]
fn embedded_matches_tcp_across_the_interp_matrix() {
    for mode in [InterpMode::Ast, InterpMode::Bytecode, InterpMode::Inline] {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), move |db| {
            db.set_exec_mode(mode.pylite_mode());
            db.set_inline(mode.inline());
            seed(db);
        });
        let mut settings = Settings::default();
        settings.interp = mode;
        settings.debug_query = "SELECT double_it(i) FROM t".to_string();

        let wire_proj = temp_dir(&format!("wire-{}", mode.as_str()));
        let emb_proj = temp_dir(&format!("emb-{}", mode.as_str()));
        let mut wire = DevUdf::connect_in_proc(&server, settings.clone(), &wire_proj).unwrap();
        let mut emb = DevUdf::connect_embedded(settings, &emb_proj, seed).unwrap();

        for sql in QUERIES {
            let a = wire.server_query(sql).unwrap();
            let b = emb.server_query(sql).unwrap();
            match (&a, &b) {
                // `Affected` messages may differ in phrasing; rows must not.
                (WireResult::Affected { rows: ra, .. }, WireResult::Affected { rows: rb, .. }) => {
                    assert_eq!(ra, rb, "[{}] {sql}", mode.as_str())
                }
                _ => assert_eq!(a, b, "[{}] {sql}", mode.as_str()),
            }
            assert_eq!(
                wire.client().borrow().last_udf_stdout(),
                emb.client().borrow().last_udf_stdout(),
                "[{}] stdout of {sql}",
                mode.as_str()
            );
        }

        // Errors: same code through both transports.
        let a = wire.server_query("SELECT boom(i) FROM t").unwrap_err();
        let b = emb.server_query("SELECT boom(i) FROM t").unwrap_err();
        assert_eq!(code_of(&a), code_of(&b), "[{}]", mode.as_str());
        assert_eq!(code_of(&b), Some("UdfError".to_string()));

        // Catalog metadata: identical function lists and definitions.
        assert_eq!(
            wire.server_functions().unwrap(),
            emb.server_functions().unwrap()
        );
        assert_eq!(
            wire.function_info("loud_sum").unwrap(),
            emb.function_info("loud_sum").unwrap()
        );

        // The paper's extract → local run loop: both transports must
        // deliver the same inputs, hence the same local result.
        wire.import_all().unwrap();
        emb.import_all().unwrap();
        wire.fetch_inputs("double_it").unwrap();
        let emb_stats = emb.fetch_inputs("double_it").unwrap();
        assert_eq!(emb_stats.wire_len, 0, "embedded extract crossed a wire?");
        let ra = wire.run_udf("double_it").unwrap();
        let rb = emb.run_udf("double_it").unwrap();
        assert_eq!(ra.result_repr, rb.result_repr, "[{}]", mode.as_str());

        std::fs::remove_dir_all(&wire_proj).ok();
        std::fs::remove_dir_all(&emb_proj).ok();
        server.shutdown();
    }
}

fn code_of(e: &devudf::DevUdfError) -> Option<String> {
    match e {
        devudf::DevUdfError::Wire(wireproto::WireError::Server { code, .. }) => Some(code.clone()),
        _ => None,
    }
}
