//! Structured tracing: RAII span guards, log events and subscribers.
//!
//! A [`span`] guard carries a process-unique id, its parent's id (spans
//! nest per thread), a static name, wall-clock duration and free-form
//! key/value fields; dropping the guard closes the span and fans an
//! [`Event::Span`] out to every installed [`Subscriber`]. [`warn`] /
//! [`info`] emit point-in-time [`Event::Log`]s the same way.
//!
//! When **no** subscriber is installed, log events fall back to one JSONL
//! line on stderr — so CLI warnings stay visible by default — while span
//! closes are dropped (they are high-volume and only interesting when
//! someone is listening). Tests install a [`RingBufferRecorder`] to
//! capture everything; long-running processes can install a
//! [`JsonlWriter`] over a file.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Mutex;
#[cfg(feature = "telemetry")]
use std::sync::{
    atomic::{AtomicU64, AtomicUsize, Ordering},
    RwLock,
};
use std::time::Duration;
#[cfg(feature = "telemetry")]
use std::time::Instant;

/// Severity of a log event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Informational.
    Info,
    /// Something went wrong but the process carries on.
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A closed span or an emitted log line, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span guard was dropped.
    Span {
        /// Process-unique span id (never zero).
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Static span name, e.g. `core.import`.
        name: &'static str,
        /// Nesting depth at open time (root span = 0).
        depth: usize,
        /// Wall-clock time between open and drop.
        duration: Duration,
        /// Key/value fields attached via [`SpanGuard::field`].
        fields: Vec<(String, String)>,
    },
    /// A point-in-time log line.
    Log {
        /// Severity.
        level: Level,
        /// Human-readable message.
        message: String,
        /// Structured context.
        fields: Vec<(String, String)>,
    },
}

impl Event {
    /// Render the event as one compact JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        match self {
            Event::Span {
                id,
                parent,
                name,
                depth,
                duration,
                fields,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"span\",\"name\":{},\"id\":{id},\"parent\":{},\"depth\":{depth},\"duration_ns\":{}",
                    json_str(name),
                    parent.map_or("null".to_string(), |p| p.to_string()),
                    duration.as_nanos()
                );
                write_fields(&mut s, fields);
                s.push('}');
            }
            Event::Log {
                level,
                message,
                fields,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"log\",\"level\":\"{}\",\"message\":{}",
                    level.as_str(),
                    json_str(message)
                );
                write_fields(&mut s, fields);
                s.push('}');
            }
        }
        s
    }
}

/// JSON-escape a string (delegates to the codec via a `Value`).
fn json_str(s: &str) -> String {
    codecs::json::Value::Str(s.to_string()).to_string_compact()
}

fn write_fields(out: &mut String, fields: &[(String, String)]) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_str(k), json_str(v));
    }
    out.push('}');
}

/// Receives every closed span and log event. Implementations must be
/// cheap and non-blocking-ish: they run inline at the instrumentation
/// point.
pub trait Subscriber: Send + Sync {
    /// Deliver one event.
    fn on_event(&self, event: &Event);
}

#[cfg(feature = "telemetry")]
static SUBSCRIBERS: RwLock<Vec<std::sync::Arc<dyn Subscriber>>> = RwLock::new(Vec::new());

/// Cached `SUBSCRIBERS.len()`, so hot paths ([`span_active`]) can ask
/// "is anyone listening?" with one relaxed load instead of a lock.
#[cfg(feature = "telemetry")]
static SUBSCRIBER_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Install a subscriber; events fan out to all installed subscribers in
/// installation order.
#[cfg(feature = "telemetry")]
pub fn add_subscriber(sub: std::sync::Arc<dyn Subscriber>) {
    let mut subs = SUBSCRIBERS.write().unwrap_or_else(|e| e.into_inner());
    subs.push(sub);
    SUBSCRIBER_COUNT.store(subs.len(), Ordering::Relaxed);
}

/// Install a subscriber (no-op build: dropped).
#[cfg(not(feature = "telemetry"))]
pub fn add_subscriber(_sub: std::sync::Arc<dyn Subscriber>) {}

/// Remove every installed subscriber (used by tests to restore the
/// stderr-fallback default).
pub fn clear_subscribers() {
    #[cfg(feature = "telemetry")]
    {
        let mut subs = SUBSCRIBERS.write().unwrap_or_else(|e| e.into_inner());
        subs.clear();
        SUBSCRIBER_COUNT.store(0, Ordering::Relaxed);
    }
}

/// Dispatch an event: to all subscribers, or — for log events only — as a
/// JSONL line on stderr when none is installed.
#[cfg(feature = "telemetry")]
fn dispatch(event: Event) {
    let subs = SUBSCRIBERS.read().unwrap_or_else(|e| e.into_inner());
    if subs.is_empty() {
        if let Event::Log { .. } = event {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{}", event.to_jsonl());
        }
        return;
    }
    for sub in subs.iter() {
        sub.on_event(&event);
    }
}

/// Emit a log event at `level`.
#[cfg(feature = "telemetry")]
pub fn log(level: Level, message: &str, fields: &[(&str, &str)]) {
    if !crate::enabled() {
        return;
    }
    dispatch(Event::Log {
        level,
        message: message.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    });
}

/// Emit a log event (no-op build).
#[cfg(not(feature = "telemetry"))]
pub fn log(_level: Level, _message: &str, _fields: &[(&str, &str)]) {}

/// Emit a warning (see [`log`]); the [`warn!`](crate::warn) macro is the
/// ergonomic front end.
pub fn warn(message: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, message, fields);
}

/// Emit an info line (see [`log`]).
pub fn info(message: &str, fields: &[(&str, &str)]) {
    log(Level::Info, message, fields);
}

#[cfg(feature = "telemetry")]
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

#[cfg(feature = "telemetry")]
std::thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Current span nesting depth on this thread (0 outside any span).
#[cfg(feature = "telemetry")]
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// Current span nesting depth (no-op build: zero).
#[cfg(not(feature = "telemetry"))]
pub fn current_depth() -> usize {
    0
}

/// An open span; closing (dropping) it reports the duration to all
/// subscribers. Create via [`span`].
pub struct SpanGuard {
    #[cfg(feature = "telemetry")]
    inner: Option<SpanInner>,
}

#[cfg(feature = "telemetry")]
struct SpanInner {
    id: u64,
    parent: Option<u64>,
    /// The trace this span joined at open time (0 = none).
    trace: u64,
    name: &'static str,
    depth: usize,
    start: Instant,
    fields: Vec<(String, String)>,
}

impl SpanGuard {
    /// Attach a key/value field, reported when the span closes.
    #[cfg(feature = "telemetry")]
    pub fn field(&mut self, key: &str, value: impl ToString) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach a key/value field (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn field(&mut self, _key: &str, _value: impl ToString) {}

    /// This span's id (0 in a no-op build or when disabled at runtime).
    #[cfg(feature = "telemetry")]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// This span's id (no-op build: zero).
    #[cfg(not(feature = "telemetry"))]
    pub fn id(&self) -> u64 {
        0
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        if let Some(inner) = self.inner.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&inner.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (guard moved across an early
                    // return); remove wherever it sits.
                    stack.retain(|id| *id != inner.id);
                }
            });
            let duration = inner.start.elapsed();
            if inner.trace != 0 && CAPTURE_COUNT.load(Ordering::Relaxed) > 0 {
                capture_span(&inner, duration);
            }
            dispatch(Event::Span {
                id: inner.id,
                parent: inner.parent,
                name: inner.name,
                depth: inner.depth,
                duration,
                fields: inner.fields,
            });
        }
    }
}

/// Open a span. The guard closes it on drop; nesting is tracked per
/// thread, so a span opened while another is live records it as parent.
#[cfg(feature = "telemetry")]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        let depth = stack.len();
        stack.push(id);
        (parent, depth)
    });
    SpanGuard {
        inner: Some(SpanInner {
            id,
            parent,
            trace: CURRENT_TRACE.with(|t| t.get()),
            name,
            depth,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Open a span (no-op build: an inert guard).
#[cfg(not(feature = "telemetry"))]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard {}
}

/// Open a span only when someone is listening — a per-trace capture or a
/// subscriber is installed. Hot paths (per-operator, per-command, per-UDF
/// call) use this so the profiling-off cost stays at one relaxed load.
pub fn span_active(name: &'static str) -> SpanGuard {
    if trace_active() {
        span(name)
    } else {
        inert_span()
    }
}

#[cfg(feature = "telemetry")]
fn inert_span() -> SpanGuard {
    SpanGuard { inner: None }
}

#[cfg(not(feature = "telemetry"))]
fn inert_span() -> SpanGuard {
    SpanGuard {}
}

/// Whether any span sink is currently live: telemetry enabled and at
/// least one per-trace capture or subscriber installed. One relaxed load
/// per check; [`span_active`] is the ergonomic front end.
#[cfg(feature = "telemetry")]
pub fn trace_active() -> bool {
    crate::enabled()
        && (CAPTURE_COUNT.load(Ordering::Relaxed) > 0
            || SUBSCRIBER_COUNT.load(Ordering::Relaxed) > 0)
}

/// Whether any span sink is live (no-op build: never).
#[cfg(not(feature = "telemetry"))]
pub fn trace_active() -> bool {
    false
}

// ---------------------------------------------------------------------------
// Trace ids and cross-thread / cross-wire context propagation (DESIGN §15).
// ---------------------------------------------------------------------------

#[cfg(feature = "telemetry")]
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

#[cfg(feature = "telemetry")]
std::thread_local! {
    /// The trace id new spans on this thread join (0 = untraced).
    static CURRENT_TRACE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Mint a process-unique trace id (never zero). Returns 0 when telemetry
/// is disabled at runtime or compiled out — callers treat 0 as "do not
/// trace", which keeps the wire bytes of an untraced build identical to
/// an untraced client.
#[cfg(feature = "telemetry")]
pub fn new_trace_id() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Mint a trace id (no-op build: always 0, meaning "do not trace").
#[cfg(not(feature = "telemetry"))]
pub fn new_trace_id() -> u64 {
    0
}

/// A thread's ambient trace context: which trace new spans join and which
/// open span they parent under (`0` = none). `Copy` and `Send`, so it can
/// be captured at a submission site and re-entered inside a pool job or
/// on the far side of a wire hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// Trace id (0 = untraced).
    pub trace: u64,
    /// Innermost open span id at capture time (0 = none).
    pub parent: u64,
}

/// Capture the calling thread's current context.
#[cfg(feature = "telemetry")]
pub fn current_context() -> SpanContext {
    SpanContext {
        trace: CURRENT_TRACE.with(|t| t.get()),
        parent: SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0)),
    }
}

/// Capture the current context (no-op build: the empty context).
#[cfg(not(feature = "telemetry"))]
pub fn current_context() -> SpanContext {
    SpanContext::default()
}

/// Re-enter a captured context on this thread: until the returned guard
/// drops, new spans join `ctx.trace` and parent under `ctx.parent`. Used
/// by pool jobs (the thread-local parent stack does not cross threads)
/// and by the server to stitch its spans under the client's trace.
#[cfg(feature = "telemetry")]
pub fn enter_context(ctx: SpanContext) -> ContextGuard {
    let prev_trace = CURRENT_TRACE.with(|t| t.replace(ctx.trace));
    let pushed = if ctx.parent != 0 {
        SPAN_STACK.with(|s| s.borrow_mut().push(ctx.parent));
        Some(ctx.parent)
    } else {
        None
    };
    ContextGuard { prev_trace, pushed }
}

/// Re-enter a captured context (no-op build: an inert guard).
#[cfg(not(feature = "telemetry"))]
pub fn enter_context(_ctx: SpanContext) -> ContextGuard {
    ContextGuard {}
}

/// Restores the previous trace context on drop. Create via
/// [`enter_context`].
pub struct ContextGuard {
    #[cfg(feature = "telemetry")]
    prev_trace: u64,
    #[cfg(feature = "telemetry")]
    pushed: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            if let Some(id) = self.pushed.take() {
                SPAN_STACK.with(|s| {
                    let mut stack = s.borrow_mut();
                    if stack.last() == Some(&id) {
                        stack.pop();
                    } else {
                        stack.retain(|x| *x != id);
                    }
                });
            }
            CURRENT_TRACE.with(|t| t.set(self.prev_trace));
        }
    }
}

// ---------------------------------------------------------------------------
// Per-trace span capture: bounded buffers keyed by trace id, drained by
// the request that started them (`devudf trace`, the traced server path).
// ---------------------------------------------------------------------------

/// A closed span captured for one trace. Unlike [`Event::Span`] the name
/// is an owned `String`, so spans decoded off the wire fit too.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id (process-unique on the side that minted it).
    pub id: u64,
    /// Parent span id (0 = root of its side).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Key/value fields attached while the span was open.
    pub fields: Vec<(String, String)>,
}

/// Spans kept per capture before the rest are dropped — a runaway query
/// must not buffer unbounded telemetry.
pub const CAPTURE_CAP: usize = 8192;

#[cfg(feature = "telemetry")]
static CAPTURE_COUNT: AtomicUsize = AtomicUsize::new(0);

#[cfg(feature = "telemetry")]
static CAPTURES: Mutex<Vec<(u64, Vec<SpanRecord>)>> = Mutex::new(Vec::new());

/// Start capturing closed spans of `trace` (no-op for trace 0 or when a
/// capture for it already runs). Pair with [`take_capture`].
#[cfg(feature = "telemetry")]
pub fn start_capture(trace: u64) {
    if trace == 0 {
        return;
    }
    let mut caps = CAPTURES.lock().unwrap_or_else(|e| e.into_inner());
    if caps.iter().any(|(t, _)| *t == trace) {
        return;
    }
    caps.push((trace, Vec::new()));
    CAPTURE_COUNT.store(caps.len(), Ordering::Relaxed);
}

/// Start capturing spans of a trace (no-op build).
#[cfg(not(feature = "telemetry"))]
pub fn start_capture(_trace: u64) {}

/// Stop the capture for `trace` and return everything it collected, in
/// close order (children before their parents).
#[cfg(feature = "telemetry")]
pub fn take_capture(trace: u64) -> Vec<SpanRecord> {
    let mut caps = CAPTURES.lock().unwrap_or_else(|e| e.into_inner());
    let taken = caps
        .iter()
        .position(|(t, _)| *t == trace)
        .map(|i| caps.remove(i).1);
    CAPTURE_COUNT.store(caps.len(), Ordering::Relaxed);
    taken.unwrap_or_default()
}

/// Stop a capture (no-op build: always empty).
#[cfg(not(feature = "telemetry"))]
pub fn take_capture(_trace: u64) -> Vec<SpanRecord> {
    Vec::new()
}

#[cfg(feature = "telemetry")]
fn capture_span(inner: &SpanInner, duration: Duration) {
    let mut caps = CAPTURES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, records)) = caps.iter_mut().find(|(t, _)| *t == inner.trace) {
        if records.len() < CAPTURE_CAP {
            records.push(SpanRecord {
                id: inner.id,
                parent: inner.parent.unwrap_or(0),
                name: inner.name.to_string(),
                duration_ns: duration.as_nanos() as u64,
                fields: inner.fields.clone(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Tree assembly and rendering (pure data — works in no-op builds too, so
// the CLI can render spans a telemetry-enabled server sent over the wire).
// ---------------------------------------------------------------------------

/// One node of an assembled span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, in the order they closed.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of spans in this subtree (including self).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(SpanNode::len).sum::<usize>()
    }

    /// Always false — a node contains at least itself.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Assemble flat records into parent→child trees. A record whose parent
/// is absent from the set becomes a root; records forming a parent cycle
/// (possible only with hostile wire data) are unreachable from any root
/// and are dropped rather than looping.
pub fn assemble(records: &[SpanRecord]) -> Vec<SpanNode> {
    let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    fn build(records: &[SpanRecord], taken: &mut [bool], id: u64) -> Vec<SpanNode> {
        let mut nodes = Vec::new();
        for (i, r) in records.iter().enumerate() {
            if !taken[i] && r.parent == id {
                taken[i] = true;
                nodes.push(SpanNode {
                    record: r.clone(),
                    children: build(records, taken, r.id),
                });
            }
        }
        nodes
    }
    let mut taken = vec![false; records.len()];
    let mut roots = Vec::new();
    for (i, r) in records.iter().enumerate() {
        if !taken[i] && (r.parent == 0 || !ids.contains(&r.parent)) {
            taken[i] = true;
            roots.push(SpanNode {
                record: r.clone(),
                children: build(records, &mut taken, r.id),
            });
        }
    }
    roots
}

/// Humanize a nanosecond duration (ms / µs / ns, two decimals). Shared by
/// the span-tree renderer and the profiler's line annotations.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Render assembled trees as an indented text block (box-drawing
/// connectors, humanized durations, `k=v` fields) — the body of
/// `devudf trace` output.
pub fn render_tree(roots: &[SpanNode]) -> String {
    fn render(out: &mut String, node: &SpanNode, prefix: &str, connector: &str, child_pad: &str) {
        let _ = write!(
            out,
            "{prefix}{connector}{:<32} {:>10}",
            node.record.name,
            fmt_ns(node.record.duration_ns)
        );
        for (k, v) in &node.record.fields {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        let deeper = format!("{prefix}{child_pad}");
        for (i, child) in node.children.iter().enumerate() {
            let last = i + 1 == node.children.len();
            let (c, pad) = if last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            render(out, child, &deeper, c, pad);
        }
    }
    let mut out = String::new();
    for root in roots {
        render(&mut out, root, "", "", "");
    }
    out
}

/// A bounded in-memory recorder for tests: keeps the most recent
/// `capacity` events.
pub struct RingBufferRecorder {
    events: Mutex<std::collections::VecDeque<Event>>,
    capacity: usize,
}

impl RingBufferRecorder {
    /// A recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingBufferRecorder {
        RingBufferRecorder {
            events: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// All currently buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Drop all buffered events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Subscriber for RingBufferRecorder {
    fn on_event(&self, event: &Event) {
        let mut buf = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Writes each event as one JSON line to an arbitrary sink (a file, or
/// [`JsonlWriter::stderr`]).
pub struct JsonlWriter {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl JsonlWriter {
    /// Wrap any writer.
    pub fn new(out: Box<dyn std::io::Write + Send>) -> JsonlWriter {
        JsonlWriter {
            out: Mutex::new(out),
        }
    }

    /// A writer that renders to stderr — the explicit version of the
    /// no-subscriber fallback, for processes that want spans there too.
    pub fn stderr() -> JsonlWriter {
        JsonlWriter::new(Box::new(std::io::stderr()))
    }
}

impl Subscriber for JsonlWriter {
    fn on_event(&self, event: &Event) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{}", event.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The subscriber list is process-global, so tests that install one
    /// serialize on the metrics test lock and clear it on exit.
    fn with_recorder(f: impl FnOnce(&RingBufferRecorder)) {
        let _serial = crate::metrics::test_lock();
        clear_subscribers();
        let rec = Arc::new(RingBufferRecorder::new(64));
        add_subscriber(rec.clone());
        f(&rec);
        clear_subscribers();
    }

    #[test]
    fn spans_nest_and_report_parents() {
        with_recorder(|rec| {
            {
                let mut outer = span("outer");
                outer.field("udf", "mean_deviation");
                let inner = span("inner");
                if cfg!(feature = "telemetry") {
                    assert_eq!(current_depth(), 2);
                    assert_ne!(inner.id(), outer.id());
                }
                drop(inner);
                drop(outer);
            }
            let events = rec.events();
            if cfg!(feature = "telemetry") {
                // Inner closes first.
                match &events[0] {
                    Event::Span {
                        name,
                        parent,
                        depth,
                        ..
                    } => {
                        assert_eq!(*name, "inner");
                        assert!(parent.is_some());
                        assert_eq!(*depth, 1);
                    }
                    other => panic!("{other:?}"),
                }
                match &events[1] {
                    Event::Span {
                        name,
                        parent,
                        depth,
                        fields,
                        ..
                    } => {
                        assert_eq!(*name, "outer");
                        assert_eq!(*parent, None);
                        assert_eq!(*depth, 0);
                        assert_eq!(fields[0], ("udf".to_string(), "mean_deviation".to_string()));
                    }
                    other => panic!("{other:?}"),
                }
            } else {
                assert!(events.is_empty());
            }
        });
    }

    #[test]
    fn warn_reaches_recorder_with_fields() {
        with_recorder(|rec| {
            crate::warn!("disk full", "path" => "/tmp/x", "free" => 0);
            let events = rec.events();
            if cfg!(feature = "telemetry") {
                match &events[0] {
                    Event::Log {
                        level,
                        message,
                        fields,
                    } => {
                        assert_eq!(*level, Level::Warn);
                        assert_eq!(message, "disk full");
                        assert_eq!(fields.len(), 2);
                        assert_eq!(fields[1], ("free".to_string(), "0".to_string()));
                    }
                    other => panic!("{other:?}"),
                }
            } else {
                assert!(events.is_empty());
            }
        });
    }

    #[test]
    fn jsonl_rendering_is_parseable() {
        let event = Event::Log {
            level: Level::Warn,
            message: "odd \"quote\"".to_string(),
            fields: vec![("k".to_string(), "v1".to_string())],
        };
        let line = event.to_jsonl();
        let parsed = codecs::json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("message").and_then(|v| v.as_str()),
            Some("odd \"quote\"")
        );
        assert_eq!(
            parsed
                .get("fields")
                .and_then(|f| f.get("k"))
                .and_then(|v| v.as_str()),
            Some("v1")
        );

        let event = Event::Span {
            id: 7,
            parent: Some(3),
            name: "core.import",
            depth: 1,
            duration: Duration::from_nanos(1500),
            fields: Vec::new(),
        };
        let parsed = codecs::json::parse(&event.to_jsonl()).unwrap();
        assert_eq!(
            parsed.get("duration_ns").and_then(|v| v.as_i64()),
            Some(1500)
        );
        assert_eq!(parsed.get("parent").and_then(|v| v.as_i64()), Some(3));
    }

    #[test]
    fn jsonl_writer_appends_lines() {
        let _serial = crate::metrics::test_lock();
        clear_subscribers();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        add_subscriber(Arc::new(JsonlWriter::new(Box::new(Shared(buf.clone())))));
        info("one", &[]);
        warn("two", &[("n", "2")]);
        clear_subscribers();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        if cfg!(feature = "telemetry") {
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 2);
            for line in lines {
                codecs::json::parse(line).unwrap();
            }
        } else {
            assert!(text.is_empty());
        }
    }

    #[test]
    fn ring_buffer_caps_at_capacity() {
        let rec = RingBufferRecorder::new(2);
        for i in 0..5 {
            rec.on_event(&Event::Log {
                level: Level::Info,
                message: format!("m{i}"),
                fields: Vec::new(),
            });
        }
        let events = rec.events();
        assert_eq!(events.len(), 2);
        match &events[0] {
            Event::Log { message, .. } => assert_eq!(message, "m3"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disabled_runtime_emits_nothing() {
        with_recorder(|rec| {
            crate::set_enabled(false);
            let s = span("quiet");
            drop(s);
            warn("quiet", &[]);
            crate::set_enabled(true);
            assert!(rec.events().is_empty());
            assert_eq!(current_depth(), 0);
        });
    }

    #[test]
    fn trace_ids_are_unique_and_zero_when_disabled() {
        let _serial = crate::metrics::test_lock();
        crate::set_enabled(true);
        let a = new_trace_id();
        let b = new_trace_id();
        if cfg!(feature = "telemetry") {
            assert_ne!(a, 0);
            assert_ne!(a, b);
            crate::set_enabled(false);
            assert_eq!(new_trace_id(), 0);
            crate::set_enabled(true);
        } else {
            assert_eq!(a, 0);
            assert_eq!(b, 0);
        }
    }

    #[test]
    fn context_reenters_parent_across_threads() {
        with_recorder(|rec| {
            let outer = span("ctx.outer");
            let outer_id = outer.id();
            let ctx = current_context();
            if cfg!(feature = "telemetry") {
                assert_eq!(ctx.parent, outer_id);
            }
            std::thread::spawn(move || {
                let _guard = enter_context(ctx);
                let _child = span("ctx.child");
            })
            .join()
            .unwrap();
            drop(outer);
            if cfg!(feature = "telemetry") {
                let child = rec.events().into_iter().find_map(|e| match e {
                    Event::Span {
                        name: "ctx.child",
                        parent,
                        ..
                    } => Some(parent),
                    _ => None,
                });
                assert_eq!(child, Some(Some(outer_id)));
            } else {
                assert!(rec.events().is_empty());
            }
        });
    }

    #[test]
    fn capture_collects_only_its_trace_and_drains() {
        let _serial = crate::metrics::test_lock();
        crate::set_enabled(true);
        clear_subscribers();
        let trace = new_trace_id();
        start_capture(trace);
        {
            let _guard = enter_context(SpanContext { trace, parent: 0 });
            let mut s = span("cap.inner");
            s.field("rows", 6);
        }
        {
            // A span outside the context does not join the capture.
            let _other = span("cap.unrelated");
        }
        let records = take_capture(trace);
        if cfg!(feature = "telemetry") {
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].name, "cap.inner");
            assert_eq!(records[0].parent, 0);
            assert_eq!(records[0].fields, vec![("rows".into(), "6".into())]);
        } else {
            assert!(records.is_empty());
        }
        // Drained: a second take is empty.
        assert!(take_capture(trace).is_empty());
    }

    #[test]
    fn span_active_is_inert_without_listeners() {
        let _serial = crate::metrics::test_lock();
        crate::set_enabled(true);
        clear_subscribers();
        assert!(!trace_active());
        let s = span_active("quiet.op");
        assert_eq!(s.id(), 0);
        drop(s);
        if cfg!(feature = "telemetry") {
            let rec = Arc::new(RingBufferRecorder::new(8));
            add_subscriber(rec.clone());
            assert!(trace_active());
            drop(span_active("loud.op"));
            clear_subscribers();
            assert!(rec
                .events()
                .iter()
                .any(|e| matches!(e, Event::Span { name, .. } if *name == "loud.op")));
        }
    }

    fn rec(id: u64, parent: u64, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            duration_ns: 1_500_000,
            fields: Vec::new(),
        }
    }

    #[test]
    fn assemble_builds_trees_and_orphans_become_roots() {
        // Close order: children first, like a real capture.
        let records = vec![
            rec(3, 2, "grandchild"),
            rec(2, 1, "child"),
            rec(1, 0, "root"),
            rec(9, 42, "orphan"), // parent 42 never captured
        ];
        let roots = assemble(&records);
        assert_eq!(roots.len(), 2);
        let root = roots.iter().find(|n| n.record.name == "root").unwrap();
        assert_eq!(root.len(), 3);
        assert_eq!(root.children[0].record.name, "child");
        assert_eq!(root.children[0].children[0].record.name, "grandchild");
        assert!(roots.iter().any(|n| n.record.name == "orphan"));
    }

    #[test]
    fn assemble_drops_hostile_parent_cycles() {
        let records = vec![rec(1, 2, "a"), rec(2, 1, "b"), rec(3, 0, "ok")];
        let roots = assemble(&records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].record.name, "ok");
    }

    #[test]
    fn render_tree_shows_names_durations_and_fields() {
        let mut child = rec(2, 1, "wire.send");
        child.duration_ns = 950;
        child.fields.push(("bytes".into(), "123".into()));
        let records = vec![child, rec(1, 0, "client.query")];
        let text = render_tree(&assemble(&records));
        assert!(text.contains("client.query"), "{text}");
        assert!(text.contains("1.50 ms"), "{text}");
        assert!(text.contains("└─ wire.send"), "{text}");
        assert!(text.contains("950 ns"), "{text}");
        assert!(text.contains("bytes=123"), "{text}");
    }
}
