//! Structured tracing: RAII span guards, log events and subscribers.
//!
//! A [`span`] guard carries a process-unique id, its parent's id (spans
//! nest per thread), a static name, wall-clock duration and free-form
//! key/value fields; dropping the guard closes the span and fans an
//! [`Event::Span`] out to every installed [`Subscriber`]. [`warn`] /
//! [`info`] emit point-in-time [`Event::Log`]s the same way.
//!
//! When **no** subscriber is installed, log events fall back to one JSONL
//! line on stderr — so CLI warnings stay visible by default — while span
//! closes are dropped (they are high-volume and only interesting when
//! someone is listening). Tests install a [`RingBufferRecorder`] to
//! capture everything; long-running processes can install a
//! [`JsonlWriter`] over a file.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Mutex;
#[cfg(feature = "telemetry")]
use std::sync::{
    atomic::{AtomicU64, Ordering},
    RwLock,
};
use std::time::Duration;
#[cfg(feature = "telemetry")]
use std::time::Instant;

/// Severity of a log event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Informational.
    Info,
    /// Something went wrong but the process carries on.
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// A closed span or an emitted log line, as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span guard was dropped.
    Span {
        /// Process-unique span id (never zero).
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Static span name, e.g. `core.import`.
        name: &'static str,
        /// Nesting depth at open time (root span = 0).
        depth: usize,
        /// Wall-clock time between open and drop.
        duration: Duration,
        /// Key/value fields attached via [`SpanGuard::field`].
        fields: Vec<(String, String)>,
    },
    /// A point-in-time log line.
    Log {
        /// Severity.
        level: Level,
        /// Human-readable message.
        message: String,
        /// Structured context.
        fields: Vec<(String, String)>,
    },
}

impl Event {
    /// Render the event as one compact JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        match self {
            Event::Span {
                id,
                parent,
                name,
                depth,
                duration,
                fields,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"span\",\"name\":{},\"id\":{id},\"parent\":{},\"depth\":{depth},\"duration_ns\":{}",
                    json_str(name),
                    parent.map_or("null".to_string(), |p| p.to_string()),
                    duration.as_nanos()
                );
                write_fields(&mut s, fields);
                s.push('}');
            }
            Event::Log {
                level,
                message,
                fields,
            } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"log\",\"level\":\"{}\",\"message\":{}",
                    level.as_str(),
                    json_str(message)
                );
                write_fields(&mut s, fields);
                s.push('}');
            }
        }
        s
    }
}

/// JSON-escape a string (delegates to the codec via a `Value`).
fn json_str(s: &str) -> String {
    codecs::json::Value::Str(s.to_string()).to_string_compact()
}

fn write_fields(out: &mut String, fields: &[(String, String)]) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_str(k), json_str(v));
    }
    out.push('}');
}

/// Receives every closed span and log event. Implementations must be
/// cheap and non-blocking-ish: they run inline at the instrumentation
/// point.
pub trait Subscriber: Send + Sync {
    /// Deliver one event.
    fn on_event(&self, event: &Event);
}

#[cfg(feature = "telemetry")]
static SUBSCRIBERS: RwLock<Vec<std::sync::Arc<dyn Subscriber>>> = RwLock::new(Vec::new());

/// Install a subscriber; events fan out to all installed subscribers in
/// installation order.
#[cfg(feature = "telemetry")]
pub fn add_subscriber(sub: std::sync::Arc<dyn Subscriber>) {
    SUBSCRIBERS
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .push(sub);
}

/// Install a subscriber (no-op build: dropped).
#[cfg(not(feature = "telemetry"))]
pub fn add_subscriber(_sub: std::sync::Arc<dyn Subscriber>) {}

/// Remove every installed subscriber (used by tests to restore the
/// stderr-fallback default).
pub fn clear_subscribers() {
    #[cfg(feature = "telemetry")]
    SUBSCRIBERS
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// Dispatch an event: to all subscribers, or — for log events only — as a
/// JSONL line on stderr when none is installed.
#[cfg(feature = "telemetry")]
fn dispatch(event: Event) {
    let subs = SUBSCRIBERS.read().unwrap_or_else(|e| e.into_inner());
    if subs.is_empty() {
        if let Event::Log { .. } = event {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{}", event.to_jsonl());
        }
        return;
    }
    for sub in subs.iter() {
        sub.on_event(&event);
    }
}

/// Emit a log event at `level`.
#[cfg(feature = "telemetry")]
pub fn log(level: Level, message: &str, fields: &[(&str, &str)]) {
    if !crate::enabled() {
        return;
    }
    dispatch(Event::Log {
        level,
        message: message.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    });
}

/// Emit a log event (no-op build).
#[cfg(not(feature = "telemetry"))]
pub fn log(_level: Level, _message: &str, _fields: &[(&str, &str)]) {}

/// Emit a warning (see [`log`]); the [`warn!`](crate::warn) macro is the
/// ergonomic front end.
pub fn warn(message: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, message, fields);
}

/// Emit an info line (see [`log`]).
pub fn info(message: &str, fields: &[(&str, &str)]) {
    log(Level::Info, message, fields);
}

#[cfg(feature = "telemetry")]
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

#[cfg(feature = "telemetry")]
std::thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Current span nesting depth on this thread (0 outside any span).
#[cfg(feature = "telemetry")]
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// Current span nesting depth (no-op build: zero).
#[cfg(not(feature = "telemetry"))]
pub fn current_depth() -> usize {
    0
}

/// An open span; closing (dropping) it reports the duration to all
/// subscribers. Create via [`span`].
pub struct SpanGuard {
    #[cfg(feature = "telemetry")]
    inner: Option<SpanInner>,
}

#[cfg(feature = "telemetry")]
struct SpanInner {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    depth: usize,
    start: Instant,
    fields: Vec<(String, String)>,
}

impl SpanGuard {
    /// Attach a key/value field, reported when the span closes.
    #[cfg(feature = "telemetry")]
    pub fn field(&mut self, key: &str, value: impl ToString) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach a key/value field (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn field(&mut self, _key: &str, _value: impl ToString) {}

    /// This span's id (0 in a no-op build or when disabled at runtime).
    #[cfg(feature = "telemetry")]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }

    /// This span's id (no-op build: zero).
    #[cfg(not(feature = "telemetry"))]
    pub fn id(&self) -> u64 {
        0
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        if let Some(inner) = self.inner.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&inner.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (guard moved across an early
                    // return); remove wherever it sits.
                    stack.retain(|id| *id != inner.id);
                }
            });
            dispatch(Event::Span {
                id: inner.id,
                parent: inner.parent,
                name: inner.name,
                depth: inner.depth,
                duration: inner.start.elapsed(),
                fields: inner.fields,
            });
        }
    }
}

/// Open a span. The guard closes it on drop; nesting is tracked per
/// thread, so a span opened while another is live records it as parent.
#[cfg(feature = "telemetry")]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        let depth = stack.len();
        stack.push(id);
        (parent, depth)
    });
    SpanGuard {
        inner: Some(SpanInner {
            id,
            parent,
            name,
            depth,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Open a span (no-op build: an inert guard).
#[cfg(not(feature = "telemetry"))]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard {}
}

/// A bounded in-memory recorder for tests: keeps the most recent
/// `capacity` events.
pub struct RingBufferRecorder {
    events: Mutex<std::collections::VecDeque<Event>>,
    capacity: usize,
}

impl RingBufferRecorder {
    /// A recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingBufferRecorder {
        RingBufferRecorder {
            events: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// All currently buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Drop all buffered events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Subscriber for RingBufferRecorder {
    fn on_event(&self, event: &Event) {
        let mut buf = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Writes each event as one JSON line to an arbitrary sink (a file, or
/// [`JsonlWriter::stderr`]).
pub struct JsonlWriter {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl JsonlWriter {
    /// Wrap any writer.
    pub fn new(out: Box<dyn std::io::Write + Send>) -> JsonlWriter {
        JsonlWriter {
            out: Mutex::new(out),
        }
    }

    /// A writer that renders to stderr — the explicit version of the
    /// no-subscriber fallback, for processes that want spans there too.
    pub fn stderr() -> JsonlWriter {
        JsonlWriter::new(Box::new(std::io::stderr()))
    }
}

impl Subscriber for JsonlWriter {
    fn on_event(&self, event: &Event) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{}", event.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The subscriber list is process-global, so tests that install one
    /// serialize on the metrics test lock and clear it on exit.
    fn with_recorder(f: impl FnOnce(&RingBufferRecorder)) {
        let _serial = crate::metrics::test_lock();
        clear_subscribers();
        let rec = Arc::new(RingBufferRecorder::new(64));
        add_subscriber(rec.clone());
        f(&rec);
        clear_subscribers();
    }

    #[test]
    fn spans_nest_and_report_parents() {
        with_recorder(|rec| {
            {
                let mut outer = span("outer");
                outer.field("udf", "mean_deviation");
                let inner = span("inner");
                if cfg!(feature = "telemetry") {
                    assert_eq!(current_depth(), 2);
                    assert_ne!(inner.id(), outer.id());
                }
                drop(inner);
                drop(outer);
            }
            let events = rec.events();
            if cfg!(feature = "telemetry") {
                // Inner closes first.
                match &events[0] {
                    Event::Span {
                        name,
                        parent,
                        depth,
                        ..
                    } => {
                        assert_eq!(*name, "inner");
                        assert!(parent.is_some());
                        assert_eq!(*depth, 1);
                    }
                    other => panic!("{other:?}"),
                }
                match &events[1] {
                    Event::Span {
                        name,
                        parent,
                        depth,
                        fields,
                        ..
                    } => {
                        assert_eq!(*name, "outer");
                        assert_eq!(*parent, None);
                        assert_eq!(*depth, 0);
                        assert_eq!(fields[0], ("udf".to_string(), "mean_deviation".to_string()));
                    }
                    other => panic!("{other:?}"),
                }
            } else {
                assert!(events.is_empty());
            }
        });
    }

    #[test]
    fn warn_reaches_recorder_with_fields() {
        with_recorder(|rec| {
            crate::warn!("disk full", "path" => "/tmp/x", "free" => 0);
            let events = rec.events();
            if cfg!(feature = "telemetry") {
                match &events[0] {
                    Event::Log {
                        level,
                        message,
                        fields,
                    } => {
                        assert_eq!(*level, Level::Warn);
                        assert_eq!(message, "disk full");
                        assert_eq!(fields.len(), 2);
                        assert_eq!(fields[1], ("free".to_string(), "0".to_string()));
                    }
                    other => panic!("{other:?}"),
                }
            } else {
                assert!(events.is_empty());
            }
        });
    }

    #[test]
    fn jsonl_rendering_is_parseable() {
        let event = Event::Log {
            level: Level::Warn,
            message: "odd \"quote\"".to_string(),
            fields: vec![("k".to_string(), "v1".to_string())],
        };
        let line = event.to_jsonl();
        let parsed = codecs::json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("message").and_then(|v| v.as_str()),
            Some("odd \"quote\"")
        );
        assert_eq!(
            parsed
                .get("fields")
                .and_then(|f| f.get("k"))
                .and_then(|v| v.as_str()),
            Some("v1")
        );

        let event = Event::Span {
            id: 7,
            parent: Some(3),
            name: "core.import",
            depth: 1,
            duration: Duration::from_nanos(1500),
            fields: Vec::new(),
        };
        let parsed = codecs::json::parse(&event.to_jsonl()).unwrap();
        assert_eq!(
            parsed.get("duration_ns").and_then(|v| v.as_i64()),
            Some(1500)
        );
        assert_eq!(parsed.get("parent").and_then(|v| v.as_i64()), Some(3));
    }

    #[test]
    fn jsonl_writer_appends_lines() {
        let _serial = crate::metrics::test_lock();
        clear_subscribers();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        add_subscriber(Arc::new(JsonlWriter::new(Box::new(Shared(buf.clone())))));
        info("one", &[]);
        warn("two", &[("n", "2")]);
        clear_subscribers();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        if cfg!(feature = "telemetry") {
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 2);
            for line in lines {
                codecs::json::parse(line).unwrap();
            }
        } else {
            assert!(text.is_empty());
        }
    }

    #[test]
    fn ring_buffer_caps_at_capacity() {
        let rec = RingBufferRecorder::new(2);
        for i in 0..5 {
            rec.on_event(&Event::Log {
                level: Level::Info,
                message: format!("m{i}"),
                fields: Vec::new(),
            });
        }
        let events = rec.events();
        assert_eq!(events.len(), 2);
        match &events[0] {
            Event::Log { message, .. } => assert_eq!(message, "m3"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disabled_runtime_emits_nothing() {
        with_recorder(|rec| {
            crate::set_enabled(false);
            let s = span("quiet");
            drop(s);
            warn("quiet", &[]);
            crate::set_enabled(true);
            assert!(rec.events().is_empty());
            assert_eq!(current_depth(), 0);
        });
    }
}
