//! Line-level UDF profiling: a process-global accumulator of
//! per-(function, line) hit counts and nanoseconds.
//!
//! The pylite interpreters are the producers: when [`active`] they keep a
//! run-local table keyed by the line table they already maintain for the
//! debugger, and flush it here in one [`record`] batch when the run ends
//! — so the steady-state cost per executed statement is a map bump, and
//! the global mutex is touched once per UDF run. The consumers are the
//! `sys.profile` virtual table and the `devudf profile` CLI, which joins
//! the rows back onto the source text to print annotated hot lines.
//!
//! Like the rest of the crate, everything here compiles to a true no-op
//! without the `telemetry` feature: [`active`] is a constant `false`, so
//! the interpreter hook folds away.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::Mutex;

/// Accumulated cost of one source line of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Function name as the interpreter knows it (`<module>` for
    /// top-level statements).
    pub func: String,
    /// 1-based source line.
    pub line: u32,
    /// Times a statement starting on this line began executing.
    pub hits: u64,
    /// Wall-clock nanoseconds attributed to this line.
    pub ns: u64,
}

/// One run-local profile entry: `(function, line) → (hits, nanoseconds)`,
/// the batch format the interpreters flush through [`record`].
pub type ProfileEntry = ((String, u32), (u64, u64));

#[cfg(feature = "telemetry")]
static ACTIVE: AtomicBool = AtomicBool::new(false);

#[cfg(feature = "telemetry")]
static DATA: Mutex<Vec<ProfileEntry>> = Mutex::new(Vec::new());

/// Distinct (function, line) keys kept before further keys are dropped —
/// a hostile UDF must not grow the profile without bound.
pub const PROFILE_CAP: usize = 65_536;

/// Switch the line profiler on or off. Data already collected is kept
/// until [`reset`].
#[cfg(feature = "telemetry")]
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Relaxed);
}

/// Switch the profiler (no-op build: it can never activate).
#[cfg(not(feature = "telemetry"))]
pub fn set_active(_on: bool) {}

/// Whether interpreters should profile: the profiler switch is on and
/// telemetry is enabled. One relaxed load — checked once per UDF run.
#[cfg(feature = "telemetry")]
pub fn active() -> bool {
    crate::enabled() && ACTIVE.load(Ordering::Relaxed)
}

/// Whether interpreters should profile (no-op build: never).
#[cfg(not(feature = "telemetry"))]
pub fn active() -> bool {
    false
}

/// Merge one run's (function, line) → (hits, nanoseconds) table into the
/// global profile. Entries beyond [`PROFILE_CAP`] distinct keys are
/// dropped.
#[cfg(feature = "telemetry")]
pub fn record(entries: &[ProfileEntry]) {
    if entries.is_empty() {
        return;
    }
    let mut data = DATA.lock().unwrap_or_else(|e| e.into_inner());
    for (key, (hits, ns)) in entries {
        if let Some((_, cell)) = data.iter_mut().find(|(k, _)| k == key) {
            cell.0 += hits;
            cell.1 += ns;
        } else if data.len() < PROFILE_CAP {
            data.push((key.clone(), (*hits, *ns)));
        }
    }
}

/// Merge a profile batch (no-op build: dropped).
#[cfg(not(feature = "telemetry"))]
pub fn record(_entries: &[ProfileEntry]) {}

/// The accumulated profile, sorted by (function, line).
#[cfg(feature = "telemetry")]
pub fn rows() -> Vec<ProfileRow> {
    let data = DATA.lock().unwrap_or_else(|e| e.into_inner());
    let mut rows: Vec<ProfileRow> = data
        .iter()
        .map(|((func, line), (hits, ns))| ProfileRow {
            func: func.clone(),
            line: *line,
            hits: *hits,
            ns: *ns,
        })
        .collect();
    rows.sort_by(|a, b| (&a.func, a.line).cmp(&(&b.func, b.line)));
    rows
}

/// The accumulated profile (no-op build: always empty).
#[cfg(not(feature = "telemetry"))]
pub fn rows() -> Vec<ProfileRow> {
    Vec::new()
}

/// Discard all accumulated profile data.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    DATA.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merges_and_rows_sort() {
        // The profile table is process-global: serialize with every other
        // telemetry-recording test.
        let _serial = crate::metrics::test_lock();
        crate::set_enabled(true);
        reset();
        record(&[
            (("f".to_string(), 3), (2, 200)),
            (("f".to_string(), 1), (1, 100)),
        ]);
        record(&[(("f".to_string(), 3), (1, 50))]);
        let rows = rows();
        if cfg!(feature = "telemetry") {
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0].line, 1);
            assert_eq!(rows[1].line, 3);
            assert_eq!(rows[1].hits, 3);
            assert_eq!(rows[1].ns, 250);
        } else {
            assert!(rows.is_empty());
        }
        reset();
        assert!(super::rows().is_empty());
    }

    #[test]
    fn active_requires_both_switches() {
        let _serial = crate::metrics::test_lock();
        crate::set_enabled(true);
        assert!(!active(), "profiler must be off by default");
        set_active(true);
        assert_eq!(active(), cfg!(feature = "telemetry"));
        crate::set_enabled(false);
        assert!(!active());
        crate::set_enabled(true);
        set_active(false);
        assert!(!active());
    }
}
