//! The process-wide metrics registry: counters, gauges and histograms.
//!
//! All handles are cheap clones of `Arc`-shared atomics; registration
//! (the only locking path) happens once per name, after which updates are
//! lock-free relaxed atomics. [`MetricsRegistry::reset`] zeroes values
//! *in place* rather than dropping entries, so handles cached in
//! `static`s by the [`counter!`](crate::counter) family of macros never
//! dangle.
//!
//! Histograms use 64 fixed log2 buckets (bucket *i* holds values whose
//! highest set bit is *i*), which makes recording one `fetch_add` and
//! keeps quantile estimates within a factor of two — plenty for latency
//! telemetry that feeds dashboards, not billing.

#[cfg(feature = "telemetry")]
use std::collections::HashMap;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::{Arc, RwLock};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use codecs::json::Value;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    #[cfg(feature = "telemetry")]
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[cfg(feature = "telemetry")]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by `n` (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn add(&self, _n: u64) {}

    /// Current value.
    #[cfg(feature = "telemetry")]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Current value (no-op build: always zero).
    #[cfg(not(feature = "telemetry"))]
    pub fn get(&self) -> u64 {
        0
    }
}

/// A gauge: a signed value that can move both ways (e.g. open sessions,
/// current UDF nesting depth).
#[derive(Clone)]
pub struct Gauge {
    #[cfg(feature = "telemetry")]
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[cfg(feature = "telemetry")]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Set the gauge to `v` (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn set(&self, _v: i64) {}

    /// Add `delta` (may be negative).
    #[cfg(feature = "telemetry")]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Add `delta` (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn add(&self, _delta: i64) {}

    /// Current value.
    #[cfg(feature = "telemetry")]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Current value (no-op build: always zero).
    #[cfg(not(feature = "telemetry"))]
    pub fn get(&self) -> i64 {
        0
    }
}

/// Number of log2 buckets; covers the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

#[cfg(feature = "telemetry")]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

#[cfg(feature = "telemetry")]
impl HistogramCells {
    fn new() -> HistogramCells {
        HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-bucket latency histogram (values in nanoseconds by convention).
#[derive(Clone)]
pub struct Histogram {
    #[cfg(feature = "telemetry")]
    cells: Arc<HistogramCells>,
}

/// Bucket index for a value: position of its highest set bit (0 for 0).
#[cfg(feature = "telemetry")]
fn bucket_of(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

impl Histogram {
    /// Record one observation.
    #[cfg(feature = "telemetry")]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.cells.count.fetch_add(1, Ordering::Relaxed);
            self.cells.sum.fetch_add(v, Ordering::Relaxed);
            self.cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one observation (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn record(&self, _v: u64) {}

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    #[cfg(feature = "telemetry")]
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Number of recorded observations (no-op build: zero).
    #[cfg(not(feature = "telemetry"))]
    pub fn count(&self) -> u64 {
        0
    }

    /// Sum of all recorded observations.
    #[cfg(feature = "telemetry")]
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations (no-op build: zero).
    #[cfg(not(feature = "telemetry"))]
    pub fn sum(&self) -> u64 {
        0
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`): the upper bound of the log2
    /// bucket at which the cumulative count reaches `q * total`. Accurate
    /// to within a factor of two by construction.
    #[cfg(feature = "telemetry")]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.cells.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    /// Estimated quantile (no-op build: zero).
    #[cfg(not(feature = "telemetry"))]
    pub fn quantile(&self, _q: f64) -> u64 {
        0
    }

    #[cfg(feature = "telemetry")]
    fn reset(&self) {
        self.cells.count.store(0, Ordering::Relaxed);
        self.cells.sum.store(0, Ordering::Relaxed);
        for b in &self.cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One metric as registered.
#[cfg(feature = "telemetry")]
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A flattened, point-in-time view of one metric — the row shape of the
/// `sys.metrics` virtual table.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Dotted metric name, e.g. `wire.client.retries`.
    pub name: String,
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub kind: &'static str,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: i64,
    /// Sum of observations (histograms only; zero otherwise).
    pub sum: u64,
    /// Mean observation (histograms only; zero otherwise).
    pub mean: f64,
    /// Estimated median (histograms only; zero otherwise).
    pub p50: u64,
    /// Estimated p90 (histograms only; zero otherwise).
    pub p90: u64,
    /// Estimated p99 (histograms only; zero otherwise).
    pub p99: u64,
}

/// The process-wide registry. Usually accessed through [`registry`] and
/// the `counter!`/`gauge!`/`histogram!` macros; constructible separately
/// for tests that want isolation.
#[derive(Default)]
pub struct MetricsRegistry {
    #[cfg(feature = "telemetry")]
    metrics: RwLock<HashMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    #[cfg(feature = "telemetry")]
    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.metrics.read().expect("metrics lock").get(name) {
            return m.clone();
        }
        let mut map = self.metrics.write().expect("metrics lock");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different kind.
    #[cfg(feature = "telemetry")]
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || {
            Metric::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Metric::Counter(c) => c,
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// Get or create the counter `name` (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter {}
    }

    /// Get or create the gauge `name`. Panics if `name` is already
    /// registered as a different kind.
    #[cfg(feature = "telemetry")]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || {
            Metric::Gauge(Gauge {
                cell: Arc::new(AtomicI64::new(0)),
            })
        }) {
            Metric::Gauge(g) => g,
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// Get or create the gauge `name` (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge {}
    }

    /// Get or create the histogram `name`. Panics if `name` is already
    /// registered as a different kind.
    #[cfg(feature = "telemetry")]
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || {
            Metric::Histogram(Histogram {
                cells: Arc::new(HistogramCells::new()),
            })
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Get or create the histogram `name` (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram {}
    }

    /// Flattened rows for every registered metric, sorted by name — the
    /// backing data of monetlite's `sys.metrics` table.
    #[cfg(feature = "telemetry")]
    pub fn rows(&self) -> Vec<MetricRow> {
        let map = self.metrics.read().expect("metrics lock");
        let mut rows: Vec<MetricRow> = map
            .iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => MetricRow {
                    name: name.clone(),
                    kind: "counter",
                    value: i64::try_from(c.get()).unwrap_or(i64::MAX),
                    sum: 0,
                    mean: 0.0,
                    p50: 0,
                    p90: 0,
                    p99: 0,
                },
                Metric::Gauge(g) => MetricRow {
                    name: name.clone(),
                    kind: "gauge",
                    value: g.get(),
                    sum: 0,
                    mean: 0.0,
                    p50: 0,
                    p90: 0,
                    p99: 0,
                },
                Metric::Histogram(h) => MetricRow {
                    name: name.clone(),
                    kind: "histogram",
                    value: i64::try_from(h.count()).unwrap_or(i64::MAX),
                    sum: h.sum(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                },
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Flattened rows (no-op build: empty).
    #[cfg(not(feature = "telemetry"))]
    pub fn rows(&self) -> Vec<MetricRow> {
        Vec::new()
    }

    /// A JSON object keyed by metric name; histogram entries carry
    /// `count`/`sum`/`mean`/`p50`/`p90`/`p99` sub-fields.
    #[cfg(feature = "telemetry")]
    pub fn snapshot(&self) -> Value {
        let map = self.metrics.read().expect("metrics lock");
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        let pairs = names
            .into_iter()
            .map(|name| {
                let body = match &map[name] {
                    Metric::Counter(c) => Value::Object(vec![
                        ("kind".to_string(), Value::Str("counter".to_string())),
                        ("value".to_string(), json_u64(c.get())),
                    ]),
                    Metric::Gauge(g) => Value::Object(vec![
                        ("kind".to_string(), Value::Str("gauge".to_string())),
                        ("value".to_string(), Value::Int(g.get())),
                    ]),
                    Metric::Histogram(h) => Value::Object(vec![
                        ("kind".to_string(), Value::Str("histogram".to_string())),
                        ("count".to_string(), json_u64(h.count())),
                        ("sum".to_string(), json_u64(h.sum())),
                        ("mean".to_string(), Value::Float(h.mean())),
                        ("p50".to_string(), json_u64(h.quantile(0.50))),
                        ("p90".to_string(), json_u64(h.quantile(0.90))),
                        ("p99".to_string(), json_u64(h.quantile(0.99))),
                    ]),
                };
                (name.clone(), body)
            })
            .collect();
        Value::Object(pairs)
    }

    /// Snapshot (no-op build: an empty object).
    #[cfg(not(feature = "telemetry"))]
    pub fn snapshot(&self) -> Value {
        Value::Object(Vec::new())
    }

    /// Zero every metric **in place**. Entries are never removed, so
    /// handles cached by the macros stay live across resets (tests and
    /// benchmarks use this to start from a clean slate).
    #[cfg(feature = "telemetry")]
    pub fn reset(&self) {
        let map = self.metrics.read().expect("metrics lock");
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.cell.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.cell.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Zero every metric (no-op build).
    #[cfg(not(feature = "telemetry"))]
    pub fn reset(&self) {}
}

/// `u64` → JSON, saturating at `i64::MAX` (the codec's integer range).
#[cfg(feature = "telemetry")]
fn json_u64(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// The process-wide registry the macros record into.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// JSON snapshot of the global registry (see
/// [`MetricsRegistry::snapshot`]).
pub fn snapshot() -> Value {
    registry().snapshot()
}

/// Flattened rows of the global registry (see [`MetricsRegistry::rows`]).
pub fn rows() -> Vec<MetricRow> {
    registry().rows()
}

/// Serialize cross-test access to the global registry. Tests that assert
/// *exact* counter values hold this for their whole body so a concurrently
/// running test in the same binary cannot bleed increments into the
/// window between `reset()` and the assertion.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let _serial = test_lock();
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.counter");
        c.inc();
        c.add(4);
        let g = reg.gauge("t.gauge");
        g.set(10);
        g.add(-3);
        if cfg!(feature = "telemetry") {
            assert_eq!(c.get(), 5);
            assert_eq!(g.get(), 7);
            // Handles for the same name share the cell.
            assert_eq!(reg.counter("t.counter").get(), 5);
        } else {
            assert_eq!(c.get(), 0);
            assert_eq!(g.get(), 0);
        }
    }

    #[test]
    fn histogram_stats() {
        let _serial = test_lock();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.hist");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        if cfg!(feature = "telemetry") {
            assert_eq!(h.count(), 5);
            assert_eq!(h.sum(), 1106);
            assert!((h.mean() - 221.2).abs() < 1e-9);
            // p99 lands in the bucket containing 1000: [512, 1024).
            assert_eq!(h.quantile(0.99), 1023);
            assert_eq!(h.quantile(0.0), 1);
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn rows_carry_percentile_columns() {
        let _serial = test_lock();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q.lat");
        // 9 fast observations and one slow outlier: p50/p90 sit in the
        // [4, 8) bucket, p99 in the outlier's [1024, 2048) bucket.
        for _ in 0..9 {
            h.record(5);
        }
        h.record(2000);
        reg.counter("q.count").inc();
        let rows = reg.rows();
        if cfg!(feature = "telemetry") {
            let lat = rows.iter().find(|r| r.name == "q.lat").unwrap();
            assert_eq!(lat.p50, 7);
            assert_eq!(lat.p90, 7);
            assert_eq!(lat.p99, 2047);
            let count = rows.iter().find(|r| r.name == "q.count").unwrap();
            assert_eq!((count.p50, count.p90, count.p99), (0, 0, 0));
            // The JSON snapshot exposes the same estimates.
            let snap = reg.snapshot();
            let p90 = snap.get("q.lat").and_then(|v| v.get("p90"));
            assert_eq!(p90.and_then(|v| v.as_i64()), Some(7));
        } else {
            assert!(rows.is_empty());
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn snapshot_and_rows_agree() {
        let _serial = test_lock();
        let reg = MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.histogram("b.lat").record(500);
        let rows = reg.rows();
        let snap = reg.snapshot();
        if cfg!(feature = "telemetry") {
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0].name, "a.count");
            assert_eq!(rows[0].value, 7);
            assert_eq!(rows[1].kind, "histogram");
            assert_eq!(
                snap.get("a.count").unwrap().get("value").unwrap().as_i64(),
                Some(7)
            );
            assert_eq!(
                snap.get("b.lat").unwrap().get("count").unwrap().as_i64(),
                Some(1)
            );
        } else {
            assert!(rows.is_empty());
            assert_eq!(snap, Value::Object(Vec::new()));
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn reset_zeroes_in_place() {
        let _serial = test_lock();
        let reg = MetricsRegistry::new();
        let c = reg.counter("r.count");
        c.add(3);
        reg.reset();
        // The handle survives the reset and reads the zeroed cell.
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.counter("r.count").get(), 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("mix.up");
        reg.counter("mix.up");
    }

    #[test]
    fn runtime_disable_drops_updates() {
        let _serial = test_lock();
        let reg = MetricsRegistry::new();
        let c = reg.counter("d.count");
        crate::set_enabled(false);
        c.inc();
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        c.inc();
        if cfg!(feature = "telemetry") {
            assert_eq!(c.get(), 1);
        }
    }

    #[test]
    fn macros_cache_handles() {
        let _serial = test_lock();
        crate::counter!("m.macro.count").inc();
        crate::gauge!("m.macro.gauge").set(2);
        crate::histogram!("m.macro.hist").record(9);
        if cfg!(feature = "telemetry") {
            assert!(registry().counter("m.macro.count").get() >= 1);
        }
    }
}
