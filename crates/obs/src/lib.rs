//! Zero-dependency observability for the devUDF reproduction.
//!
//! The paper's pitch is making UDF development *inspectable*; this crate
//! makes the reproduction itself inspectable. It provides, with nothing
//! beyond `std` and the in-repo [`codecs::json`] codec (DESIGN §4a):
//!
//! * a process-wide [`metrics::MetricsRegistry`] of atomic counters,
//!   gauges and fixed-bucket latency histograms, with cheap per-call-site
//!   handles via the [`counter!`], [`gauge!`] and [`histogram!`] macros;
//! * structured tracing — RAII [`trace::SpanGuard`]s carrying ids,
//!   parents, wall-clock duration and key/value fields, fanned out to
//!   pluggable [`trace::Subscriber`]s (a ring buffer for tests, a JSONL
//!   writer for files and stderr);
//! * [`metrics::snapshot`] → JSON export, which monetlite materializes as
//!   the `sys.metrics` virtual table and the `devudf metrics` CLI
//!   subcommand pretty-prints over the wire.
//!
//! # Overhead budget
//!
//! Handles are `Arc`-shared atomics resolved once per call site (the
//! macros cache them in a `static OnceLock`), so the steady-state cost of
//! a counter bump is one relaxed load of the global enable flag plus one
//! relaxed `fetch_add` — a few nanoseconds against the ~3.5 µs in-process
//! ping it instruments (see `BENCH_obs.json`). Two switches exist:
//!
//! * **runtime**: [`set_enabled`]`(false)` short-circuits every handle and
//!   span behind one relaxed atomic load, letting a single binary measure
//!   instrumented-vs-uninstrumented (the obs benchmark does exactly this);
//! * **compile time**: building with `--no-default-features` (dropping the
//!   `telemetry` feature) turns the whole crate into zero-sized no-ops
//!   while keeping the API identical, so dependants need no `cfg` of
//!   their own.
//!
//! # Example
//!
//! ```
//! obs::counter!("demo.requests").inc();
//! let _span = obs::trace::span("demo.handle");
//! obs::histogram!("demo.latency_ns").record(1_250);
//! // `snapshot()` is a `codecs::json::Value`; empty in a no-op build.
//! let snap = obs::metrics::snapshot();
//! assert_eq!(snap.get("demo.requests").is_some(), obs::enabled());
//! ```

pub mod metrics;
pub mod profile;
pub mod trace;

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "telemetry")]
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Runtime kill-switch: with telemetry disabled every counter bump,
/// histogram record and span close becomes a single relaxed load.
/// Defaults to enabled.
#[cfg(feature = "telemetry")]
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is currently recording (see [`set_enabled`]).
#[cfg(feature = "telemetry")]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// No-op build: the switch exists but nothing ever records.
#[cfg(not(feature = "telemetry"))]
pub fn set_enabled(_on: bool) {}

/// No-op build: telemetry is never recording.
#[cfg(not(feature = "telemetry"))]
pub fn enabled() -> bool {
    false
}

/// A counter handle for a metric name, resolved once per call site.
///
/// ```
/// obs::counter!("example.hits").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// A gauge handle for a metric name, resolved once per call site.
///
/// ```
/// obs::gauge!("example.depth").set(3);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// A histogram handle for a metric name, resolved once per call site.
///
/// ```
/// obs::histogram!("example.latency_ns").record(42);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

/// Emit a structured warning event (see [`trace::warn`]): renders as one
/// JSONL line on stderr unless a subscriber (e.g. a test ring buffer) is
/// installed.
///
/// ```
/// obs::warn!("settings not saved", "path" => "/tmp/x", "error" => "denied");
/// ```
#[macro_export]
macro_rules! warn {
    ($msg:expr $(, $k:expr => $v:expr)* $(,)?) => {
        $crate::trace::warn($msg, &[$(($k, &$v.to_string())),*])
    };
}
