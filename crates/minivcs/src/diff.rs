//! Line-based Myers diff, unified rendering and patch application.

/// One diff hunk operation over whole lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOp {
    /// Lines present in both versions.
    Equal(Vec<String>),
    /// Lines removed from the old version.
    Delete(Vec<String>),
    /// Lines added in the new version.
    Insert(Vec<String>),
}

fn split_lines(text: &str) -> Vec<String> {
    if text.is_empty() {
        return Vec::new();
    }
    text.lines().map(|l| l.to_string()).collect()
}

/// Compute a minimal line diff between `old` and `new` (LCS-based shortest
/// edit script; quadratic in line count, which is ample for UDF-sized files).
pub fn diff_lines(old: &str, new: &str) -> Vec<DiffOp> {
    let a = split_lines(old);
    let b = split_lines(new);
    let ses = shortest_edit_script(&a, &b);
    // Coalesce the edit script into runs.
    let mut ops: Vec<DiffOp> = Vec::new();
    let push = |ops: &mut Vec<DiffOp>, kind: u8, line: String| match (ops.last_mut(), kind) {
        (Some(DiffOp::Equal(v)), 0) => v.push(line),
        (Some(DiffOp::Delete(v)), 1) => v.push(line),
        (Some(DiffOp::Insert(v)), 2) => v.push(line),
        (_, 0) => ops.push(DiffOp::Equal(vec![line])),
        (_, 1) => ops.push(DiffOp::Delete(vec![line])),
        (_, _) => ops.push(DiffOp::Insert(vec![line])),
    };
    for (kind, line) in ses {
        push(&mut ops, kind, line);
    }
    ops
}

/// Shortest edit script via LCS dynamic programming; returns (kind, line)
/// with kind 0=equal, 1=delete, 2=insert. Optimal (minimal insert+delete
/// count), deterministic, and trivially correct — the quadratic cost is
/// irrelevant at UDF-file sizes.
fn shortest_edit_script(a: &[String], b: &[String]) -> Vec<(u8, String)> {
    let (n, m) = (a.len(), b.len());
    // lcs[i][j] = LCS length of a[i..] and b[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::with_capacity(n + m);
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((0, a[i].clone()));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            out.push((1, a[i].clone()));
            i += 1;
        } else {
            out.push((2, b[j].clone()));
            j += 1;
        }
    }
    while i < n {
        out.push((1, a[i].clone()));
        i += 1;
    }
    while j < m {
        out.push((2, b[j].clone()));
        j += 1;
    }
    out
}

/// Apply a diff (as produced by [`diff_lines`] against `old`) to reconstruct
/// the new text. Returns `None` if the diff does not match `old`.
pub fn apply_patch(old: &str, ops: &[DiffOp]) -> Option<String> {
    let old_lines = split_lines(old);
    let mut cursor = 0usize;
    let mut out: Vec<String> = Vec::new();
    for op in ops {
        match op {
            DiffOp::Equal(lines) => {
                for line in lines {
                    if old_lines.get(cursor) != Some(line) {
                        return None;
                    }
                    out.push(line.clone());
                    cursor += 1;
                }
            }
            DiffOp::Delete(lines) => {
                for line in lines {
                    if old_lines.get(cursor) != Some(line) {
                        return None;
                    }
                    cursor += 1;
                }
            }
            DiffOp::Insert(lines) => out.extend(lines.iter().cloned()),
        }
    }
    if cursor != old_lines.len() {
        return None;
    }
    if out.is_empty() {
        return Some(String::new());
    }
    Some(out.join("\n") + "\n")
}

/// Render a diff in unified style (without hunk headers — whole-file view).
pub fn render_unified(ops: &[DiffOp]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            DiffOp::Equal(lines) => {
                for line in lines {
                    out.push_str(&format!(" {line}\n"));
                }
            }
            DiffOp::Delete(lines) => {
                for line in lines {
                    out.push_str(&format!("-{line}\n"));
                }
            }
            DiffOp::Insert(lines) => {
                for line in lines {
                    out.push_str(&format!("+{line}\n"));
                }
            }
        }
    }
    out
}

/// Count (added, removed) lines.
pub fn stats(ops: &[DiffOp]) -> (usize, usize) {
    let mut added = 0;
    let mut removed = 0;
    for op in ops {
        match op {
            DiffOp::Insert(l) => added += l.len(),
            DiffOp::Delete(l) => removed += l.len(),
            DiffOp::Equal(_) => {}
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(old: &str, new: &str) {
        let ops = diff_lines(old, new);
        let rebuilt = apply_patch(old, &ops).expect("patch applies");
        // Normalize: our patches always end with a newline when non-empty.
        let expected = if new.is_empty() {
            String::new()
        } else {
            let mut s = new.lines().collect::<Vec<_>>().join("\n");
            s.push('\n');
            s
        };
        assert_eq!(rebuilt, expected, "old={old:?} new={new:?} ops={ops:?}");
    }

    #[test]
    fn identical_texts() {
        let ops = diff_lines("a\nb\n", "a\nb\n");
        assert_eq!(ops, vec![DiffOp::Equal(vec!["a".into(), "b".into()])]);
        assert_eq!(stats(&ops), (0, 0));
    }

    #[test]
    fn single_line_change_listing4_fix() {
        // The Scenario A fix: add abs() on the distance accumulation line.
        let old =
            "distance = 0\nfor i in range(0, len(column)):\n    distance += column[i] - mean\n";
        let new = "distance = 0\nfor i in range(0, len(column)):\n    distance += abs(column[i] - mean)\n";
        let ops = diff_lines(old, new);
        let (added, removed) = stats(&ops);
        assert_eq!((added, removed), (1, 1));
        let rendered = render_unified(&ops);
        assert!(rendered.contains("-    distance += column[i] - mean"));
        assert!(rendered.contains("+    distance += abs(column[i] - mean)"));
        round_trip(old, new);
    }

    #[test]
    fn insert_at_beginning_and_end() {
        round_trip("b\n", "a\nb\nc\n");
        round_trip("a\nb\nc\n", "b\n");
    }

    #[test]
    fn empty_cases() {
        round_trip("", "");
        round_trip("", "new\nlines\n");
        round_trip("old\nlines\n", "");
    }

    #[test]
    fn completely_different() {
        round_trip("a\nb\nc\n", "x\ny\n");
    }

    #[test]
    fn repeated_lines() {
        round_trip("a\na\na\n", "a\na\n");
        round_trip("a\nb\na\nb\n", "b\na\nb\na\n");
    }

    #[test]
    fn patch_rejects_wrong_base() {
        let ops = diff_lines("a\nb\n", "a\nc\n");
        assert!(apply_patch("totally\ndifferent\n", &ops).is_none());
    }

    #[test]
    fn diff_is_minimal_for_one_line_edit() {
        let old: String = (0..100).map(|i| format!("line {i}\n")).collect();
        let new = old.replace("line 50", "line fifty");
        let ops = diff_lines(&old, &new);
        assert_eq!(stats(&ops), (1, 1));
    }

    #[test]
    fn large_diff_round_trips() {
        let old: String = (0..500).map(|i| format!("{}\n", i % 13)).collect();
        let new: String = (0..480).map(|i| format!("{}\n", (i * 7) % 11)).collect();
        round_trip(&old, &new);
    }
}
