//! Repository layer: staging, commits, history, status, checkout.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use codecs::json::{self, Value};

use crate::diff::{diff_lines, render_unified, DiffOp};
use crate::store::{ObjectId, ObjectStore};

/// A recorded commit.
#[derive(Debug, Clone, PartialEq)]
pub struct Commit {
    /// Content address of the serialized commit record (not stored inside
    /// the record itself — it is the record's hash).
    pub id: ObjectIdSerde,
    pub message: String,
    pub author: String,
    /// Parent commit id (None for the root commit).
    pub parent: Option<String>,
    /// Snapshot: path → blob object id.
    pub tree: BTreeMap<String, String>,
    /// Monotonic sequence number within this repository.
    pub seq: u64,
}

/// Wrapper so `Commit.id` serializes cleanly.
pub type ObjectIdSerde = String;

/// Working-tree status of one file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileStatus {
    New,
    Modified,
    Deleted,
    Unchanged,
}

/// Full status report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Status {
    /// (path, status), sorted by path; `Unchanged` entries are omitted.
    pub entries: Vec<(String, FileStatus)>,
}

impl Status {
    pub fn is_clean(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A repository over a real directory. Metadata lives under `<root>/.minivcs`.
pub struct Repository {
    root: PathBuf,
    store: ObjectStore,
}

#[derive(Default)]
struct Index {
    /// Staged files: path → blob id.
    staged: BTreeMap<String, String>,
    /// Current head commit id.
    head: Option<String>,
    next_seq: u64,
}

fn invalid(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

fn parse_json(data: &[u8], what: &str) -> std::io::Result<Value> {
    let text = std::str::from_utf8(data).map_err(|e| invalid(format!("{what}: {e}")))?;
    json::parse(text).map_err(|e| invalid(format!("{what}: {e}")))
}

fn tree_to_json(tree: &BTreeMap<String, String>) -> Value {
    Value::Object(
        tree.iter()
            .map(|(path, blob)| (path.clone(), Value::from(blob.as_str())))
            .collect(),
    )
}

fn tree_from_json(v: &Value) -> std::io::Result<BTreeMap<String, String>> {
    v.as_object()
        .ok_or_else(|| invalid("tree must be an object"))?
        .iter()
        .map(|(path, blob)| {
            blob.as_str()
                .map(|s| (path.clone(), s.to_string()))
                .ok_or_else(|| invalid("tree values must be blob id strings"))
        })
        .collect()
}

impl Index {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("staged".to_string(), tree_to_json(&self.staged)),
            ("head".to_string(), Value::from(self.head.as_deref())),
            ("next_seq".to_string(), Value::from(self.next_seq)),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<Index> {
        Ok(Index {
            staged: tree_from_json(
                v.get("staged")
                    .ok_or_else(|| invalid("index: staged missing"))?,
            )?,
            head: match v.get("head") {
                None | Some(Value::Null) => None,
                Some(h) => Some(
                    h.as_str()
                        .ok_or_else(|| invalid("index: head must be a commit id"))?
                        .to_string(),
                ),
            },
            next_seq: v
                .get("next_seq")
                .and_then(Value::as_u64)
                .ok_or_else(|| invalid("index: next_seq missing"))?,
        })
    }
}

impl Commit {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("message".to_string(), Value::from(self.message.as_str())),
            ("author".to_string(), Value::from(self.author.as_str())),
            ("parent".to_string(), Value::from(self.parent.as_deref())),
            ("tree".to_string(), tree_to_json(&self.tree)),
            ("seq".to_string(), Value::from(self.seq)),
        ])
    }

    fn from_json(v: &Value) -> std::io::Result<Commit> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("commit: field '{name}' missing")))
        };
        Ok(Commit {
            id: String::new(),
            message: field("message")?,
            author: field("author")?,
            parent: match v.get("parent") {
                None | Some(Value::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| invalid("commit: parent must be a commit id"))?
                        .to_string(),
                ),
            },
            tree: tree_from_json(
                v.get("tree")
                    .ok_or_else(|| invalid("commit: tree missing"))?,
            )?,
            seq: v
                .get("seq")
                .and_then(Value::as_u64)
                .ok_or_else(|| invalid("commit: seq missing"))?,
        })
    }
}

impl Repository {
    fn meta_dir(root: &Path) -> PathBuf {
        root.join(".minivcs")
    }

    /// Initialize (or reopen) a repository at `root`.
    pub fn init(root: &Path) -> std::io::Result<Repository> {
        let meta = Self::meta_dir(root);
        fs::create_dir_all(&meta)?;
        let store = ObjectStore::open(&meta)?;
        let repo = Repository {
            root: root.to_path_buf(),
            store,
        };
        if repo.read_index().is_err() {
            repo.write_index(&Index::default())?;
        }
        Ok(repo)
    }

    fn index_path(&self) -> PathBuf {
        Self::meta_dir(&self.root).join("index.json")
    }

    fn read_index(&self) -> std::io::Result<Index> {
        let data = fs::read(self.index_path())?;
        Index::from_json(&parse_json(&data, "index")?)
    }

    fn write_index(&self, index: &Index) -> std::io::Result<()> {
        fs::write(self.index_path(), index.to_json().to_string_pretty())
    }

    /// Stage a file (path relative to the repository root).
    pub fn add(&self, path: &str) -> std::io::Result<ObjectId> {
        let content = fs::read(self.root.join(path))?;
        let id = self.store.put(&content)?;
        let mut index = self.read_index()?;
        index.staged.insert(path.to_string(), id.0.clone());
        self.write_index(&index)?;
        Ok(id)
    }

    /// Stage every regular file under the root (excluding `.minivcs`).
    pub fn add_all(&self) -> std::io::Result<usize> {
        let files = self.working_files()?;
        let mut count = 0;
        for f in files {
            self.add(&f)?;
            count += 1;
        }
        Ok(count)
    }

    /// Remove a path from the next commit's tree.
    pub fn remove(&self, path: &str) -> std::io::Result<()> {
        let mut index = self.read_index()?;
        index.staged.remove(path);
        self.write_index(&index)?;
        Ok(())
    }

    /// Record a commit from the staged tree. Errors if nothing changed.
    pub fn commit(&self, message: &str, author: &str) -> std::io::Result<ObjectId> {
        let mut index = self.read_index()?;
        let parent_tree = match &index.head {
            Some(h) => self.load_commit(&ObjectId(h.clone()))?.tree,
            None => BTreeMap::new(),
        };
        if index.staged == parent_tree {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "nothing to commit",
            ));
        }
        let commit = Commit {
            id: String::new(),
            message: message.to_string(),
            author: author.to_string(),
            parent: index.head.clone(),
            tree: index.staged.clone(),
            seq: index.next_seq,
        };
        let blob = commit.to_json().to_string_pretty().into_bytes();
        let id = self.store.put(&blob)?;
        index.head = Some(id.0.clone());
        index.next_seq += 1;
        self.write_index(&index)?;
        Ok(id)
    }

    fn load_commit(&self, id: &ObjectId) -> std::io::Result<Commit> {
        let blob = self.store.get(id)?;
        let mut commit = Commit::from_json(&parse_json(&blob, "commit")?)?;
        commit.id = id.0.clone();
        Ok(commit)
    }

    /// Head commit id, if any.
    pub fn head(&self) -> std::io::Result<Option<ObjectId>> {
        Ok(self.read_index()?.head.map(ObjectId))
    }

    /// Commit history, newest first.
    pub fn log(&self) -> std::io::Result<Vec<Commit>> {
        let mut out = Vec::new();
        let mut cursor = self.read_index()?.head;
        while let Some(id) = cursor {
            let commit = self.load_commit(&ObjectId(id))?;
            cursor = commit.parent.clone();
            out.push(commit);
        }
        Ok(out)
    }

    /// Fetch a file's content at a given commit.
    pub fn file_at(&self, commit: &ObjectId, path: &str) -> std::io::Result<Option<Vec<u8>>> {
        let c = self.load_commit(commit)?;
        match c.tree.get(path) {
            None => Ok(None),
            Some(blob) => Ok(Some(self.store.get(&ObjectId(blob.clone()))?)),
        }
    }

    /// All regular files under the root, relative paths, sorted;
    /// `.minivcs` and hidden directories are skipped.
    pub fn working_files(&self) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().to_string();
                if name.starts_with('.') {
                    continue;
                }
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let rel = path
                        .strip_prefix(&self.root)
                        .expect("children are under root")
                        .to_string_lossy()
                        .replace('\\', "/");
                    out.push(rel);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Compare the working tree against HEAD.
    pub fn status(&self) -> std::io::Result<Status> {
        let head_tree = match self.head()? {
            Some(h) => self.load_commit(&h)?.tree,
            None => BTreeMap::new(),
        };
        let mut entries = Vec::new();
        let working = self.working_files()?;
        for path in &working {
            let content = fs::read(self.root.join(path))?;
            let id = ObjectId::of(&content).0;
            match head_tree.get(path) {
                None => entries.push((path.clone(), FileStatus::New)),
                Some(existing) if *existing != id => {
                    entries.push((path.clone(), FileStatus::Modified))
                }
                Some(_) => {}
            }
        }
        for path in head_tree.keys() {
            if !working.contains(path) {
                entries.push((path.clone(), FileStatus::Deleted));
            }
        }
        entries.sort();
        Ok(Status { entries })
    }

    /// Unified diff of one file between two commits (or the working tree
    /// when `to` is None).
    pub fn diff_file(
        &self,
        path: &str,
        from: &ObjectId,
        to: Option<&ObjectId>,
    ) -> std::io::Result<String> {
        let old = self
            .file_at(from, path)?
            .map(|b| String::from_utf8_lossy(&b).to_string())
            .unwrap_or_default();
        let new = match to {
            Some(id) => self
                .file_at(id, path)?
                .map(|b| String::from_utf8_lossy(&b).to_string())
                .unwrap_or_default(),
            None => fs::read(self.root.join(path))
                .map(|b| String::from_utf8_lossy(&b).to_string())
                .unwrap_or_default(),
        };
        let ops: Vec<DiffOp> = diff_lines(&old, &new);
        Ok(render_unified(&ops))
    }

    /// Restore the working tree to a commit's snapshot (files in the commit
    /// are overwritten; files not in the commit are left alone).
    pub fn checkout(&self, commit: &ObjectId) -> std::io::Result<usize> {
        let c = self.load_commit(commit)?;
        let mut restored = 0;
        for (path, blob) in &c.tree {
            let content = self.store.get(&ObjectId(blob.clone()))?;
            let target = self.root.join(path);
            if let Some(parent) = target.parent() {
                fs::create_dir_all(parent)?;
            }
            fs::write(target, content)?;
            restored += 1;
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_repo(tag: &str) -> (PathBuf, Repository) {
        let dir = std::env::temp_dir().join(format!(
            "minivcs-repo-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let repo = Repository::init(&dir).unwrap();
        (dir, repo)
    }

    #[test]
    fn add_commit_log() {
        let (dir, repo) = temp_repo("basic");
        fs::write(dir.join("udf.py"), "return 1\n").unwrap();
        repo.add("udf.py").unwrap();
        let c1 = repo.commit("import udf", "dev").unwrap();
        fs::write(dir.join("udf.py"), "return 2\n").unwrap();
        repo.add("udf.py").unwrap();
        let c2 = repo.commit("fix constant", "dev").unwrap();
        let log = repo.log().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].id, c2.0);
        assert_eq!(log[1].id, c1.0);
        assert_eq!(log[0].parent.as_deref(), Some(c1.0.as_str()));
        assert_eq!(log[0].message, "fix constant");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_commit_rejected() {
        let (dir, repo) = temp_repo("empty");
        fs::write(dir.join("a.py"), "x\n").unwrap();
        repo.add("a.py").unwrap();
        repo.commit("first", "dev").unwrap();
        assert!(repo.commit("again with no changes", "dev").is_err());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn status_reports_new_modified_deleted() {
        let (dir, repo) = temp_repo("status");
        fs::write(dir.join("keep.py"), "k\n").unwrap();
        fs::write(dir.join("gone.py"), "g\n").unwrap();
        repo.add_all().unwrap();
        repo.commit("base", "dev").unwrap();
        assert!(repo.status().unwrap().is_clean());

        fs::write(dir.join("keep.py"), "changed\n").unwrap();
        fs::write(dir.join("fresh.py"), "f\n").unwrap();
        fs::remove_file(dir.join("gone.py")).unwrap();
        let status = repo.status().unwrap();
        assert_eq!(
            status.entries,
            vec![
                ("fresh.py".to_string(), FileStatus::New),
                ("gone.py".to_string(), FileStatus::Deleted),
                ("keep.py".to_string(), FileStatus::Modified),
            ]
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn diff_between_commits_shows_scenario_a_fix() {
        let (dir, repo) = temp_repo("diff");
        fs::write(
            dir.join("mean_deviation.py"),
            "distance += column[i] - mean\n",
        )
        .unwrap();
        repo.add_all().unwrap();
        let c1 = repo.commit("buggy import", "dev").unwrap();
        fs::write(
            dir.join("mean_deviation.py"),
            "distance += abs(column[i] - mean)\n",
        )
        .unwrap();
        repo.add_all().unwrap();
        let c2 = repo.commit("add abs()", "dev").unwrap();
        let diff = repo.diff_file("mean_deviation.py", &c1, Some(&c2)).unwrap();
        assert!(diff.contains("-distance += column[i] - mean"));
        assert!(diff.contains("+distance += abs(column[i] - mean)"));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkout_restores_old_version() {
        let (dir, repo) = temp_repo("checkout");
        fs::write(dir.join("f.py"), "v1\n").unwrap();
        repo.add_all().unwrap();
        let c1 = repo.commit("v1", "dev").unwrap();
        fs::write(dir.join("f.py"), "v2\n").unwrap();
        repo.add_all().unwrap();
        repo.commit("v2", "dev").unwrap();
        repo.checkout(&c1).unwrap();
        assert_eq!(fs::read_to_string(dir.join("f.py")).unwrap(), "v1\n");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn nested_directories_tracked() {
        let (dir, repo) = temp_repo("nested");
        fs::create_dir_all(dir.join("udfs/ml")).unwrap();
        fs::write(dir.join("udfs/ml/train.py"), "t\n").unwrap();
        repo.add_all().unwrap();
        let c = repo.commit("nested", "dev").unwrap();
        assert_eq!(
            repo.file_at(&c, "udfs/ml/train.py").unwrap().unwrap(),
            b"t\n"
        );
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopen_preserves_history() {
        let (dir, repo) = temp_repo("reopen");
        fs::write(dir.join("a.py"), "1\n").unwrap();
        repo.add_all().unwrap();
        repo.commit("one", "dev").unwrap();
        drop(repo);
        let repo2 = Repository::init(&dir).unwrap();
        assert_eq!(repo2.log().unwrap().len(), 1);
        fs::remove_dir_all(dir).ok();
    }
}
