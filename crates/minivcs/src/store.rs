//! Content-addressed object store over a real directory.

use std::fs;
use std::path::{Path, PathBuf};

use codecs::{sha256, to_hex};

/// Identifier of a stored object: hex SHA-256 of its content.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub String);

impl ObjectId {
    /// Compute the id of `content` without storing it.
    pub fn of(content: &[u8]) -> ObjectId {
        ObjectId(to_hex(&sha256(content)))
    }

    /// Abbreviated id for display.
    pub fn short(&self) -> &str {
        &self.0[..self.0.len().min(10)]
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Flat object store: one file per object under `<root>/objects/`.
pub struct ObjectStore {
    root: PathBuf,
}

impl ObjectStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: &Path) -> std::io::Result<ObjectStore> {
        fs::create_dir_all(root.join("objects"))?;
        Ok(ObjectStore {
            root: root.to_path_buf(),
        })
    }

    fn path_for(&self, id: &ObjectId) -> PathBuf {
        self.root.join("objects").join(&id.0)
    }

    /// Store `content`, returning its id. Idempotent.
    pub fn put(&self, content: &[u8]) -> std::io::Result<ObjectId> {
        let id = ObjectId::of(content);
        let path = self.path_for(&id);
        if !path.exists() {
            fs::write(path, content)?;
        }
        Ok(id)
    }

    /// Fetch an object's content.
    pub fn get(&self, id: &ObjectId) -> std::io::Result<Vec<u8>> {
        fs::read(self.path_for(id))
    }

    /// Whether an object exists.
    pub fn contains(&self, id: &ObjectId) -> bool {
        self.path_for(id).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store() -> (PathBuf, ObjectStore) {
        let dir = std::env::temp_dir().join(format!(
            "minivcs-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let store = ObjectStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn put_get_round_trip() {
        let (dir, store) = temp_store();
        let id = store.put(b"hello objects").unwrap();
        assert_eq!(store.get(&id).unwrap(), b"hello objects");
        assert!(store.contains(&id));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_content_same_id() {
        let (dir, store) = temp_store();
        let a = store.put(b"same").unwrap();
        let b = store.put(b"same").unwrap();
        assert_eq!(a, b);
        let c = store.put(b"different").unwrap();
        assert_ne!(a, c);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn id_is_sha256_hex() {
        let id = ObjectId::of(b"abc");
        assert_eq!(
            id.0,
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(id.short(), "ba7816bf8f");
    }

    #[test]
    fn missing_object_errors() {
        let (dir, store) = temp_store();
        assert!(store.get(&ObjectId::of(b"never stored")).is_err());
        fs::remove_dir_all(dir).ok();
    }
}
