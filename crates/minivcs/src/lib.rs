//! `minivcs` — a content-addressed mini version control system.
//!
//! The devUDF paper motivates moving UDFs out of the database and into the
//! IDE partly because "version control systems (VCSs) such as Git cannot be
//! easily integrated" while UDFs live server-side (§1). The reproduction
//! demonstrates that full loop — import UDFs → edit as files → diff →
//! commit → export — with this small but genuine VCS:
//!
//! * a content-addressed object store keyed by SHA-256 ([`store`]),
//! * line-based **Myers diff** with unified rendering and patch application
//!   ([`diff`]),
//! * a repository layer with `init` / `add` / `commit` / `log` / `status` /
//!   `checkout` / `diff` over a real directory tree ([`repo`]).
//!
//! ```
//! use minivcs::Repository;
//! let dir = std::env::temp_dir().join(format!("minivcs-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let repo = Repository::init(&dir).unwrap();
//! std::fs::write(dir.join("udf.py"), "return 1\n").unwrap();
//! repo.add("udf.py").unwrap();
//! let id = repo.commit("import UDF", "dev").unwrap();
//! assert_eq!(repo.log().unwrap()[0].id, id.0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod diff;
pub mod repo;
pub mod store;

pub use diff::{apply_patch, diff_lines, render_unified, DiffOp};
pub use repo::{Commit, FileStatus, Repository, Status};
pub use store::{ObjectId, ObjectStore};
