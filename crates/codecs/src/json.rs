//! A small hand-rolled JSON codec (RFC 8259 subset, no external crates).
//!
//! Replaces `serde_json` for the workspace's few persistence needs: the
//! IDE settings file (`core::settings`), the `minivcs` index and commit
//! objects, and the `BENCH_*.json` artifacts written by
//! `devharness::bench`. Design choices:
//!
//! * [`Value::Object`] keeps **insertion order** (a `Vec` of pairs, not a
//!   map) so written files stay diff-friendly and field order is stable.
//! * Integers and floats are distinct variants; `u64`/`i64` round-trip
//!   exactly instead of being squeezed through `f64`.
//! * Non-finite floats serialize as `null`, mirroring serde_json.
//! * The parser is a recursive-descent reader over bytes with a nesting
//!   cap of 128, full string escapes (`\uXXXX` incl. surrogate pairs),
//!   and byte-offset error reporting.
//!
//! ```
//! use codecs::json::{parse, Value};
//! let v = parse(r#"{"name": "devudf", "tests": [1, 2, 3]}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("devudf"));
//! assert_eq!(v.get("tests").unwrap().as_array().unwrap().len(), 3);
//! ```

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent that fits an `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (linear scan; objects here are tiny).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64` (from `Int`, or a `Float` with integral value).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as `u64`, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as `f64` (`Int` widens).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The pair list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact one-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty serialization: two-space indent, one member per line,
    /// trailing newline (matches what `serde_json::to_vec_pretty` produced
    /// for the settings file, so existing files remain readable diffs).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        // Settings/index counters stay far below i64::MAX; saturate rather
        // than silently wrapping if one ever does not.
        Value::Int(i64::try_from(u).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::from(u as u64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats re-parsing as floats.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            write_value,
            ('[', ']'),
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
            ('{', '}'),
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    (open, close): (char, char),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: '0' alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "-1", "42", "1.5", "-0.25", "1e3",
        ] {
            let v = parse(text).unwrap();
            let back = parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn ints_and_floats_are_distinct() {
        assert_eq!(parse("7").unwrap(), Value::Int(7));
        assert_eq!(parse("7.0").unwrap(), Value::Float(7.0));
        assert_eq!(parse("1e2").unwrap(), Value::Float(100.0));
        assert_eq!(parse("9223372036854775807").unwrap(), Value::Int(i64::MAX));
        // Past i64: falls back to float rather than erroring.
        assert!(matches!(
            parse("9223372036854775808").unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Value::Object(vec![
            ("zebra".into(), Value::Int(1)),
            ("apple".into(), Value::Int(2)),
        ]);
        let text = v.to_string_pretty();
        assert!(text.find("zebra").unwrap() < text.find("apple").unwrap());
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t nul\u{0} é ☃ \u{1f600}";
        let v = Value::Str(s.to_string());
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("\u{1f600}".to_string()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83d\u0041""#).is_err());
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![
            ("compress".into(), Value::Bool(true)),
            ("sample".into(), Value::Null),
            (
                "sizes".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(
            text,
            "{\n  \"compress\": true,\n  \"sample\": null,\n  \"sizes\": [\n    1,\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1,]",
            "\u{1}",
            "\"\\x\"",
            "nan",
        ] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn deep_nesting_is_capped_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn from_impls_build_expected_variants() {
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(Some("x")), Value::Str("x".into()));
        assert_eq!(Value::from(None::<u64>), Value::Null);
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
