//! LEB128-style unsigned variable-length integers.
//!
//! Used by the LZ token stream and the wire protocol framing. Small values
//! (lengths, offsets, row counts) dominate both, so the 1-byte fast path
//! matters.

/// Errors returned while decoding a varint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// Input ended before the terminating byte.
    UnexpectedEof,
    /// More than 10 continuation bytes (would overflow a u64).
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::UnexpectedEof => write!(f, "varint: unexpected end of input"),
            VarintError::Overflow => write!(f, "varint: value overflows u64"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Append the varint encoding of `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
pub fn read_u64(input: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 {
            return Err(VarintError::Overflow);
        }
        let low = (byte & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(VarintError::Overflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(VarintError::UnexpectedEof)
}

/// Encoded length in bytes of `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_small_values_in_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf, vec![v as u8]);
        }
    }

    #[test]
    fn round_trips_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (decoded, used) = read_u64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
            assert_eq!(used, encoded_len(v));
        }
    }

    #[test]
    fn decodes_with_trailing_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(b"rest");
        let (v, used) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }

    #[test]
    fn errors_on_truncation() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        assert_eq!(read_u64(&buf), Err(VarintError::UnexpectedEof));
        assert_eq!(read_u64(&[]), Err(VarintError::UnexpectedEof));
    }

    #[test]
    fn errors_on_overflow() {
        // 11 continuation bytes.
        let buf = [0xffu8; 11];
        assert_eq!(read_u64(&buf), Err(VarintError::Overflow));
        // 10 bytes but the last one pushes past 64 bits.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert_eq!(read_u64(&buf), Err(VarintError::Overflow));
    }
}
