//! Hexadecimal encoding/decoding for digests and test vectors.

/// Encode `bytes` as a lowercase hexadecimal string.
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hexadecimal string (upper- or lowercase) into bytes.
///
/// Returns `None` if the input has odd length or contains a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_empty() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn encodes_known_bytes() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x10, 0xab]), "00ff10ab");
    }

    #[test]
    fn decodes_uppercase() {
        assert_eq!(from_hex("00FF10AB").unwrap(), vec![0x00, 0xff, 0x10, 0xab]);
    }

    #[test]
    fn rejects_odd_length() {
        assert!(from_hex("abc").is_none());
    }

    #[test]
    fn rejects_non_hex() {
        assert!(from_hex("zz").is_none());
        assert!(from_hex("0g").is_none());
    }

    #[test]
    fn round_trips_all_bytes() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&all)).unwrap(), all);
    }
}
