//! ChaCha20 stream cipher (RFC 8439).
//!
//! Implements the paper's optional encryption transfer option: "the data is
//! encrypted by the extract function before being transferred using the
//! password of the database user as a key" (§2.1). Key derivation from the
//! password lives in [`crate::kdf`]. Being a stream cipher, encryption and
//! decryption are the same operation.

/// ChaCha20 cipher instance holding key, nonce and block counter.
pub struct ChaCha20 {
    state: [u32; 16],
    keystream: [u8; 64],
    /// Offset of the next unused keystream byte; 64 means "exhausted".
    offset: usize,
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

impl ChaCha20 {
    /// Create a cipher with a 256-bit key, a 96-bit nonce and an initial
    /// block counter (RFC 8439 uses counter 1 for payload encryption).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            state,
            keystream: [0u8; 64],
            offset: 64,
        }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut work = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut work, 0, 4, 8, 12);
            Self::quarter_round(&mut work, 1, 5, 9, 13);
            Self::quarter_round(&mut work, 2, 6, 10, 14);
            Self::quarter_round(&mut work, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut work, 0, 5, 10, 15);
            Self::quarter_round(&mut work, 1, 6, 11, 12);
            Self::quarter_round(&mut work, 2, 7, 8, 13);
            Self::quarter_round(&mut work, 3, 4, 9, 14);
        }
        for (i, w) in work.iter().enumerate() {
            let word = w.wrapping_add(self.state[i]);
            self.keystream[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        self.offset = 0;
    }

    /// XOR `data` with the keystream in place (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            if self.offset == 64 {
                self.refill();
            }
            *b ^= self.keystream[self.offset];
            self.offset += 1;
        }
    }

    /// Convenience: return an encrypted/decrypted copy of `data`.
    pub fn process(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }
}

/// One-shot encryption/decryption of `data`.
pub fn xor_stream(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &[u8]) -> Vec<u8> {
    ChaCha20::new(key, nonce, counter).process(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::{from_hex, to_hex};

    fn rfc_key() -> [u8; 32] {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    // RFC 8439 §2.4.2 test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key = rfc_key();
        let nonce_bytes = from_hex("000000000000004a00000000").unwrap();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&nonce_bytes);
        let plaintext = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = xor_stream(&key, &nonce, 1, plaintext);
        assert_eq!(
            to_hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
                .replace(' ', "")
        );
    }

    // RFC 8439 §2.3.2 keystream block vector: encrypting zeros yields the
    // raw keystream.
    #[test]
    fn rfc8439_block_function_vector() {
        let key = rfc_key();
        let nonce_bytes = from_hex("000000090000004a00000000").unwrap();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&nonce_bytes);
        let ks = xor_stream(&key, &nonce, 1, &[0u8; 64]);
        assert_eq!(
            to_hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn round_trip_is_identity() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 256) as u8).collect();
        let ct = xor_stream(&key, &nonce, 1, &data);
        assert_ne!(ct, data);
        let pt = xor_stream(&key, &nonce, 1, &ct);
        assert_eq!(pt, data);
    }

    #[test]
    fn wrong_key_does_not_decrypt() {
        let key = [7u8; 32];
        let wrong = [8u8; 32];
        let nonce = [3u8; 12];
        let data = b"sensitive column data".to_vec();
        let ct = xor_stream(&key, &nonce, 1, &data);
        let pt = xor_stream(&wrong, &nonce, 1, &ct);
        assert_ne!(pt, data);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let oneshot = xor_stream(&key, &nonce, 0, &data);
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut streamed = Vec::new();
        for chunk in data.chunks(17) {
            streamed.extend_from_slice(&c.process(chunk));
        }
        assert_eq!(streamed, oneshot);
    }
}
