//! From-scratch byte-level primitives used across the devUDF reproduction.
//!
//! The devUDF paper (EDBT 2019, §2.1) offers three transfer options for the
//! UDF input data that is shipped from the database server to the developer's
//! machine: *compression*, *encryption* keyed on the database user's password,
//! and *uniform random sampling*. The paper does not name concrete algorithms,
//! so this crate provides real, tested implementations of the closest
//! well-known equivalents:
//!
//! * [`lz`] — an LZ77-family compressor with a hash-chain matcher and a
//!   varint-coded token stream,
//! * [`chacha20`] — the RFC 8439 ChaCha20 stream cipher,
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256, used for password→key derivation
//!   ([`kdf`]) and as the content address of `minivcs` objects,
//! * [`varint`] — LEB128-style variable-length integers used by the wire
//!   protocol and the compressor,
//! * [`fnv`] — FNV-1a hashing for cheap non-cryptographic fingerprints,
//! * [`hex`] — hexadecimal encoding for object ids and test vectors,
//! * [`json`] — a hand-rolled JSON codec used for IDE settings, `minivcs`
//!   metadata and the bench runner's `BENCH_*.json` artifacts.
//!
//! None of the implementations depend on external crates; each module carries
//! its published test vectors.

pub mod chacha20;
pub mod fnv;
pub mod hex;
pub mod json;
pub mod kdf;
pub mod lz;
pub mod sha256;
pub mod varint;

pub use chacha20::ChaCha20;
pub use fnv::{fnv1a_32, fnv1a_64};
pub use hex::{from_hex, to_hex};
pub use kdf::derive_key;
pub use lz::{compress, decompress, CompressError};
pub use sha256::{sha256, Sha256};
pub use varint::{read_u64, write_u64, VarintError};
