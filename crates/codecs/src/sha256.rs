//! SHA-256 (FIPS 180-4).
//!
//! Serves two roles in the reproduction: the content address of `minivcs`
//! objects (standing in for Git's SHA-1) and the password→key derivation for
//! the paper's "encrypt with the database user's password" transfer option.

/// Round constants (first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finish hashing and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Bypass update() for the length so total_len is not perturbed.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Content addresses for `data` chunked at `block_size`: one digest per
/// block, in block order. The final block may be short; empty input has no
/// blocks. This is the addressing scheme of the wire-transfer delta cache —
/// two payloads share a block exactly when the digests at hand match.
///
/// # Panics
///
/// Panics if `block_size` is zero.
///
/// # Examples
///
/// ```
/// let data = vec![7u8; 10];
/// let digests = codecs::sha256::block_digests(&data, 4); // blocks of 4,4,2
/// assert_eq!(digests.len(), 3);
/// assert_eq!(digests[0], codecs::sha256(&data[..4]));
/// assert_eq!(digests[0], digests[1]);
/// assert_ne!(digests[1], digests[2]);
/// assert!(codecs::sha256::block_digests(&[], 4).is_empty());
/// ```
pub fn block_digests(data: &[u8], block_size: usize) -> Vec<[u8; 32]> {
    assert!(block_size > 0, "block_size must be non-zero");
    data.chunks(block_size).map(sha256).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    // NIST / FIPS 180-4 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 13, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog, twice over";
        let mut h = Sha256::new();
        for &b in data.iter() {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), sha256(data));
    }
}
