//! FNV-1a hashing.
//!
//! Used for cheap, deterministic fingerprints: hash-chain buckets in the LZ
//! compressor and non-cryptographic content fingerprints in the wire
//! protocol's integrity check.

const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
const FNV64_PRIME: u64 = 0x100000001b3;
const FNV32_OFFSET: u32 = 0x811c9dc5;
const FNV32_PRIME: u32 = 0x01000193;

/// 64-bit FNV-1a hash of `data`.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// 32-bit FNV-1a hash of `data`.
pub fn fnv1a_32(data: &[u8]) -> u32 {
    let mut h = FNV32_OFFSET;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    // Published FNV-1a test vectors (from the FNV reference distribution).
    #[test]
    fn known_vectors_64() {
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn known_vectors_32() {
        assert_eq!(fnv1a_32(b""), 0x811c9dc5);
        assert_eq!(fnv1a_32(b"a"), 0xe40c292c);
        assert_eq!(fnv1a_32(b"foobar"), 0xbf9cf968);
    }

    #[test]
    fn differs_on_small_changes() {
        assert_ne!(fnv1a_64(b"hello world"), fnv1a_64(b"hello worle"));
        assert_ne!(fnv1a_32(b"hello world"), fnv1a_32(b"hello worle"));
    }
}
