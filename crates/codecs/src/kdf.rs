//! Password→key derivation for the encryption transfer option.
//!
//! The paper keys the transfer encryption with "the password of the database
//! user" (§2.1). We stretch the password into a 256-bit ChaCha20 key with an
//! iterated, salted SHA-256 construction (a simplified PBKDF: enough to bind
//! the key to password + salt deterministically on both ends of the wire; a
//! production system would use a memory-hard KDF).

use crate::sha256::Sha256;

/// Number of hash iterations applied while stretching.
pub const KDF_ITERATIONS: u32 = 1024;

/// Derive a 256-bit key from `password` and `salt`.
///
/// Both the server-side extract function and the client derive the same key
/// independently, so the password itself never travels over the wire.
pub fn derive_key(password: &str, salt: &[u8]) -> [u8; 32] {
    let mut state = {
        let mut h = Sha256::new();
        h.update(b"devudf-kdf-v1");
        h.update(salt);
        h.update(password.as_bytes());
        h.finalize()
    };
    for i in 0..KDF_ITERATIONS {
        let mut h = Sha256::new();
        h.update(&state);
        h.update(&i.to_le_bytes());
        h.update(password.as_bytes());
        state = h.finalize();
    }
    state
}

/// Derive a 96-bit ChaCha20 nonce from a per-transfer identifier.
///
/// The wire protocol assigns each extract transfer a fresh id; hashing it
/// keeps nonces unique per (key, transfer) pair.
pub fn derive_nonce(transfer_id: u64) -> [u8; 12] {
    let mut h = Sha256::new();
    h.update(b"devudf-nonce-v1");
    h.update(&transfer_id.to_le_bytes());
    let digest = h.finalize();
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&digest[..12]);
    nonce
}

/// Derive a 96-bit ChaCha20 nonce for one block of a chunked transfer.
///
/// The chunked container (see `wireproto::transfer`, DESIGN §11) encrypts
/// every block independently so blocks can be processed in parallel; each
/// (transfer, block) pair therefore needs its own nonce under the shared
/// transfer key. A distinct domain tag keeps block nonces disjoint from
/// the legacy whole-payload nonces of [`derive_nonce`] even when a
/// transfer id collides.
pub fn derive_block_nonce(transfer_id: u64, block_index: u64) -> [u8; 12] {
    let mut h = Sha256::new();
    h.update(b"devudf-block-nonce-v1");
    h.update(&transfer_id.to_le_bytes());
    h.update(&block_index.to_le_bytes());
    let digest = h.finalize();
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&digest[..12]);
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            derive_key("monetdb", b"salt"),
            derive_key("monetdb", b"salt")
        );
        assert_eq!(derive_nonce(7), derive_nonce(7));
        assert_eq!(derive_block_nonce(7, 3), derive_block_nonce(7, 3));
    }

    #[test]
    fn password_sensitivity() {
        assert_ne!(
            derive_key("monetdb", b"salt"),
            derive_key("monetdc", b"salt")
        );
    }

    #[test]
    fn salt_sensitivity() {
        assert_ne!(
            derive_key("monetdb", b"salt1"),
            derive_key("monetdb", b"salt2")
        );
    }

    #[test]
    fn nonce_uniqueness() {
        assert_ne!(derive_nonce(1), derive_nonce(2));
    }

    #[test]
    fn block_nonces_unique_per_transfer_and_block() {
        assert_ne!(derive_block_nonce(1, 0), derive_block_nonce(1, 1));
        assert_ne!(derive_block_nonce(1, 0), derive_block_nonce(2, 0));
        // Domain separation from the legacy whole-payload nonce.
        assert_ne!(derive_block_nonce(9, 0), derive_nonce(9));
    }

    #[test]
    fn empty_password_still_works() {
        // Degenerate but must not panic; key still depends on salt.
        assert_ne!(derive_key("", b"a"), derive_key("", b"b"));
    }
}
