//! LZ77-family byte compressor.
//!
//! Implements the paper's "method of compressing the data during the
//! transfer" (§2.1). The format is a simple token stream:
//!
//! ```text
//! header  := varint(uncompressed_len)
//! token   := literal | match
//! literal := varint(len << 1)     followed by `len` raw bytes
//! match   := varint(len << 1 | 1) varint(distance)
//! ```
//!
//! Matches are found with a hash-chain matcher over 4-byte prefixes inside a
//! 64 KiB sliding window — the classic LZ77/DEFLATE arrangement, tuned for
//! the columnar, highly repetitive payloads the extract function produces.
//!
//! # Block-friendly entry points
//!
//! The chunked transfer pipeline (`wireproto::transfer`) compresses many
//! independent blocks per payload, so allocating the two match-finder
//! tables per call would dominate small-block cost. [`Scratch`] holds the
//! tables across calls and invalidates them in O(1) with an epoch stamp
//! instead of a memset: each stored position is offset by the scratch's
//! current epoch, and lookups treat any entry at or below the epoch as
//! empty. The compressed bytes are therefore **identical** to what a
//! fresh scratch produces — reuse is invisible on the wire, which is what
//! lets the transfer format stay deterministic across thread counts.
//! [`decompress_into`] is the mirrored entry point: it writes into a
//! caller-provided exact-size buffer so parallel block decode can target
//! disjoint sub-slices of one output allocation.

use crate::varint::{encoded_len, read_u64, write_u64, VarintError};

/// Minimum match length worth encoding (a match token costs ≥ 2 bytes).
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps varints short; longer repeats split).
const MAX_MATCH: usize = 1 << 16;
/// Sliding-window size: matches may reach at most this far back.
const WINDOW: usize = 1 << 16;
/// Number of hash buckets (power of two).
const HASH_BITS: u32 = 15;
/// Max chain links to follow per position (compression effort knob).
const MAX_CHAIN: usize = 32;
/// A match at least this long is "good enough": stop walking the chain.
/// Lifts throughput on highly repetitive data where every chain link
/// would otherwise be compared against an already-near-maximal match.
const NICE_MATCH: usize = 128;

/// Errors returned while decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// A varint inside the stream was malformed.
    Varint(VarintError),
    /// The stream ended before the declared length was produced.
    Truncated,
    /// A match token referenced data before the start of the output.
    BadMatchDistance { distance: usize, produced: usize },
    /// The stream produced more data than the header declared.
    LengthMismatch { declared: usize, produced: usize },
    /// The declared length does not fit the caller-provided output buffer
    /// (only from [`decompress_into`], whose buffer is exact-size).
    OutputSizeMismatch { declared: usize, expected: usize },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Varint(e) => write!(f, "lz: {e}"),
            CompressError::Truncated => write!(f, "lz: truncated stream"),
            CompressError::BadMatchDistance { distance, produced } => write!(
                f,
                "lz: match distance {distance} exceeds produced output {produced}"
            ),
            CompressError::LengthMismatch { declared, produced } => {
                write!(f, "lz: declared length {declared} but produced {produced}")
            }
            CompressError::OutputSizeMismatch { declared, expected } => write!(
                f,
                "lz: stream declares {declared} bytes but output buffer holds {expected}"
            ),
        }
    }
}

impl std::error::Error for CompressError {}

impl From<VarintError> for CompressError {
    fn from(e: VarintError) -> Self {
        CompressError::Varint(e)
    }
}

/// Fibonacci-style multiplicative hash of a 4-byte prefix. One multiply
/// and a shift — measurably cheaper than the byte-at-a-time FNV loop it
/// replaced, with comparable bucket spread on real payloads.
#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Reusable match-finder state for [`compress_with`].
///
/// Holds the hash-chain tables (`head`/`prev`) across calls. Entries are
/// stamped with an epoch: a stored value encodes `epoch + position + 1`,
/// and any value at or below the *current* epoch reads as "empty". Bumping
/// the epoch between inputs therefore invalidates the whole table without
/// touching memory; the tables are only zeroed when the u32 stamp space
/// would overflow (every ~4 GiB of input through one scratch).
pub struct Scratch {
    /// `head[h]`: stamp of the most recent position hashing to `h`.
    head: Vec<u32>,
    /// `prev[i % WINDOW]`: stamp of the previous position in `i`'s chain.
    prev: Vec<u32>,
    /// Stamps ≤ `epoch` are stale (from earlier inputs) and read as empty.
    epoch: u32,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

impl Scratch {
    /// Create a scratch with zeroed tables.
    pub fn new() -> Scratch {
        Scratch {
            head: vec![0u32; 1 << HASH_BITS],
            prev: vec![0u32; WINDOW],
            epoch: 0,
        }
    }

    /// Prepare for an input of `len` bytes: advance the epoch past every
    /// stamp the previous input could have written, falling back to a full
    /// zeroing reset when the stamp space would overflow.
    fn begin(&mut self, len: usize) {
        // Stamps written for this input lie in (epoch, epoch + len].
        let ceiling = u64::from(self.epoch) + len as u64 + 1;
        if ceiling > u64::from(u32::MAX) {
            self.head.iter_mut().for_each(|v| *v = 0);
            self.prev.iter_mut().for_each(|v| *v = 0);
            self.epoch = 0;
        }
    }

    fn finish(&mut self, len: usize) {
        self.epoch += len as u32;
    }
}

/// Compress `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_with(&mut Scratch::new(), input)
}

/// Compress `input` reusing the match-finder tables in `scratch`.
///
/// Output is byte-identical to [`compress`] regardless of what the
/// scratch was previously used for (see [`Scratch`] for why).
pub fn compress_with(scratch: &mut Scratch, input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_u64(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    scratch.begin(input.len());
    let epoch = scratch.epoch;
    let head = &mut scratch.head[..];
    let prev = &mut scratch.prev[..];

    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let len = (to - start).min(MAX_MATCH);
            write_u64(out, (len as u64) << 1);
            out.extend_from_slice(&input[start..start + len]);
            start += len;
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        // Walk the chain looking for the longest match. Stamps at or
        // below `epoch` belong to earlier inputs and terminate the walk,
        // exactly as a zeroed table would.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut stamp = head[h];
        let mut chain = 0usize;
        while stamp > epoch && chain < MAX_CHAIN {
            let cand_pos = (stamp - epoch - 1) as usize;
            if pos - cand_pos > WINDOW {
                break;
            }
            let limit = (input.len() - pos).min(MAX_MATCH);
            let mut len = 0usize;
            while len < limit && input[cand_pos + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = pos - cand_pos;
                if len == limit || len >= NICE_MATCH {
                    break;
                }
            }
            stamp = prev[cand_pos % WINDOW];
            chain += 1;
        }

        // Insert current position into the chain.
        prev[pos % WINDOW] = head[h];
        head[h] = epoch + (pos + 1) as u32;

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, pos);
            write_u64(&mut out, ((best_len as u64) << 1) | 1);
            write_u64(&mut out, best_dist as u64);
            // Index the skipped positions so future matches can refer to them.
            let end = pos + best_len;
            pos += 1;
            while pos < end && pos + MIN_MATCH <= input.len() {
                let h = hash4(&input[pos..]);
                prev[pos % WINDOW] = head[h];
                head[h] = epoch + (pos + 1) as u32;
                pos += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }

    flush_literals(&mut out, literal_start, input.len());
    scratch.finish(input.len());
    out
}

/// Lower bound on the length of any stream [`compress`] can emit for
/// `raw_len` bytes of input: the length-header varint plus at least two
/// bytes per token, where one token covers at most `MAX_MATCH` raw
/// bytes. Framing layers that carry a declared raw length next to a
/// compressed body use this to reject declared lengths no honest stream
/// could reach *before* sizing any allocation from them — the same
/// don't-trust-the-header rule [`decompress`] applies internally.
pub fn min_stream_len(raw_len: usize) -> usize {
    encoded_len(raw_len as u64) + raw_len.div_ceil(MAX_MATCH) * 2
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (declared, cursor) = read_u64(input)?;
    let declared = usize::try_from(declared).map_err(|_| CompressError::Truncated)?;
    // Do not trust the header for the allocation: a hostile or corrupted
    // stream could declare a huge length. Grow as tokens actually produce
    // data; the cap only seeds the fast path for honest streams.
    let mut out = Vec::with_capacity(declared.min(1 << 20));
    decompress_tokens(input, cursor, declared, &mut Sink::Grow(&mut out))?;
    Ok(out)
}

/// Decompress a buffer produced by [`compress`] into an exact-size output
/// slice — `out.len()` must equal the stream's declared length. Lets the
/// parallel block decoder write blocks straight into disjoint sub-slices
/// of the final payload buffer with no per-block allocation.
pub fn decompress_into(input: &[u8], out: &mut [u8]) -> Result<(), CompressError> {
    let (declared, cursor) = read_u64(input)?;
    let declared = usize::try_from(declared).map_err(|_| CompressError::Truncated)?;
    if declared != out.len() {
        return Err(CompressError::OutputSizeMismatch {
            declared,
            expected: out.len(),
        });
    }
    decompress_tokens(input, cursor, declared, &mut Sink::Slice { out, filled: 0 })
}

/// Output target for the shared token-decoding loop: either a growable
/// vector or a pre-sized slice tracked by fill level.
enum Sink<'a> {
    Grow(&'a mut Vec<u8>),
    Slice { out: &'a mut [u8], filled: usize },
}

impl Sink<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Sink::Grow(v) => v.len(),
            Sink::Slice { filled, .. } => *filled,
        }
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        match self {
            Sink::Grow(v) => v.extend_from_slice(bytes),
            Sink::Slice { out, filled } => {
                out[*filled..*filled + bytes.len()].copy_from_slice(bytes);
                *filled += bytes.len();
            }
        }
    }

    /// Copy `len` already-produced bytes starting `distance` back; copies
    /// may overlap (RLE via distance 1), so go byte-at-a-time.
    #[inline]
    fn copy_back(&mut self, distance: usize, len: usize) {
        match self {
            Sink::Grow(v) => {
                let start = v.len() - distance;
                for i in 0..len {
                    let b = v[start + i];
                    v.push(b);
                }
            }
            Sink::Slice { out, filled } => {
                let start = *filled - distance;
                for i in 0..len {
                    out[*filled + i] = out[start + i];
                }
                *filled += len;
            }
        }
    }
}

fn decompress_tokens(
    input: &[u8],
    mut cursor: usize,
    declared: usize,
    sink: &mut Sink<'_>,
) -> Result<(), CompressError> {
    while sink.len() < declared {
        if cursor >= input.len() {
            return Err(CompressError::Truncated);
        }
        let (token, used) = read_u64(&input[cursor..])?;
        cursor += used;
        let len = usize::try_from(token >> 1).map_err(|_| CompressError::Truncated)?;
        if sink.len() + len > declared {
            return Err(CompressError::LengthMismatch {
                declared,
                produced: sink.len() + len,
            });
        }
        if token & 1 == 0 {
            // Literal run.
            if len > input.len() - cursor {
                return Err(CompressError::Truncated);
            }
            sink.put(&input[cursor..cursor + len]);
            cursor += len;
        } else {
            let (distance, used) = read_u64(&input[cursor..])?;
            cursor += used;
            let distance = distance as usize;
            if distance == 0 || distance > sink.len() {
                return Err(CompressError::BadMatchDistance {
                    distance,
                    produced: sink.len(),
                });
            }
            sink.copy_back(distance, len);
        }
    }

    if sink.len() != declared {
        return Err(CompressError::LengthMismatch {
            declared,
            produced: sink.len(),
        });
    }
    Ok(())
}

/// Compression ratio achieved on `input` (compressed / original, lower is
/// better). Returns 1.0 for empty input.
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
        // The exact-size entry point must agree byte for byte.
        let mut buf = vec![0u8; data.len()];
        decompress_into(&c, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
        assert_eq!(compress(b"").len(), 1);
    }

    #[test]
    fn short_inputs() {
        for len in 0..20 {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            round_trip(&data);
        }
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = b"abcdabcdabcdabcdabcdabcdabcdabcd".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 10,
            "got {} of {}",
            c.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn min_stream_len_is_a_true_lower_bound() {
        // The most compressible inputs the encoder can meet must still
        // respect the bound, including match-boundary sizes.
        for len in [
            0usize,
            1,
            3,
            MIN_MATCH,
            1000,
            MAX_MATCH - 1,
            MAX_MATCH,
            MAX_MATCH + 1,
            4 * MAX_MATCH + 17,
        ] {
            let data = vec![0u8; len];
            assert!(
                compress(&data).len() >= min_stream_len(len),
                "len {len}: compressed {} < bound {}",
                compress(&data).len(),
                min_stream_len(len)
            );
        }
    }

    #[test]
    fn rle_style_overlap() {
        let data = vec![42u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 200, "rle should collapse, got {}", c.len());
        round_trip(&data);
    }

    #[test]
    fn csv_like_payload() {
        let mut data = Vec::new();
        for i in 0..5000 {
            data.extend_from_slice(format!("{},{},row-{}\n", i, i * 2, i % 7).as_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len());
        round_trip(&data);
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        // Deterministic xorshift so the test is stable.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        round_trip(&data);
        // Expansion is bounded: literal token overhead only.
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 1000 + 64);
    }

    #[test]
    fn long_range_matches_beyond_window_still_correct() {
        // Repeat a block farther apart than the window; must still round-trip
        // (just without cross-window matches).
        let block: Vec<u8> = (0..=255u16).map(|i| (i % 256) as u8).collect();
        let mut data = block.repeat(10);
        data.extend(vec![0u8; WINDOW + 100]);
        data.extend(block.repeat(10));
        round_trip(&data);
    }

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh() {
        // The wire format must not depend on what a scratch compressed
        // before (determinism across pooled workers depends on this).
        let inputs: Vec<Vec<u8>> = vec![
            b"abcdabcdabcdabcd".repeat(500),
            vec![7u8; 100_000],
            (0..60_000u32).flat_map(|i| i.to_le_bytes()).collect(),
            Vec::new(),
            b"x".to_vec(),
            b"the quick brown fox jumps over the lazy dog".repeat(123),
        ];
        let mut scratch = Scratch::new();
        for input in &inputs {
            let reused = compress_with(&mut scratch, input);
            let fresh = compress(input);
            assert_eq!(reused, fresh, "scratch reuse changed output bytes");
            assert_eq!(decompress(&reused).unwrap(), *input);
        }
        // A second pass over the same inputs with the dirty scratch too.
        for input in &inputs {
            assert_eq!(compress_with(&mut scratch, input), compress(input));
        }
    }

    #[test]
    fn scratch_epoch_overflow_resets_cleanly() {
        let mut scratch = Scratch::new();
        // Force the epoch near the u32 ceiling, then compress: begin()
        // must zero-reset instead of wrapping stamps around.
        scratch.epoch = u32::MAX - 10;
        let data = b"wrap wrap wrap wrap wrap".repeat(100);
        assert_eq!(compress_with(&mut scratch, &data), compress(&data));
        assert!(scratch.epoch < u32::MAX - 10, "epoch should have reset");
    }

    #[test]
    fn decompress_into_checks_buffer_size() {
        let c = compress(b"hello world hello world");
        let mut small = vec![0u8; 5];
        assert!(matches!(
            decompress_into(&c, &mut small),
            Err(CompressError::OutputSizeMismatch { .. })
        ));
        let mut big = vec![0u8; 1000];
        assert!(matches!(
            decompress_into(&c, &mut big),
            Err(CompressError::OutputSizeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncated_stream() {
        let data = b"hello hello hello hello hello".repeat(10);
        let mut c = compress(&data);
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_err());
        let mut buf = vec![0u8; data.len()];
        assert!(decompress_into(&c, &mut buf).is_err());
    }

    #[test]
    fn rejects_bad_distance() {
        let mut stream = Vec::new();
        write_u64(&mut stream, 10); // declared length
        write_u64(&mut stream, (4 << 1) | 1); // match len 4
        write_u64(&mut stream, 5); // distance 5 with nothing produced
        assert!(matches!(
            decompress(&stream),
            Err(CompressError::BadMatchDistance { .. })
        ));
        let mut buf = vec![0u8; 10];
        assert!(matches!(
            decompress_into(&stream, &mut buf),
            Err(CompressError::BadMatchDistance { .. })
        ));
    }

    #[test]
    fn rejects_garbage_header() {
        assert!(decompress(&[0xff; 11]).is_err());
    }

    #[test]
    fn ratio_reports_sensible_values() {
        assert!(ratio(&vec![0u8; 10_000]) < 0.01);
        assert!((ratio(b"") - 1.0).abs() < f64::EPSILON);
    }
}
