//! LZ77-family byte compressor.
//!
//! Implements the paper's "method of compressing the data during the
//! transfer" (§2.1). The format is a simple token stream:
//!
//! ```text
//! header  := varint(uncompressed_len)
//! token   := literal | match
//! literal := varint(len << 1)     followed by `len` raw bytes
//! match   := varint(len << 1 | 1) varint(distance)
//! ```
//!
//! Matches are found with a hash-chain matcher over 4-byte prefixes inside a
//! 64 KiB sliding window — the classic LZ77/DEFLATE arrangement, tuned for
//! the columnar, highly repetitive payloads the extract function produces.

use crate::fnv::fnv1a_32;
use crate::varint::{read_u64, write_u64, VarintError};

/// Minimum match length worth encoding (a match token costs ≥ 2 bytes).
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps varints short; longer repeats split).
const MAX_MATCH: usize = 1 << 16;
/// Sliding-window size: matches may reach at most this far back.
const WINDOW: usize = 1 << 16;
/// Number of hash buckets (power of two).
const HASH_BITS: u32 = 15;
/// Max chain links to follow per position (compression effort knob).
const MAX_CHAIN: usize = 32;

/// Errors returned while decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// A varint inside the stream was malformed.
    Varint(VarintError),
    /// The stream ended before the declared length was produced.
    Truncated,
    /// A match token referenced data before the start of the output.
    BadMatchDistance { distance: usize, produced: usize },
    /// The stream produced more data than the header declared.
    LengthMismatch { declared: usize, produced: usize },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Varint(e) => write!(f, "lz: {e}"),
            CompressError::Truncated => write!(f, "lz: truncated stream"),
            CompressError::BadMatchDistance { distance, produced } => write!(
                f,
                "lz: match distance {distance} exceeds produced output {produced}"
            ),
            CompressError::LengthMismatch { declared, produced } => {
                write!(f, "lz: declared length {declared} but produced {produced}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

impl From<VarintError> for CompressError {
    fn from(e: VarintError) -> Self {
        CompressError::Varint(e)
    }
}

#[inline]
fn hash4(data: &[u8]) -> usize {
    (fnv1a_32(&data[..4]) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_u64(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    // head[h] = most recent position with hash h (+1; 0 = empty).
    let mut head = vec![0u32; 1 << HASH_BITS];
    // prev[i % WINDOW] = previous position with the same hash as i (+1).
    let mut prev = vec![0u32; WINDOW];

    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let len = (to - start).min(MAX_MATCH);
            write_u64(out, (len as u64) << 1);
            out.extend_from_slice(&input[start..start + len]);
            start += len;
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        // Walk the chain looking for the longest match.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut candidate = head[h] as usize;
        let mut chain = 0usize;
        while candidate != 0 && chain < MAX_CHAIN {
            let cand_pos = candidate - 1;
            if pos - cand_pos > WINDOW {
                break;
            }
            let limit = (input.len() - pos).min(MAX_MATCH);
            let mut len = 0usize;
            while len < limit && input[cand_pos + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = pos - cand_pos;
                if len == limit {
                    break;
                }
            }
            candidate = prev[cand_pos % WINDOW] as usize;
            chain += 1;
        }

        // Insert current position into the chain.
        prev[pos % WINDOW] = head[h];
        head[h] = (pos + 1) as u32;

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, pos);
            write_u64(&mut out, ((best_len as u64) << 1) | 1);
            write_u64(&mut out, best_dist as u64);
            // Index the skipped positions so future matches can refer to them.
            let end = pos + best_len;
            pos += 1;
            while pos < end && pos + MIN_MATCH <= input.len() {
                let h = hash4(&input[pos..]);
                prev[pos % WINDOW] = head[h];
                head[h] = (pos + 1) as u32;
                pos += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }

    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (declared, mut cursor) = read_u64(input)?;
    let declared = usize::try_from(declared).map_err(|_| CompressError::Truncated)?;
    // Do not trust the header for the allocation: a hostile or corrupted
    // stream could declare a huge length. Grow as tokens actually produce
    // data; the cap only seeds the fast path for honest streams.
    let mut out = Vec::with_capacity(declared.min(1 << 20));

    while out.len() < declared {
        if cursor >= input.len() {
            return Err(CompressError::Truncated);
        }
        let (token, used) = read_u64(&input[cursor..])?;
        cursor += used;
        let len = usize::try_from(token >> 1).map_err(|_| CompressError::Truncated)?;
        if out.len() + len > declared {
            return Err(CompressError::LengthMismatch {
                declared,
                produced: out.len() + len,
            });
        }
        if token & 1 == 0 {
            // Literal run.
            if len > input.len() - cursor {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&input[cursor..cursor + len]);
            cursor += len;
        } else {
            let (distance, used) = read_u64(&input[cursor..])?;
            cursor += used;
            let distance = distance as usize;
            if distance == 0 || distance > out.len() {
                return Err(CompressError::BadMatchDistance {
                    distance,
                    produced: out.len(),
                });
            }
            // Overlapping copies are legal (e.g. RLE via distance 1).
            let start = out.len() - distance;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }

    if out.len() != declared {
        return Err(CompressError::LengthMismatch {
            declared,
            produced: out.len(),
        });
    }
    Ok(out)
}

/// Compression ratio achieved on `input` (compressed / original, lower is
/// better). Returns 1.0 for empty input.
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
        assert_eq!(compress(b"").len(), 1);
    }

    #[test]
    fn short_inputs() {
        for len in 0..20 {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            round_trip(&data);
        }
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = b"abcdabcdabcdabcdabcdabcdabcdabcd".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 10,
            "got {} of {}",
            c.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn rle_style_overlap() {
        let data = vec![42u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 200, "rle should collapse, got {}", c.len());
        round_trip(&data);
    }

    #[test]
    fn csv_like_payload() {
        let mut data = Vec::new();
        for i in 0..5000 {
            data.extend_from_slice(format!("{},{},row-{}\n", i, i * 2, i % 7).as_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len());
        round_trip(&data);
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        // Deterministic xorshift so the test is stable.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        round_trip(&data);
        // Expansion is bounded: literal token overhead only.
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 1000 + 64);
    }

    #[test]
    fn long_range_matches_beyond_window_still_correct() {
        // Repeat a block farther apart than the window; must still round-trip
        // (just without cross-window matches).
        let block: Vec<u8> = (0..=255u16).map(|i| (i % 256) as u8).collect();
        let mut data = block.repeat(10);
        data.extend(vec![0u8; WINDOW + 100]);
        data.extend(block.repeat(10));
        round_trip(&data);
    }

    #[test]
    fn rejects_truncated_stream() {
        let data = b"hello hello hello hello hello".repeat(10);
        let mut c = compress(&data);
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn rejects_bad_distance() {
        let mut stream = Vec::new();
        write_u64(&mut stream, 10); // declared length
        write_u64(&mut stream, (4 << 1) | 1); // match len 4
        write_u64(&mut stream, 5); // distance 5 with nothing produced
        assert!(matches!(
            decompress(&stream),
            Err(CompressError::BadMatchDistance { .. })
        ));
    }

    #[test]
    fn rejects_garbage_header() {
        assert!(decompress(&[0xff; 11]).is_err());
    }

    #[test]
    fn ratio_reports_sensible_values() {
        assert!(ratio(&vec![0u8; 10_000]) < 0.01);
        assert!((ratio(b"") - 1.0).abs() < f64::EPSILON);
    }
}
