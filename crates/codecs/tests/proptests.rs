//! Property-based tests for the codec primitives (devharness::prop).

use codecs::{chacha20, lz, varint};
use devharness::prop::{self, Config, Strategy};
use devharness::prop_assert_eq;

fn cfg() -> Config {
    Config::cases(256)
}

#[test]
fn varint_round_trip() {
    prop::check(cfg(), prop::any_u64(), |&v| {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
        Ok(())
    });
}

#[test]
fn lz_round_trip() {
    prop::check(cfg(), prop::vec_of(prop::any_u8(), 0..4096), |data| {
        let c = lz::compress(data);
        let d = lz::decompress(&c).unwrap();
        prop_assert_eq!(&d, data);
        Ok(())
    });
}

#[test]
fn lz_round_trip_repetitive() {
    let strategy = (prop::vec_of(prop::any_u8(), 1..32), prop::usize_in(1..512));
    prop::check(cfg(), strategy, |(pattern, repeats)| {
        let data: Vec<u8> = pattern
            .iter()
            .cycle()
            .take(pattern.len() * repeats)
            .copied()
            .collect();
        let c = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&c).unwrap(), data);
        Ok(())
    });
}

#[test]
fn chacha_round_trip() {
    let strategy = (
        prop::u8_array::<32>(),
        prop::u8_array::<12>(),
        prop::vec_of(prop::any_u8(), 0..2048),
    );
    prop::check(cfg(), strategy, |(key, nonce, data)| {
        let ct = chacha20::xor_stream(key, nonce, 1, data);
        let pt = chacha20::xor_stream(key, nonce, 1, &ct);
        prop_assert_eq!(&pt, data);
        Ok(())
    });
}

#[test]
fn lz_decompress_never_panics_on_garbage() {
    prop::check(cfg(), prop::vec_of(prop::any_u8(), 0..512), |data| {
        // Must return Ok or Err, never panic or loop forever.
        let _ = lz::decompress(data);
        Ok(())
    });
}

#[test]
fn sha256_incremental_equals_oneshot() {
    let strategy = (
        prop::vec_of(prop::any_u8(), 0..2048),
        prop::usize_in(0..2048),
    );
    prop::check(cfg(), strategy, |(data, split)| {
        let split = (*split).min(data.len());
        let mut h = codecs::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), codecs::sha256(data));
        Ok(())
    });
}

// The JSON codec is new in this crate; give it the same treatment.
#[test]
fn json_value_round_trips_through_text() {
    use codecs::json::{parse, Value};

    fn value_strategy() -> impl Strategy<Value = Value> {
        // Random JSON trees, depth-limited; no shrinking (from_fn), which
        // is fine — failures print the whole (small) tree.
        prop::from_fn(|rng| gen_value(rng, 3))
    }

    fn gen_value(rng: &mut devharness::Rng, depth: u32) -> Value {
        let top = if depth == 0 { 5 } else { 7 };
        match rng.u64_below(top) {
            0 => Value::Null,
            1 => Value::Bool(rng.bool()),
            2 => Value::Int(rng.i64_in(i64::MIN, i64::MAX)),
            3 => Value::Float((rng.next_u64() as f64 / 1e4).trunc() / 1e4),
            4 => {
                let len = rng.usize_below(12);
                Value::Str(
                    (0..len)
                        .map(|_| {
                            *rng.choose(&['a', 'é', '"', '\\', '\n', '☃', '\u{1}'])
                                .unwrap()
                        })
                        .collect(),
                )
            }
            5 => Value::Array(
                (0..rng.usize_below(5))
                    .map(|_| gen_value(rng, depth - 1))
                    .collect(),
            ),
            _ => Value::Object(
                (0..rng.usize_below(5))
                    .map(|i| (format!("k{i}"), gen_value(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    prop::check(cfg(), value_strategy(), |v| {
        prop_assert_eq!(&parse(&v.to_string_compact()).unwrap(), v);
        prop_assert_eq!(&parse(&v.to_string_pretty()).unwrap(), v);
        Ok(())
    });
}

#[test]
fn json_parse_never_panics_on_garbage() {
    prop::check(
        cfg(),
        prop::string_of("{}[]\",:truefalsnu0123456789.eE+- \\\n", 0..64),
        |text| {
            let _ = codecs::json::parse(text);
            Ok(())
        },
    );
}
