//! Property-based tests for the codec primitives.

use codecs::{chacha20, lz, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn varint_round_trip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn lz_round_trip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = lz::compress(&data);
        let d = lz::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn lz_round_trip_repetitive(
        pattern in proptest::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..512,
    ) {
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).copied().collect();
        let c = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&c).unwrap(), data);
    }

    #[test]
    fn chacha_round_trip(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let ct = chacha20::xor_stream(&key, &nonce, 1, &data);
        let pt = chacha20::xor_stream(&key, &nonce, 1, &ct);
        prop_assert_eq!(pt, data);
    }

    #[test]
    fn lz_decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must return Ok or Err, never panic or loop forever.
        let _ = lz::decompress(&data);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        let mut h = codecs::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), codecs::sha256(&data));
    }
}
