//! Property tests for the wire protocol.

use proptest::prelude::*;
use wireproto::message::{Message, WireResult, WireTable, WireValue};
use wireproto::TransferOptions;

fn wire_value_strategy() -> impl Strategy<Value = WireValue> {
    prop_oneof![
        Just(WireValue::Null),
        any::<i64>().prop_map(WireValue::Int),
        any::<f64>()
            .prop_filter("NaN != NaN breaks equality", |f| !f.is_nan())
            .prop_map(WireValue::Double),
        "[a-zA-Z0-9 _%-]{0,24}".prop_map(WireValue::Str),
        any::<bool>().prop_map(WireValue::Bool),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(WireValue::Blob),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&data);
    }

    #[test]
    fn messages_round_trip(
        sql in "[a-zA-Z0-9 '(),*=]{0,80}",
        compress in any::<bool>(),
        encrypt in any::<bool>(),
        sample in proptest::option::of(0usize..100_000),
        id in any::<u64>(),
    ) {
        for msg in [
            Message::Query { sql: sql.clone() },
            Message::ExtractInputs {
                query: sql.clone(),
                udf: "f".into(),
                options: TransferOptions { compress, encrypt, sample },
                transfer_id: id,
            },
        ] {
            let decoded = Message::decode(&msg.encode()).unwrap();
            prop_assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn tables_round_trip(
        cells in proptest::collection::vec(
            proptest::collection::vec(wire_value_strategy(), 3),
            0..20,
        ),
    ) {
        let table = WireTable {
            name: "r".into(),
            columns: vec![
                ("a".into(), "INTEGER".into()),
                ("b".into(), "DOUBLE".into()),
                ("c".into(), "STRING".into()),
            ],
            rows: cells,
        };
        let msg = Message::ResultSet {
            result: WireResult::Table(table),
            udf_stdout: String::new(),
        };
        let decoded = Message::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_frames_error_not_panic(sql in "[a-z ]{1,60}", cut_fraction in 0.0f64..1.0) {
        let msg = Message::Query { sql };
        let mut encoded = msg.encode();
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        encoded.truncate(cut);
        if cut < msg.encode().len() {
            prop_assert!(Message::decode(&encoded).is_err());
        }
    }
}
