//! Property tests for the wire protocol (devharness::prop).

use devharness::prop::{self, BoxedStrategy, Config, Strategy};
use devharness::{prop_assert, prop_assert_eq};
use wireproto::message::{Message, WireResult, WireTable, WireValue};
use wireproto::TransferOptions;

fn cfg() -> Config {
    Config::cases(96)
}

const STR_CHARS: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _%-";

fn wire_value_strategy() -> BoxedStrategy<WireValue> {
    prop::one_of(vec![
        prop::just(WireValue::Null).boxed(),
        prop::any_i64().map(|v| WireValue::Int(*v)).boxed(),
        prop::any_f64()
            .filter("NaN != NaN breaks equality", |f| !f.is_nan())
            .map(|f| WireValue::Double(*f))
            .boxed(),
        prop::string_of(STR_CHARS, 0..24)
            .map(|s| WireValue::Str(s.clone()))
            .boxed(),
        prop::any_bool().map(|b| WireValue::Bool(*b)).boxed(),
        prop::vec_of(prop::any_u8(), 1..32)
            .map(|v| WireValue::Blob(v.clone()))
            .boxed(),
    ])
    .boxed()
}

#[test]
fn decode_never_panics_on_garbage() {
    prop::check(cfg(), prop::vec_of(prop::any_u8(), 0..512), |data| {
        let _ = Message::decode(data);
        Ok(())
    });
}

#[test]
fn messages_round_trip() {
    let strategy = (
        prop::string_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '(),*=",
            0..80,
        ),
        prop::any_bool(),
        prop::any_bool(),
        prop::option_of(prop::usize_in(0..100_000)),
        (prop::any_u64(), prop::usize_in(1..4 << 20)),
    );
    prop::check(
        cfg(),
        strategy,
        |(sql, compress, encrypt, sample, (id, bs))| {
            for msg in [
                Message::Query { sql: sql.clone() },
                Message::ExtractInputs {
                    query: sql.clone(),
                    udf: "f".into(),
                    options: TransferOptions {
                        compress: *compress,
                        encrypt: *encrypt,
                        sample: *sample,
                        ..Default::default()
                    },
                    transfer_id: *id,
                },
                Message::ExtractInputs {
                    query: sql.clone(),
                    udf: "f".into(),
                    options: TransferOptions {
                        compress: *compress,
                        encrypt: *encrypt,
                        sample: *sample,
                        block_size: *bs,
                    },
                    transfer_id: *id,
                },
            ] {
                let decoded = Message::decode(&msg.encode()).unwrap();
                prop_assert_eq!(decoded, msg);
            }
            Ok(())
        },
    );
}

#[test]
fn tables_round_trip() {
    let rows = prop::vec_of(prop::vec_of(wire_value_strategy(), 3..4), 0..20);
    prop::check(cfg(), rows, |cells| {
        let table = WireTable {
            name: "r".into(),
            columns: vec![
                ("a".into(), "INTEGER".into()),
                ("b".into(), "DOUBLE".into()),
                ("c".into(), "STRING".into()),
            ],
            rows: cells.clone(),
        };
        let msg = Message::ResultSet {
            result: WireResult::Table(table),
            udf_stdout: String::new(),
        };
        let decoded = Message::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
        Ok(())
    });
}

#[test]
fn truncated_frames_error_not_panic() {
    let strategy = (
        prop::string_of("abcdefghijklmnopqrstuvwxyz ", 1..60),
        prop::usize_in(0..1000),
    );
    prop::check(cfg(), strategy, |(sql, cut_permille)| {
        let msg = Message::Query { sql: sql.clone() };
        let mut encoded = msg.encode();
        let cut = encoded.len() * cut_permille / 1000;
        encoded.truncate(cut);
        if cut < msg.encode().len() {
            prop_assert!(Message::decode(&encoded).is_err());
        }
        Ok(())
    });
}
