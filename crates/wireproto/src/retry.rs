//! Retry policy: bounded attempts, exponential backoff with deterministic
//! jitter, and an overall deadline.
//!
//! The client applies this policy to **idempotent** operations only
//! (`ping`, read-only `query`, `list_functions`, `get_function`,
//! `extract_inputs`): on a transient error ([`WireError::is_transient`])
//! it reconnects, re-authenticates and retries until the policy is
//! exhausted. Non-idempotent operations are never replayed — a transient
//! failure surfaces immediately as
//! [`WireError::RetriesExhausted`](crate::WireError::RetriesExhausted)
//! with `attempts == 1`, telling the caller the statement may or may not
//! have executed.
//!
//! [`WireError::is_transient`]: crate::WireError::is_transient

use std::time::Duration;

use devharness::Rng;

/// When and how often to retry a failed idempotent operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = retries disabled).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub initial_backoff: Duration,
    /// Hard cap on a single backoff sleep — no wait ever exceeds this.
    pub max_backoff: Duration,
    /// Overall budget across all attempts and backoffs; once spent, the
    /// operation fails even if attempts remain. `None` = attempts only.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// Retries disabled: one attempt, errors surface raw. This is the
    /// default for bare [`Client`](crate::Client) connections, preserving
    /// fail-fast semantics for callers that manage recovery themselves.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: None,
        }
    }

    /// A production-shaped default: 3 attempts, 10 ms → 200 ms exponential
    /// backoff, 2 s overall deadline.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            deadline: Some(Duration::from_secs(2)),
        }
    }

    /// Whether retries are enabled at all.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `failed_attempts` (1-based count of
    /// failures so far): exponential doubling from `initial_backoff`,
    /// capped at `max_backoff`, scaled by equal-jitter in `[0.5, 1.0)` so
    /// synchronized clients fan out. Deterministic given the caller's
    /// seeded [`Rng`].
    pub fn backoff(&self, failed_attempts: u32, rng: &mut Rng) -> Duration {
        if self.initial_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = failed_attempts.saturating_sub(1).min(20);
        let raw = self
            .initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff.max(self.initial_backoff));
        raw.mul_f64(0.5 + 0.5 * rng.f64_unit())
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            deadline: None,
        };
        let mut rng = Rng::new(1);
        for (attempt, cap_ms) in [(1u32, 10u64), (2, 20), (3, 40), (4, 80), (5, 80), (20, 80)] {
            let b = p.backoff(attempt, &mut rng);
            let cap = Duration::from_millis(cap_ms);
            assert!(b <= cap, "attempt {attempt}: {b:?} > {cap:?}");
            assert!(b >= cap / 2, "attempt {attempt}: {b:?} < {:?}", cap / 2);
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::standard();
        let a = p.backoff(2, &mut Rng::new(7));
        let b = p.backoff(2, &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn none_policy_is_disabled_and_sleepless() {
        let p = RetryPolicy::none();
        assert!(!p.enabled());
        assert_eq!(p.backoff(5, &mut Rng::new(0)), Duration::ZERO);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            deadline: None,
        };
        let b = p.backoff(u32::MAX, &mut Rng::new(3));
        assert!(b <= Duration::from_millis(50));
    }
}
