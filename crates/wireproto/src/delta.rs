//! Client-side content-addressed block cache for delta extracts.
//!
//! The iterative edit→extract→debug loop (paper §2.2) re-fetches the same
//! UDF inputs over and over; DESIGN §12 makes the repeated case cheap.
//! The client keeps a small MRU store keyed by the **extract
//! fingerprint** — a hash of `(query, udf, options)` — holding, per
//! entry, the dependency epochs the payload was built against, the
//! SHA-256 digest of every plaintext pickle block, and the raw blocks
//! themselves. On the next extract the client sends those epochs and
//! digests in an `ExtractDelta` request; the server answers
//! `NotModified` (epochs still match — zero payload bytes), or ships
//! only the blocks whose digest the client does not hold.
//!
//! Sampled extracts bypass the cache entirely: the server draws a fresh
//! sample per transfer id, so two sampled payloads are never comparable.
//!
//! # Examples
//!
//! ```
//! use wireproto::delta::{fingerprint, BlockCache, CacheEntry};
//! use wireproto::TransferOptions;
//!
//! let mut cache = BlockCache::new(2);
//! let opts = TransferOptions::compressed();
//! let fp = fingerprint("SELECT f(i) FROM t", "f", &opts);
//!
//! // A fresh payload becomes a cache entry: blocks + their digests.
//! let payload = vec![7u8; 10_000];
//! let entry = CacheEntry::from_raw(&payload, 4096, vec![("t".into(), 3)]);
//! assert_eq!(entry.digests.len(), 3); // ceil(10_000 / 4096)
//! cache.insert(fp, entry);
//!
//! // The entry round-trips and reassembles to the original bytes.
//! let entry = cache.get(fp).unwrap();
//! assert_eq!(entry.reassemble(), payload);
//!
//! // A different query fingerprints to a different slot.
//! assert_ne!(fp, fingerprint("SELECT f(j) FROM u", "f", &opts));
//! ```

use std::collections::HashMap;

use crate::transfer::TransferOptions;

/// One cached extract: everything needed to claim blocks in an
/// `ExtractDelta` request and to rebuild the payload afterwards.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// `(table name, epoch)` pairs the payload was built from. Empty when
    /// a dependency was volatile — the server then never answers
    /// `NotModified`, but block-level reuse still applies.
    pub epochs: Vec<(String, u64)>,
    /// SHA-256 digest of each raw block, in payload order.
    pub digests: Vec<[u8; 32]>,
    /// The raw plaintext pickle blocks; `blocks[i]` hashes to
    /// `digests[i]`.
    pub blocks: Vec<Vec<u8>>,
    /// Total payload length (the sum of the block lengths).
    pub raw_len: usize,
}

impl CacheEntry {
    /// Build an entry by chunking a raw payload at `block_size` and
    /// hashing each block.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn from_raw(raw: &[u8], block_size: usize, epochs: Vec<(String, u64)>) -> CacheEntry {
        assert!(block_size > 0, "block_size must be non-zero");
        CacheEntry {
            epochs,
            digests: codecs::sha256::block_digests(raw, block_size),
            blocks: raw.chunks(block_size).map(<[u8]>::to_vec).collect(),
            raw_len: raw.len(),
        }
    }

    /// Digest → block lookup for [`crate::transfer::reconstruct_delta`].
    pub fn digest_map(&self) -> HashMap<[u8; 32], &[u8]> {
        self.digests
            .iter()
            .copied()
            .zip(self.blocks.iter().map(Vec::as_slice))
            .collect()
    }

    /// Concatenate the blocks back into the full raw payload.
    pub fn reassemble(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.raw_len);
        for block in &self.blocks {
            out.extend_from_slice(block);
        }
        out
    }
}

/// Small most-recently-used store of [`CacheEntry`]s, keyed by the
/// extract fingerprint. Same discipline as the process-wide KDF cache:
/// a plain vector ordered by recency, capped at a handful of entries —
/// a debug session iterates on one or two queries, not hundreds.
#[derive(Debug)]
pub struct BlockCache {
    entries: Vec<(u64, CacheEntry)>,
    cap: usize,
}

impl BlockCache {
    /// A cache holding at most `cap` entries (at least one).
    pub fn new(cap: usize) -> BlockCache {
        BlockCache {
            entries: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Look up an entry, marking it most-recently used.
    pub fn get(&mut self, fingerprint: u64) -> Option<&CacheEntry> {
        let i = self.entries.iter().position(|(fp, _)| *fp == fingerprint)?;
        let hit = self.entries.remove(i);
        self.entries.insert(0, hit);
        Some(&self.entries[0].1)
    }

    /// Insert (or replace) an entry, evicting the least-recently used
    /// when over capacity.
    pub fn insert(&mut self, fingerprint: u64, entry: CacheEntry) {
        self.entries.retain(|(fp, _)| *fp != fingerprint);
        self.entries.insert(0, (fingerprint, entry));
        self.entries.truncate(self.cap);
    }

    /// Number of cached extracts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Fingerprint of an extract request: FNV-1a over the query, the UDF
/// name, and every option that changes the payload bytes. Sampling is
/// deliberately excluded — sampled extracts never reach the cache.
pub fn fingerprint(query: &str, udf: &str, options: &TransferOptions) -> u64 {
    let mut canon = Vec::with_capacity(query.len() + udf.len() + 16);
    canon.extend_from_slice(query.as_bytes());
    canon.push(0);
    canon.extend_from_slice(udf.as_bytes());
    canon.push(0);
    canon.push(options.compress as u8);
    canon.push(options.encrypt as u8);
    canon.extend_from_slice(&(options.effective_block_size() as u64).to_le_bytes());
    codecs::fnv1a_64(&canon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_from_raw_chunks_hashes_and_reassembles() {
        // Non-periodic content so all three blocks are distinct.
        let raw: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        let entry = CacheEntry::from_raw(&raw, 4096, vec![("t".into(), 1)]);
        assert_eq!(entry.blocks.len(), 3);
        assert_eq!(entry.digests.len(), 3);
        assert_eq!(entry.raw_len, raw.len());
        assert_eq!(entry.blocks[2].len(), 10_000 - 2 * 4096);
        for (block, digest) in entry.blocks.iter().zip(&entry.digests) {
            assert_eq!(codecs::sha256(block), *digest);
        }
        assert_eq!(entry.reassemble(), raw);
        assert_eq!(entry.digest_map().len(), 3);
        assert_eq!(entry.digest_map()[&entry.digests[1]], &raw[4096..8192]);
    }

    #[test]
    fn cache_is_mru_with_eviction() {
        let mut cache = BlockCache::new(2);
        let entry = |n: u8| CacheEntry::from_raw(&[n; 100], 64, vec![]);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        // Touch 1 so 2 becomes the eviction victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, entry(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "LRU entry should have been evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        // Reinsert under an existing key replaces, not duplicates.
        cache.insert(1, entry(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1).unwrap().blocks[0][0], 9);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn fingerprint_separates_queries_udfs_and_options() {
        let base = fingerprint("SELECT f(i) FROM t", "f", &TransferOptions::plain());
        assert_eq!(
            base,
            fingerprint("SELECT f(i) FROM t", "f", &TransferOptions::plain())
        );
        assert_ne!(
            base,
            fingerprint("SELECT f(j) FROM t", "f", &TransferOptions::plain())
        );
        assert_ne!(
            base,
            fingerprint("SELECT f(i) FROM t", "g", &TransferOptions::plain())
        );
        assert_ne!(
            base,
            fingerprint("SELECT f(i) FROM t", "f", &TransferOptions::compressed())
        );
        assert_ne!(
            base,
            fingerprint(
                "SELECT f(i) FROM t",
                "f",
                &TransferOptions::plain().with_block_size(1024)
            )
        );
        // The query/udf boundary is framed: ("ab","c") ≠ ("a","bc").
        assert_ne!(
            fingerprint("ab", "c", &TransferOptions::plain()),
            fingerprint("a", "bc", &TransferOptions::plain())
        );
        // Sampling does not enter the fingerprint (sampled extracts
        // bypass the cache before fingerprinting).
        assert_eq!(
            base,
            fingerprint("SELECT f(i) FROM t", "f", &TransferOptions::sampled(10))
        );
    }
}
