//! `wireproto` — the client/server protocol of the devUDF reproduction.
//!
//! Stands in for the JDBC/MAPI connection the paper's plugin uses (§2.2):
//! a length-framed binary protocol carrying queries, result tables, UDF
//! management calls and — the interesting part — **input-data extraction**
//! with the paper's three transfer options (§2.1):
//!
//! * **compression** ([`codecs::lz`]) — "leading to faster transfer times",
//! * **encryption** ([`codecs::chacha20`]) keyed on the database user's
//!   password, so sensitive data can leave the server safely,
//! * **uniform random sampling** — debug on a subset "to alleviate the data
//!   transfer overhead".
//!
//! Repeated extracts — the paper's iterative debug loop — skip unchanged
//! data entirely: a content-addressed block cache ([`delta`]) plus
//! per-table epochs power an `ExtractDelta` round-trip that answers
//! `NotModified` or ships only changed blocks, degrading transparently to
//! a full extract against peers that predate the feature (DESIGN §12).
//!
//! # Architecture
//!
//! The engine ([`monetlite::Engine`]) is deliberately single-threaded; the
//! [`server::Server`] owns it on a dedicated thread and serializes all
//! sessions through a request channel. Clients talk over an in-process
//! channel transport (tests, benchmarks) or TCP ([`transport`]).
//!
//! # Robustness
//!
//! Every blocking wait on the wire is bounded: TCP transports carry
//! read/write deadlines, the server enforces a per-session mid-frame
//! deadline, and frames are checksummed end-to-end. On top of that the
//! client applies a [`RetryPolicy`] ([`retry`]) — reconnect, reauth,
//! exponential backoff with deterministic jitter — to idempotent calls,
//! and the whole failure surface is testable without a real flaky
//! network via the seeded [`FaultInjectingTransport`] ([`fault`]).
//!
//! ```
//! use wireproto::{server::Server, client::Client, ServerConfig};
//!
//! let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
//!     db.execute("CREATE TABLE t (i INTEGER)").unwrap();
//!     db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
//! });
//! let mut client = Client::connect_in_proc(&server, "monetdb", "monetdb", "demo").unwrap();
//! let table = client.query("SELECT sum(i) FROM t").unwrap().into_table().unwrap();
//! assert_eq!(table.rows[0][0], wireproto::message::WireValue::Int(6));
//! server.shutdown();
//! ```

pub mod client;
pub mod delta;
pub mod embedded;
pub mod fault;
pub mod message;
pub mod retry;
pub mod server;
pub mod transfer;
pub mod transport;

pub use client::{Client, ClientOptions};
pub use embedded::{Embedded, EngineTransport};
pub use fault::{FaultInjectingTransport, FaultPolicy, FaultStats};
pub use message::{Message, WireError, WireTable, WireValue};
pub use retry::RetryPolicy;
pub use server::{Server, ServerConfig};
pub use transfer::{TransferOptions, TransferStats, DEFAULT_BLOCK_SIZE};
