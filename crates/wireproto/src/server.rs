//! The database server: owns a single-threaded engine, serializes sessions.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use std::sync::mpsc::{channel, Sender};

use monetlite::{Engine, FunctionReturn};

use crate::message::{Message, WireResult};
use crate::transfer;
use crate::transport::{read_frame_with_mid_deadline, write_frame};

/// Server configuration: database name and the single user's credentials
/// (the paper's settings dialog collects exactly these, Figure 2), plus
/// the per-session frame deadline.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub database: String,
    pub user: String,
    pub password: String,
    /// Once a TCP session has sent a frame's length prefix, the rest of
    /// the frame must arrive within this window or the session is
    /// dropped — a stalled peer can hold a connection, never a thread
    /// forever. Waiting *between* frames is unbounded (idle is legal).
    pub frame_deadline: Duration,
}

/// Default mid-frame deadline for TCP sessions.
pub const DEFAULT_FRAME_DEADLINE: Duration = Duration::from_secs(10);

impl ServerConfig {
    pub fn new(database: &str, user: &str, password: &str) -> Self {
        ServerConfig {
            database: database.to_string(),
            user: user.to_string(),
            password: password.to_string(),
            frame_deadline: DEFAULT_FRAME_DEADLINE,
        }
    }

    /// Override the mid-frame deadline (tests use short ones).
    pub fn with_frame_deadline(mut self, deadline: Duration) -> Self {
        self.frame_deadline = deadline;
        self
    }
}

/// A request delivered to the engine thread.
pub enum ServerRequest {
    Frame {
        session: u64,
        body: Vec<u8>,
        reply: Sender<Vec<u8>>,
    },
    Shutdown,
}

/// Handle to a running server.
pub struct Server {
    sender: Sender<ServerRequest>,
    engine_thread: Option<JoinHandle<()>>,
    next_session: Arc<AtomicU64>,
    stop_tcp: Arc<AtomicBool>,
    /// Bound TCP listeners + their accept threads, so shutdown can wake
    /// each blocking `accept` with a self-connection and join it.
    listeners: Mutex<Vec<(SocketAddr, JoinHandle<()>)>>,
    config: ServerConfig,
}

struct SessionState {
    authed: bool,
}

impl Server {
    /// Start the engine thread; `init` seeds the database before any client
    /// connects (create tables, load data, register UDFs).
    pub fn start(config: ServerConfig, init: impl FnOnce(&Engine) + Send + 'static) -> Server {
        let (tx, rx) = channel::<ServerRequest>();
        let thread_config = config.clone();
        let engine_thread = std::thread::Builder::new()
            .name("monetlite-engine".to_string())
            .spawn(move || {
                let engine = Engine::new();
                init(&engine);
                let mut sessions: HashMap<u64, SessionState> = HashMap::new();
                while let Ok(req) = rx.recv() {
                    match req {
                        ServerRequest::Shutdown => break,
                        ServerRequest::Frame {
                            session,
                            body,
                            reply,
                        } => {
                            let response = handle_frame(
                                &engine,
                                &thread_config,
                                &mut sessions,
                                session,
                                &body,
                            );
                            // A dead client is not a server error.
                            let _ = reply.send(response.encode());
                        }
                    }
                }
            })
            .expect("spawn engine thread");
        Server {
            sender: tx,
            engine_thread: Some(engine_thread),
            next_session: Arc::new(AtomicU64::new(1)),
            stop_tcp: Arc::new(AtomicBool::new(false)),
            listeners: Mutex::new(Vec::new()),
            config,
        }
    }

    /// Configured database name (used by clients and tests).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Allocate an in-process connection (session id + request channel).
    pub fn in_proc_connection(&self) -> (Sender<ServerRequest>, u64) {
        obs::counter!("wire.server.sessions").inc();
        (
            self.sender.clone(),
            self.next_session.fetch_add(1, Ordering::Relaxed),
        )
    }

    /// Start accepting TCP connections on 127.0.0.1 (ephemeral port).
    /// Returns the bound address.
    ///
    /// The accept loop blocks in `accept` (no polling, zero idle CPU);
    /// [`Server::shutdown`] wakes it with a self-connection, so stopping
    /// is immediate.
    pub fn listen_tcp(&self) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let sender = self.sender.clone();
        let next_session = self.next_session.clone();
        let stop = self.stop_tcp.clone();
        let frame_deadline = self.config.frame_deadline;
        let handle = std::thread::Builder::new()
            .name("wireproto-accept".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Either a real client or the shutdown wake-up
                        // connection — check after accept returns.
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        obs::counter!("wire.server.sessions").inc();
                        let session = next_session.fetch_add(1, Ordering::Relaxed);
                        let sender = sender.clone();
                        std::thread::spawn(move || {
                            serve_tcp_connection(stream, sender, session, frame_deadline)
                        });
                    }
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        // Transient accept failure (e.g. EMFILE); brief
                        // pause instead of a hot error loop.
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
            .expect("spawn accept thread");
        self.listeners
            .lock()
            .expect("listeners lock")
            .push((addr, handle));
        Ok(addr)
    }

    fn stop(&mut self) {
        self.stop_tcp.store(true, Ordering::Relaxed);
        // Wake each blocking accept with a throwaway self-connection and
        // join the accept thread; a failed connect means the listener is
        // already dead, in which case the thread exits on its own error.
        for (addr, handle) in self.listeners.lock().expect("listeners lock").drain(..) {
            let _ = TcpStream::connect(addr);
            let _ = handle.join();
        }
        let _ = self.sender.send(ServerRequest::Shutdown);
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
    }

    /// Stop the server and join the engine and accept threads.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_tcp_connection(
    mut stream: std::net::TcpStream,
    sender: Sender<ServerRequest>,
    session: u64,
    frame_deadline: Duration,
) {
    let deadline = (!frame_deadline.is_zero()).then_some(frame_deadline);
    loop {
        let body = match read_frame_with_mid_deadline(&mut stream, deadline) {
            Ok(b) => b,
            Err(_) => return, // client hung up or stalled mid-frame
        };
        let (reply_tx, reply_rx) = channel();
        if sender
            .send(ServerRequest::Frame {
                session,
                body,
                reply: reply_tx,
            })
            .is_err()
        {
            return; // server shut down
        }
        let Ok(response) = reply_rx.recv() else {
            return;
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn err_msg(code: &str, message: impl Into<String>) -> Message {
    Message::Error {
        code: code.to_string(),
        message: message.into(),
        traceback: None,
    }
}

/// Per-command latency histogram for the engine-side dispatch (a closed
/// set of names, each arm one cached handle).
fn cmd_latency(msg: &Message) -> &'static obs::metrics::Histogram {
    match msg {
        Message::Login { .. } => obs::histogram!("wire.server.latency.login"),
        Message::Ping => obs::histogram!("wire.server.latency.ping"),
        Message::Query { .. } => obs::histogram!("wire.server.latency.query"),
        Message::ListFunctions => obs::histogram!("wire.server.latency.list_functions"),
        Message::GetFunction { .. } => obs::histogram!("wire.server.latency.get_function"),
        Message::ExtractInputs { .. } => obs::histogram!("wire.server.latency.extract_inputs"),
        Message::ExtractDelta { .. } => obs::histogram!("wire.server.latency.extract_delta"),
        Message::Traced { .. } => obs::histogram!("wire.server.latency.traced"),
        _ => obs::histogram!("wire.server.latency.other"),
    }
}

/// Short command name for span fields (same closed set as [`cmd_latency`]).
fn cmd_name(msg: &Message) -> &'static str {
    match msg {
        Message::Login { .. } => "login",
        Message::Ping => "ping",
        Message::Query { .. } => "query",
        Message::ListFunctions => "list_functions",
        Message::GetFunction { .. } => "get_function",
        Message::ExtractInputs { .. } => "extract_inputs",
        Message::ExtractDelta { .. } => "extract_delta",
        _ => "other",
    }
}

/// The server's half of a trace id: the client's id with the top bit set,
/// so an in-process client and server never share one capture buffer (and
/// the span-id remap the client applies on merge can never collide).
const SERVER_TRACE_BIT: u64 = 1 << 63;

/// Handle a [`Message::Traced`] envelope (DESIGN §15): decode the inner
/// request, capture every span the engine closes while dispatching it
/// under a `server.command` root, and ship the encoded inner reply plus
/// the captured spans back in a [`Message::TracedReply`]. On a server
/// built without telemetry the span list is simply empty — the inner
/// dispatch is unaffected either way.
fn traced_reply(
    engine: &Engine,
    config: &ServerConfig,
    sessions: &mut HashMap<u64, SessionState>,
    session: u64,
    trace: u64,
    inner: &[u8],
) -> Message {
    let msg = match Message::decode(inner) {
        Ok(Message::Traced { .. }) => return err_msg("ProtocolError", "nested traced envelope"),
        Ok(m) => m,
        Err(e) => return err_msg("ProtocolError", e.to_string()),
    };
    let side = trace | SERVER_TRACE_BIT;
    obs::trace::start_capture(side);
    let reply = {
        let _ctx = obs::trace::enter_context(obs::trace::SpanContext {
            trace: side,
            parent: 0,
        });
        let mut span = obs::trace::span_active("server.command");
        span.field("command", cmd_name(&msg));
        dispatch_frame(engine, config, sessions, session, msg)
    };
    let spans = obs::trace::take_capture(side)
        .into_iter()
        .map(|r| crate::message::WireSpan {
            id: r.id,
            parent: r.parent,
            name: r.name,
            duration_ns: r.duration_ns,
            fields: r.fields,
        })
        .collect();
    Message::TracedReply {
        spans,
        inner: reply.encode(),
    }
}

/// Build a [`Message::DeltaBlocks`] reply: pickle the fresh inputs,
/// digest the plaintext block grid on the global pool, and run the block
/// codec only over the blocks whose digest the client did not declare.
/// The shipped bodies are bit-identical to what the full container would
/// carry, so the cold path's wire-determinism guarantees extend here.
fn delta_reply(
    config: &ServerConfig,
    options: crate::transfer::TransferOptions,
    transfer_id: u64,
    inputs: &pylite::Value,
    deps: Vec<(String, u64)>,
    client_digests: &[[u8; 32]],
) -> Message {
    let raw = match transfer::pickle_inputs(inputs) {
        Ok(r) => r,
        Err(e) => return err_msg("TransferError", e.to_string()),
    };
    let pool = devharness::pool::global();
    let digests = transfer::block_digests_pooled(pool, &raw, options.effective_block_size());
    let known: std::collections::HashSet<&[u8; 32]> = client_digests.iter().collect();
    let ship: Vec<bool> = digests.iter().map(|d| !known.contains(d)).collect();
    let blocks =
        transfer::encode_delta_blocks(pool, &raw, &options, &config.password, transfer_id, &ship);
    obs::histogram!("transfer.delta.blocks_reused").record((digests.len() - blocks.len()) as u64);
    obs::counter!("transfer.delta.server.blocks_shipped").add(blocks.len() as u64);
    Message::DeltaBlocks {
        options,
        transfer_id,
        raw_len: raw.len() as u64,
        epochs: deps,
        digests,
        blocks,
    }
}

/// Dispatch one decoded frame against the engine, recording frame and
/// per-command latency telemetry.
fn handle_frame(
    engine: &Engine,
    config: &ServerConfig,
    sessions: &mut HashMap<u64, SessionState>,
    session: u64,
    body: &[u8],
) -> Message {
    obs::counter!("wire.server.frames").inc();
    let msg = match Message::decode(body) {
        Ok(m) => m,
        Err(e) => return err_msg("ProtocolError", e.to_string()),
    };
    if !obs::enabled() {
        return dispatch_frame(engine, config, sessions, session, msg);
    }
    let hist = cmd_latency(&msg);
    let started = std::time::Instant::now();
    let reply = dispatch_frame(engine, config, sessions, session, msg);
    hist.record_duration(started.elapsed());
    reply
}

/// The actual dispatch, free of telemetry.
fn dispatch_frame(
    engine: &Engine,
    config: &ServerConfig,
    sessions: &mut HashMap<u64, SessionState>,
    session: u64,
    msg: Message,
) -> Message {
    if let Message::Traced { trace, inner } = msg {
        return traced_reply(engine, config, sessions, session, trace, &inner);
    }
    if let Message::Login {
        user,
        password,
        database,
    } = &msg
    {
        if user != &config.user || password != &config.password {
            return err_msg("AuthError", "invalid credentials");
        }
        if database != &config.database {
            return err_msg("AuthError", format!("no such database '{database}'"));
        }
        sessions.insert(session, SessionState { authed: true });
        return Message::LoginOk { session };
    }
    if !sessions.get(&session).map(|s| s.authed).unwrap_or(false) {
        return err_msg("AuthError", "not logged in");
    }

    match msg {
        Message::Ping => Message::Pong,
        Message::Query { sql } => match engine.execute(&sql) {
            Ok(result) => Message::ResultSet {
                result: WireResult::from_query_result(&result),
                udf_stdout: engine.take_udf_stdout(),
            },
            Err(e) => Message::Error {
                code: e.code.name().to_string(),
                message: e.message.clone(),
                traceback: e.traceback,
            },
        },
        Message::ListFunctions => Message::FunctionList {
            names: engine.function_names(),
        },
        Message::GetFunction { name } => match engine.get_function(&name) {
            Ok(Some(def)) => Message::FunctionInfo {
                name: def.name.clone(),
                params: def
                    .params
                    .iter()
                    .map(|(n, t)| (n.clone(), t.name().to_string()))
                    .collect(),
                return_type: match &def.returns {
                    FunctionReturn::Scalar(t) => t.name().to_string(),
                    FunctionReturn::Table(cols) => {
                        let inner: Vec<String> =
                            cols.iter().map(|(n, t)| format!("{n} {t}")).collect();
                        format!("TABLE({})", inner.join(", "))
                    }
                },
                language: def.language,
                body: def.body,
            },
            Ok(None) => err_msg("CatalogError", format!("no such function '{name}'")),
            Err(e) => err_msg(e.code.name(), e.message),
        },
        Message::ExtractInputs {
            query,
            udf,
            options,
            transfer_id,
        } => match engine.extract_inputs(&query, &udf) {
            Ok(inputs) => {
                // Mix the wire session into the sampling seed: repeated
                // extracts within a session already differ by transfer id,
                // and two sessions against the same engine must not draw
                // identical sample schedules either. Fully reproducible
                // given (engine seed, session, transfer id).
                match transfer::encode_payload(
                    &inputs,
                    &options,
                    &config.password,
                    transfer_id,
                    transfer::derive_sample_seed(engine.rng_seed(), session),
                ) {
                    Ok((payload, raw_len)) => Message::Extracted {
                        payload,
                        raw_len: raw_len as u64,
                        options,
                        transfer_id,
                    },
                    Err(e) => err_msg("TransferError", e.to_string()),
                }
            }
            Err(e) => Message::Error {
                code: e.code.name().to_string(),
                message: e.message.clone(),
                traceback: e.traceback,
            },
        },
        Message::ExtractDelta {
            query,
            udf,
            options,
            transfer_id,
            epochs,
            digests,
        } => {
            if options.sample.is_some() {
                // Samples are drawn fresh per transfer id, so two sampled
                // payloads are never comparable; the client bypasses the
                // cache for them, and a request that didn't is an error.
                return err_msg(
                    "TransferError",
                    "sampled extracts bypass the delta cache (samples are per-transfer)",
                );
            }
            // Epoch check FIRST: when every dependency epoch the client's
            // cache entry was built from still matches, the extract —
            // query re-execution, pickling, KDF, digesting, block codec —
            // is skipped entirely. This is the whole point of the cache:
            // the NotModified answer does zero codec work.
            if !epochs.is_empty()
                && epochs
                    .iter()
                    .all(|(name, epoch)| engine.table_epoch(name) == Some(*epoch))
            {
                obs::counter!("transfer.delta.server.not_modified").inc();
                return Message::DeltaNotModified { transfer_id };
            }
            match engine.extract_inputs_with_deps(&query, &udf) {
                Ok((inputs, deps)) => {
                    delta_reply(config, options, transfer_id, &inputs, deps, &digests)
                }
                Err(e) => Message::Error {
                    code: e.code.name().to_string(),
                    message: e.message.clone(),
                    traceback: e.traceback,
                },
            }
        }
        // Server-only messages arriving at the server are protocol errors.
        other => err_msg(
            "ProtocolError",
            format!("unexpected message from client: {other:?}"),
        ),
    }
}
