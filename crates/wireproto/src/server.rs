//! The database server: a read/write-split scheduler over one logical engine.
//!
//! The engine itself is single-threaded by design (`Rc`/`RefCell`
//! internals), but the server no longer serializes every command through
//! it. Each decoded frame is classified ([`monetlite::classify`]):
//!
//! * **Writes** (DML, DDL, COPY, impure-UDF queries) go to the writer
//!   thread, which owns the live engine — the only thread that ever
//!   mutates it. After a mutating command it publishes a fresh
//!   [`EngineSnapshot`] *before* replying, so a session always sees its
//!   own writes on its next command.
//! * **Reads** (SELECT / EXPLAIN / catalog and `sys.*` lookups /
//!   extracts) run concurrently on a bounded [`Service`] of reader
//!   workers. A read executes against the exact snapshot it was
//!   classified on (one consistent epoch — never a torn mix), hydrated
//!   into a worker-private engine that is cached per epoch.
//! * **Pings and logins** are answered inline on the session's own
//!   thread — they never queue, so a slow extract cannot starve them.
//!
//! Both queues are bounded: when one is full the server answers with a
//! typed `ServerBusy` error (the client maps it to the retryable
//! [`crate::WireError::Busy`]) instead of growing memory. Queue pressure
//! is observable via the `wire.server.queue_full` counter and the
//! `wire.server.queue_wait_ns` histogram; live sessions via the
//! `sys.sessions` virtual table, backed by the sharded session registry
//! here.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, sync_channel, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use devharness::pool::Service;
use monetlite::snapshot::EngineSnapshot;
use monetlite::{
    classify_extract, classify_sql, CommandClass, Engine, FunctionReturn, SessionProvider,
    SessionRow, SessionSource,
};

use crate::message::{Message, WireResult};
use crate::transfer;
use crate::transport::{read_frame_with_mid_deadline, write_frame};

/// Server configuration: database name and the single user's credentials
/// (the paper's settings dialog collects exactly these, Figure 2), plus
/// the per-session frame deadline and scheduler bounds.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub database: String,
    pub user: String,
    pub password: String,
    /// Once a TCP session has sent a frame's length prefix, the rest of
    /// the frame must arrive within this window or the session is
    /// dropped — a stalled peer can hold a connection, never a thread
    /// forever. Waiting *between* frames is unbounded (idle is legal).
    pub frame_deadline: Duration,
    /// Reader worker threads (0 = auto:
    /// [`devharness::pool::default_threads`]).
    pub read_workers: usize,
    /// Read commands that may wait for a reader before `ServerBusy`.
    pub read_queue: usize,
    /// Write commands that may wait for the writer before `ServerBusy`.
    pub write_queue: usize,
}

/// Default mid-frame deadline for TCP sessions.
pub const DEFAULT_FRAME_DEADLINE: Duration = Duration::from_secs(10);

/// Default bound for each command queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 128;

impl ServerConfig {
    pub fn new(database: &str, user: &str, password: &str) -> Self {
        ServerConfig {
            database: database.to_string(),
            user: user.to_string(),
            password: password.to_string(),
            frame_deadline: DEFAULT_FRAME_DEADLINE,
            read_workers: 0,
            read_queue: DEFAULT_QUEUE_CAPACITY,
            write_queue: DEFAULT_QUEUE_CAPACITY,
        }
    }

    /// Override the mid-frame deadline (tests use short ones).
    pub fn with_frame_deadline(mut self, deadline: Duration) -> Self {
        self.frame_deadline = deadline;
        self
    }

    /// Override the reader worker count (0 = auto).
    pub fn with_read_workers(mut self, workers: usize) -> Self {
        self.read_workers = workers;
        self
    }

    /// Override both queue bounds (saturation tests use tiny ones).
    pub fn with_queue_capacity(mut self, read: usize, write: usize) -> Self {
        self.read_queue = read.max(1);
        self.write_queue = write.max(1);
        self
    }
}

// ---------------- session registry ----------------

/// Session states surfaced in `sys.sessions`.
const STATE_IDLE: u8 = 0;
const STATE_QUEUED: u8 = 1;
const STATE_RUNNING: u8 = 2;

fn state_name(state: u8) -> &'static str {
    match state {
        STATE_QUEUED => "queued",
        STATE_RUNNING => "running",
        _ => "idle",
    }
}

/// One live session's shared, lock-free mutable state.
pub(crate) struct SessionEntry {
    id: u64,
    peer: String,
    authed: AtomicBool,
    state: AtomicU8,
    /// Commands completed (all routes: inline, read, write).
    commands: AtomicU64,
    /// Cumulative nanoseconds this session's commands waited in a queue.
    queue_wait_ns: AtomicU64,
}

impl SessionEntry {
    fn record_dequeue(&self, enqueued: Instant) {
        let waited = enqueued.elapsed();
        let ns = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
        self.queue_wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.state.store(STATE_RUNNING, Ordering::Relaxed);
        obs::histogram!("wire.server.queue_wait_ns").record(ns);
    }

    fn finish_command(&self) {
        self.commands.fetch_add(1, Ordering::Relaxed);
        self.state.store(STATE_IDLE, Ordering::Relaxed);
    }
}

/// Sessions sharded over independently locked maps, so registration and
/// lookup from many connection threads never funnel through one lock.
const SESSION_SHARDS: usize = 8;

pub(crate) struct SessionRegistry {
    shards: [Mutex<HashMap<u64, Arc<SessionEntry>>>; SESSION_SHARDS],
}

impl SessionRegistry {
    fn new() -> SessionRegistry {
        SessionRegistry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<SessionEntry>>> {
        &self.shards[(id as usize) % SESSION_SHARDS]
    }

    fn register(&self, id: u64, peer: String) -> Arc<SessionEntry> {
        let entry = Arc::new(SessionEntry {
            id,
            peer,
            authed: AtomicBool::new(false),
            state: AtomicU8::new(STATE_IDLE),
            commands: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
        });
        self.shard(id)
            .lock()
            .expect("session shard poisoned")
            .insert(id, entry.clone());
        obs::counter!("wire.server.sessions").inc();
        entry
    }

    fn remove(&self, id: u64) {
        self.shard(id)
            .lock()
            .expect("session shard poisoned")
            .remove(&id);
    }

    fn get(&self, id: u64) -> Option<Arc<SessionEntry>> {
        self.shard(id)
            .lock()
            .expect("session shard poisoned")
            .get(&id)
            .cloned()
    }

    fn live_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("session shard poisoned").len())
            .sum()
    }
}

impl SessionProvider for SessionRegistry {
    fn sessions(&self) -> Vec<SessionRow> {
        let mut rows = Vec::new();
        for shard in &self.shards {
            for entry in shard.lock().expect("session shard poisoned").values() {
                rows.push(SessionRow {
                    id: entry.id,
                    peer: entry.peer.clone(),
                    state: state_name(entry.state.load(Ordering::Relaxed)).to_string(),
                    commands: entry.commands.load(Ordering::Relaxed),
                    queue_wait_ns: entry.queue_wait_ns.load(Ordering::Relaxed),
                });
            }
        }
        rows
    }
}

// ---------------- the scheduler core ----------------

/// A command bound for the writer thread.
enum WriteJob {
    Frame {
        entry: Arc<SessionEntry>,
        session: u64,
        msg: Message,
        reply: Sender<Vec<u8>>,
        enqueued: Instant,
    },
    Shutdown,
}

/// Where a frame executes.
enum Route {
    /// Answered on the calling thread, never queued (pings, logins,
    /// protocol errors).
    Inline(Message),
    /// Concurrent execution against the snapshot it was classified on.
    Read,
    /// Serialized on the writer thread.
    Write,
}

/// Shared state of a running server: everything a connection (TCP thread
/// or in-process transport) needs to submit commands.
pub struct ServerCore {
    config: ServerConfig,
    writer: SyncSender<WriteJob>,
    /// Bounded reader scheduler; `None` once the server began shutdown.
    readers: RwLock<Option<Service>>,
    snapshot: RwLock<Arc<EngineSnapshot>>,
    registry: Arc<SessionRegistry>,
    next_session: AtomicU64,
    stopping: AtomicBool,
}

thread_local! {
    /// Reader workers cache their hydrated engine keyed by snapshot epoch,
    /// so consecutive reads at one epoch pay hydration once per worker.
    static READER_ENGINE: std::cell::RefCell<Option<(u64, Engine)>> =
        const { std::cell::RefCell::new(None) };
}

impl ServerCore {
    /// The latest published snapshot.
    fn current_snapshot(&self) -> Arc<EngineSnapshot> {
        self.snapshot
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }

    fn publish(&self, snap: EngineSnapshot) {
        obs::gauge!("wire.server.snapshot_epoch").set(snap.epoch as i64);
        *self.snapshot.write().expect("snapshot lock poisoned") = Arc::new(snap);
    }

    /// Whether the server has begun shutdown (transports fail fast).
    pub(crate) fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    pub(crate) fn remove_session(&self, session: u64) {
        self.registry.remove(session);
    }

    /// Classify a decoded frame (pings and logins were already answered
    /// inline and never reach this). Unknown or server-to-client messages
    /// fall through to the read path, whose dispatcher produces the proper
    /// auth/protocol error with full session semantics.
    fn route(&self, msg: &Message, snap: &EngineSnapshot) -> Route {
        match msg {
            Message::Query { sql } => match classify_sql(sql, &snap.catalog) {
                CommandClass::Read => Route::Read,
                CommandClass::Write => Route::Write,
            },
            Message::ListFunctions | Message::GetFunction { .. } => Route::Read,
            // Extraction intercepts the target UDF instead of executing it,
            // so only *other* impure UDFs in the query force the writer.
            Message::ExtractInputs { query, udf, .. }
            | Message::ExtractDelta { query, udf, .. } => {
                match classify_extract(query, udf, &snap.catalog) {
                    CommandClass::Read => Route::Read,
                    CommandClass::Write => Route::Write,
                }
            }
            Message::Traced { inner, .. } => match Message::decode(inner) {
                Err(e) => Route::Inline(err_msg("ProtocolError", e.to_string())),
                Ok(Message::Traced { .. }) => {
                    Route::Inline(err_msg("ProtocolError", "nested traced envelope"))
                }
                // Traced pings/logins ride the read path: the capture has
                // an engine-equipped thread and stays off the writer.
                Ok(Message::Ping) | Ok(Message::Login { .. }) => Route::Read,
                Ok(inner_msg) => self.route(&inner_msg, snap),
            },
            _ => Route::Read,
        }
    }

    /// Handle one raw frame for `session`, blocking until the reply is
    /// ready. Safe to call from any thread; this is the single entry point
    /// shared by TCP connection threads and the in-process transport.
    pub fn handle_frame(self: &Arc<Self>, session: u64, body: &[u8]) -> Vec<u8> {
        obs::counter!("wire.server.frames").inc();
        let msg = match Message::decode(body) {
            Ok(m) => m,
            Err(e) => return err_msg("ProtocolError", e.to_string()).encode(),
        };
        let Some(entry) = self.registry.get(session) else {
            return err_msg("AuthError", "unknown session").encode();
        };

        // Inline fast paths: answered on this thread, never queued, so
        // queue pressure cannot starve liveness probes or logins.
        match &msg {
            Message::Ping => {
                if !entry.authed.load(Ordering::Relaxed) {
                    return err_msg("AuthError", "not logged in").encode();
                }
                entry.finish_command();
                return Message::Pong.encode();
            }
            Message::Login { .. } => {
                let reply = login_reply(&self.config, &entry, session, &msg);
                entry.finish_command();
                return reply.encode();
            }
            _ => {}
        }

        let snap = self.current_snapshot();
        match self.route(&msg, &snap) {
            Route::Inline(reply) => {
                entry.finish_command();
                reply.encode()
            }
            Route::Read => self.submit_read(entry, session, msg, snap),
            Route::Write => self.submit_write(entry, session, msg),
        }
    }

    fn submit_read(
        self: &Arc<Self>,
        entry: Arc<SessionEntry>,
        session: u64,
        msg: Message,
        snap: Arc<EngineSnapshot>,
    ) -> Vec<u8> {
        let readers = self.readers.read().expect("readers lock poisoned");
        let Some(service) = readers.as_ref() else {
            return err_msg("ServerError", "server is shutting down").encode();
        };
        let (reply_tx, reply_rx) = channel();
        let core = self.clone();
        let job_entry = entry.clone();
        let enqueued = Instant::now();
        entry.state.store(STATE_QUEUED, Ordering::Relaxed);
        let submitted = service.try_submit(move || {
            job_entry.record_dequeue(enqueued);
            let reply = READER_ENGINE.with(|cache| {
                let mut cache = cache.borrow_mut();
                let engine = match cache.take() {
                    Some((epoch, engine)) if epoch == snap.epoch => engine,
                    _ => snap.hydrate(),
                };
                let reply = timed_dispatch(&engine, &core.config, &job_entry, session, msg);
                *cache = Some((snap.epoch, engine));
                reply
            });
            job_entry.finish_command();
            // A dead client is not a server error.
            let _ = reply_tx.send(reply.encode());
        });
        drop(readers);
        if submitted.is_err() {
            entry.state.store(STATE_IDLE, Ordering::Relaxed);
            return busy_reply("read").encode();
        }
        match reply_rx.recv() {
            Ok(reply) => reply,
            Err(_) => err_msg("ServerError", "server is shutting down").encode(),
        }
    }

    fn submit_write(&self, entry: Arc<SessionEntry>, session: u64, msg: Message) -> Vec<u8> {
        let (reply_tx, reply_rx) = channel();
        entry.state.store(STATE_QUEUED, Ordering::Relaxed);
        let job = WriteJob::Frame {
            entry: entry.clone(),
            session,
            msg,
            reply: reply_tx,
            enqueued: Instant::now(),
        };
        match self.writer.try_send(job) {
            Ok(()) => match reply_rx.recv() {
                Ok(reply) => reply,
                Err(_) => err_msg("ServerError", "server is shutting down").encode(),
            },
            Err(TrySendError::Full(_)) => {
                entry.state.store(STATE_IDLE, Ordering::Relaxed);
                busy_reply("write").encode()
            }
            Err(TrySendError::Disconnected(_)) => {
                entry.state.store(STATE_IDLE, Ordering::Relaxed);
                err_msg("ServerError", "server is shutting down").encode()
            }
        }
    }
}

/// Handle to a running server.
pub struct Server {
    core: Arc<ServerCore>,
    writer_thread: Option<JoinHandle<()>>,
    stop_tcp: Arc<AtomicBool>,
    /// Bound TCP listeners + their accept threads, so shutdown can wake
    /// each blocking `accept` with a self-connection and join it.
    listeners: Mutex<Vec<(SocketAddr, JoinHandle<()>)>>,
}

impl Server {
    /// Start the writer thread and reader pool; `init` seeds the database
    /// before any client connects (create tables, load data, register
    /// UDFs). Returns once the seeded snapshot is published, so the first
    /// concurrent read already sees the initialized catalog.
    pub fn start(config: ServerConfig, init: impl FnOnce(&Engine) + Send + 'static) -> Server {
        let (writer_tx, writer_rx) = sync_channel::<WriteJob>(config.write_queue.max(1));
        let registry = Arc::new(SessionRegistry::new());
        let read_workers = if config.read_workers == 0 {
            devharness::pool::default_threads()
        } else {
            config.read_workers
        };
        let core = Arc::new(ServerCore {
            writer: writer_tx,
            readers: RwLock::new(Some(Service::new(
                "wire-server-read",
                read_workers,
                config.read_queue.max(1),
            ))),
            // Placeholder until the writer publishes the seeded snapshot
            // below; `start` does not return before that happens.
            snapshot: RwLock::new(Arc::new(Engine::new().snapshot())),
            registry: registry.clone(),
            next_session: AtomicU64::new(1),
            stopping: AtomicBool::new(false),
            config,
        });
        let (ready_tx, ready_rx) = channel();
        let writer_core = core.clone();
        let writer_thread = std::thread::Builder::new()
            .name("monetlite-engine".to_string())
            .spawn(move || {
                let engine = Engine::new();
                engine.set_session_source(SessionSource::new(writer_core.registry.clone()));
                init(&engine);
                let mut published = engine.catalog_version();
                writer_core.publish(engine.snapshot());
                let _ = ready_tx.send(());
                while let Ok(job) = writer_rx.recv() {
                    match job {
                        WriteJob::Shutdown => break,
                        WriteJob::Frame {
                            entry,
                            session,
                            msg,
                            reply,
                            enqueued,
                        } => {
                            entry.record_dequeue(enqueued);
                            let response =
                                timed_dispatch(&engine, &writer_core.config, &entry, session, msg);
                            // Publish *before* replying: when the client
                            // sees this command's result, the snapshot its
                            // next read classifies against already carries
                            // the mutation (read-your-writes per session).
                            let version = engine.catalog_version();
                            if version != published {
                                writer_core.publish(engine.snapshot());
                                published = version;
                            }
                            entry.finish_command();
                            // A dead client is not a server error.
                            let _ = reply.send(response.encode());
                        }
                    }
                }
            })
            .expect("spawn engine thread");
        ready_rx.recv().expect("engine init completed");
        Server {
            core,
            writer_thread: Some(writer_thread),
            stop_tcp: Arc::new(AtomicBool::new(false)),
            listeners: Mutex::new(Vec::new()),
        }
    }

    /// Configured database name (used by clients and tests).
    pub fn config(&self) -> &ServerConfig {
        &self.core.config
    }

    /// Number of live registered sessions (tests and diagnostics).
    pub fn session_count(&self) -> usize {
        self.core.registry.live_count()
    }

    /// Allocate an in-process connection (scheduler handle + session id).
    pub fn in_proc_connection(&self) -> (Arc<ServerCore>, u64) {
        let session = self.core.next_session.fetch_add(1, Ordering::Relaxed);
        self.core.registry.register(session, "in-proc".to_string());
        (self.core.clone(), session)
    }

    /// Start accepting TCP connections on 127.0.0.1 (ephemeral port).
    /// Returns the bound address.
    ///
    /// The accept loop blocks in `accept` (no polling, zero idle CPU);
    /// [`Server::shutdown`] wakes it with a self-connection, so stopping
    /// is immediate. Transient accept errors back off exponentially
    /// (capped); a listener that only ever errors is declared dead and
    /// the loop exits cleanly instead of spinning forever.
    pub fn listen_tcp(&self) -> std::io::Result<SocketAddr> {
        /// First backoff after a transient accept error.
        const ACCEPT_BACKOFF_FLOOR: Duration = Duration::from_millis(1);
        /// Backoff cap: the loop never sleeps longer than this.
        const ACCEPT_BACKOFF_CEIL: Duration = Duration::from_millis(250);
        /// Consecutive accept errors after which the listener is
        /// considered dead (the socket is gone, not momentarily starved).
        const ACCEPT_MAX_CONSECUTIVE_ERRORS: u32 = 32;

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let core = self.core.clone();
        let stop = self.stop_tcp.clone();
        let frame_deadline = self.core.config.frame_deadline;
        let handle = std::thread::Builder::new()
            .name("wireproto-accept".to_string())
            .spawn(move || {
                let mut backoff = ACCEPT_BACKOFF_FLOOR;
                let mut consecutive_errors: u32 = 0;
                loop {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            // Either a real client or the shutdown wake-up
                            // connection — check after accept returns.
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            backoff = ACCEPT_BACKOFF_FLOOR;
                            consecutive_errors = 0;
                            // Request/response framing: never let Nagle
                            // hold a half-written reply for a delayed ACK.
                            stream.set_nodelay(true).ok();
                            let session = core.next_session.fetch_add(1, Ordering::Relaxed);
                            core.registry.register(session, peer.to_string());
                            let core = core.clone();
                            std::thread::spawn(move || {
                                serve_tcp_connection(stream, core, session, frame_deadline)
                            });
                        }
                        Err(_) => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            obs::counter!("wire.server.accept_errors").inc();
                            consecutive_errors += 1;
                            if consecutive_errors >= ACCEPT_MAX_CONSECUTIVE_ERRORS {
                                // Nothing but errors across every backoff
                                // tier: the listener is dead. Exit instead
                                // of burning a core on a doomed loop.
                                return;
                            }
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(ACCEPT_BACKOFF_CEIL);
                        }
                    }
                }
            })
            .expect("spawn accept thread");
        self.listeners
            .lock()
            .expect("listeners lock")
            .push((addr, handle));
        Ok(addr)
    }

    fn stop(&mut self) {
        self.core.stopping.store(true, Ordering::Relaxed);
        self.stop_tcp.store(true, Ordering::Relaxed);
        // Wake each blocking accept with a throwaway self-connection and
        // join the accept thread; a failed connect means the listener is
        // already dead, in which case the thread exits on its own error.
        for (addr, handle) in self.listeners.lock().expect("listeners lock").drain(..) {
            let _ = TcpStream::connect(addr);
            let _ = handle.join();
        }
        // Dropping the reader service drains queued reads (their replies
        // still go out) and joins the workers.
        drop(
            self.core
                .readers
                .write()
                .expect("readers lock poisoned")
                .take(),
        );
        let _ = self.core.writer.send(WriteJob::Shutdown);
        if let Some(t) = self.writer_thread.take() {
            let _ = t.join();
        }
    }

    /// Stop the server and join the reader, writer and accept threads.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_tcp_connection(
    mut stream: std::net::TcpStream,
    core: Arc<ServerCore>,
    session: u64,
    frame_deadline: Duration,
) {
    let deadline = (!frame_deadline.is_zero()).then_some(frame_deadline);
    // Loop until the client hangs up or stalls mid-frame.
    while let Ok(body) = read_frame_with_mid_deadline(&mut stream, deadline) {
        if core.is_stopping() {
            break;
        }
        let response = core.handle_frame(session, &body);
        if write_frame(&mut stream, &response).is_err() {
            break;
        }
    }
    core.remove_session(session);
}

fn err_msg(code: &str, message: impl Into<String>) -> Message {
    Message::Error {
        code: code.to_string(),
        message: message.into(),
        traceback: None,
    }
}

/// The typed backpressure reply: a bounded queue refused the command
/// before execution, so the client may safely retry it after backoff —
/// even a write.
fn busy_reply(which: &'static str) -> Message {
    obs::counter!("wire.server.queue_full").inc();
    err_msg(
        "ServerBusy",
        format!("{which} queue is full; retry after backoff"),
    )
}

/// Validate a login frame against the configured credentials.
fn login_reply(
    config: &ServerConfig,
    entry: &SessionEntry,
    session: u64,
    msg: &Message,
) -> Message {
    let Message::Login {
        user,
        password,
        database,
    } = msg
    else {
        return err_msg("ProtocolError", "not a login frame");
    };
    if user != &config.user || password != &config.password {
        return err_msg("AuthError", "invalid credentials");
    }
    if database != &config.database {
        return err_msg("AuthError", format!("no such database '{database}'"));
    }
    entry.authed.store(true, Ordering::Relaxed);
    Message::LoginOk { session }
}

/// Per-command latency histogram for the dispatch (a closed set of names,
/// each arm one cached handle).
fn cmd_latency(msg: &Message) -> &'static obs::metrics::Histogram {
    match msg {
        Message::Login { .. } => obs::histogram!("wire.server.latency.login"),
        Message::Ping => obs::histogram!("wire.server.latency.ping"),
        Message::Query { .. } => obs::histogram!("wire.server.latency.query"),
        Message::ListFunctions => obs::histogram!("wire.server.latency.list_functions"),
        Message::GetFunction { .. } => obs::histogram!("wire.server.latency.get_function"),
        Message::ExtractInputs { .. } => obs::histogram!("wire.server.latency.extract_inputs"),
        Message::ExtractDelta { .. } => obs::histogram!("wire.server.latency.extract_delta"),
        Message::Traced { .. } => obs::histogram!("wire.server.latency.traced"),
        _ => obs::histogram!("wire.server.latency.other"),
    }
}

/// Short command name for span fields (same closed set as [`cmd_latency`]).
fn cmd_name(msg: &Message) -> &'static str {
    match msg {
        Message::Login { .. } => "login",
        Message::Ping => "ping",
        Message::Query { .. } => "query",
        Message::ListFunctions => "list_functions",
        Message::GetFunction { .. } => "get_function",
        Message::ExtractInputs { .. } => "extract_inputs",
        Message::ExtractDelta { .. } => "extract_delta",
        _ => "other",
    }
}

/// The server's half of a trace id: the client's id with the top bit set,
/// so an in-process client and server never share one capture buffer (and
/// the span-id remap the client applies on merge can never collide).
const SERVER_TRACE_BIT: u64 = 1 << 63;

/// Handle a [`Message::Traced`] envelope (DESIGN §15): decode the inner
/// request, capture every span the engine closes while dispatching it
/// under a `server.command` root, and ship the encoded inner reply plus
/// the captured spans back in a [`Message::TracedReply`]. On a server
/// built without telemetry the span list is simply empty — the inner
/// dispatch is unaffected either way.
fn traced_reply(
    engine: &Engine,
    config: &ServerConfig,
    entry: &SessionEntry,
    session: u64,
    trace: u64,
    inner: &[u8],
) -> Message {
    let msg = match Message::decode(inner) {
        Ok(Message::Traced { .. }) => return err_msg("ProtocolError", "nested traced envelope"),
        Ok(m) => m,
        Err(e) => return err_msg("ProtocolError", e.to_string()),
    };
    let side = trace | SERVER_TRACE_BIT;
    obs::trace::start_capture(side);
    let reply = {
        let _ctx = obs::trace::enter_context(obs::trace::SpanContext {
            trace: side,
            parent: 0,
        });
        let mut span = obs::trace::span_active("server.command");
        span.field("command", cmd_name(&msg));
        dispatch_frame(engine, config, entry, session, msg)
    };
    let spans = obs::trace::take_capture(side)
        .into_iter()
        .map(|r| crate::message::WireSpan {
            id: r.id,
            parent: r.parent,
            name: r.name,
            duration_ns: r.duration_ns,
            fields: r.fields,
        })
        .collect();
    Message::TracedReply {
        spans,
        inner: reply.encode(),
    }
}

/// Build a [`Message::DeltaBlocks`] reply: pickle the fresh inputs,
/// digest the plaintext block grid on the global pool, and run the block
/// codec only over the blocks whose digest the client did not declare.
/// The shipped bodies are bit-identical to what the full container would
/// carry, so the cold path's wire-determinism guarantees extend here.
fn delta_reply(
    config: &ServerConfig,
    options: crate::transfer::TransferOptions,
    transfer_id: u64,
    inputs: &pylite::Value,
    deps: Vec<(String, u64)>,
    client_digests: &[[u8; 32]],
) -> Message {
    let raw = match transfer::pickle_inputs(inputs) {
        Ok(r) => r,
        Err(e) => return err_msg("TransferError", e.to_string()),
    };
    let pool = devharness::pool::global();
    let digests = transfer::block_digests_pooled(pool, &raw, options.effective_block_size());
    let known: std::collections::HashSet<&[u8; 32]> = client_digests.iter().collect();
    let ship: Vec<bool> = digests.iter().map(|d| !known.contains(d)).collect();
    let blocks =
        transfer::encode_delta_blocks(pool, &raw, &options, &config.password, transfer_id, &ship);
    obs::histogram!("transfer.delta.blocks_reused").record((digests.len() - blocks.len()) as u64);
    obs::counter!("transfer.delta.server.blocks_shipped").add(blocks.len() as u64);
    Message::DeltaBlocks {
        options,
        transfer_id,
        raw_len: raw.len() as u64,
        epochs: deps,
        digests,
        blocks,
    }
}

/// Dispatch with per-command latency telemetry (queue wait excluded — it
/// has its own histogram).
fn timed_dispatch(
    engine: &Engine,
    config: &ServerConfig,
    entry: &SessionEntry,
    session: u64,
    msg: Message,
) -> Message {
    if !obs::enabled() {
        return dispatch_frame(engine, config, entry, session, msg);
    }
    let hist = cmd_latency(&msg);
    let started = Instant::now();
    let reply = dispatch_frame(engine, config, entry, session, msg);
    hist.record_duration(started.elapsed());
    reply
}

/// The actual dispatch, free of telemetry. Runs on the writer thread (live
/// engine) or a reader worker (snapshot-hydrated engine) — the engine
/// handed in decides what this command can see.
fn dispatch_frame(
    engine: &Engine,
    config: &ServerConfig,
    entry: &SessionEntry,
    session: u64,
    msg: Message,
) -> Message {
    if let Message::Traced { trace, inner } = msg {
        return traced_reply(engine, config, entry, session, trace, &inner);
    }
    if let Message::Login { .. } = &msg {
        return login_reply(config, entry, session, &msg);
    }
    if !entry.authed.load(Ordering::Relaxed) {
        return err_msg("AuthError", "not logged in");
    }

    match msg {
        Message::Ping => Message::Pong,
        Message::Query { sql } => match engine.execute(&sql) {
            Ok(result) => Message::ResultSet {
                result: WireResult::from_query_result(&result),
                udf_stdout: engine.take_udf_stdout(),
            },
            Err(e) => Message::Error {
                code: e.code.name().to_string(),
                message: e.message.clone(),
                traceback: e.traceback,
            },
        },
        Message::ListFunctions => Message::FunctionList {
            names: engine.function_names(),
        },
        Message::GetFunction { name } => match engine.get_function(&name) {
            Ok(Some(def)) => Message::FunctionInfo {
                name: def.name.clone(),
                params: def
                    .params
                    .iter()
                    .map(|(n, t)| (n.clone(), t.name().to_string()))
                    .collect(),
                return_type: match &def.returns {
                    FunctionReturn::Scalar(t) => t.name().to_string(),
                    FunctionReturn::Table(cols) => {
                        let inner: Vec<String> =
                            cols.iter().map(|(n, t)| format!("{n} {t}")).collect();
                        format!("TABLE({})", inner.join(", "))
                    }
                },
                language: def.language,
                body: def.body,
            },
            Ok(None) => err_msg("CatalogError", format!("no such function '{name}'")),
            Err(e) => err_msg(e.code.name(), e.message),
        },
        Message::ExtractInputs {
            query,
            udf,
            options,
            transfer_id,
        } => match engine.extract_inputs(&query, &udf) {
            Ok(inputs) => {
                // Mix the wire session into the sampling seed: repeated
                // extracts within a session already differ by transfer id,
                // and two sessions against the same engine must not draw
                // identical sample schedules either. Fully reproducible
                // given (engine seed, session, transfer id).
                match transfer::encode_payload(
                    &inputs,
                    &options,
                    &config.password,
                    transfer_id,
                    transfer::derive_sample_seed(engine.rng_seed(), session),
                ) {
                    Ok((payload, raw_len)) => Message::Extracted {
                        payload,
                        raw_len: raw_len as u64,
                        options,
                        transfer_id,
                    },
                    Err(e) => err_msg("TransferError", e.to_string()),
                }
            }
            Err(e) => Message::Error {
                code: e.code.name().to_string(),
                message: e.message.clone(),
                traceback: e.traceback,
            },
        },
        Message::ExtractDelta {
            query,
            udf,
            options,
            transfer_id,
            epochs,
            digests,
        } => {
            if options.sample.is_some() {
                // Samples are drawn fresh per transfer id, so two sampled
                // payloads are never comparable; the client bypasses the
                // cache for them, and a request that didn't is an error.
                return err_msg(
                    "TransferError",
                    "sampled extracts bypass the delta cache (samples are per-transfer)",
                );
            }
            // Epoch check FIRST: when every dependency epoch the client's
            // cache entry was built from still matches, the extract —
            // query re-execution, pickling, KDF, digesting, block codec —
            // is skipped entirely. This is the whole point of the cache:
            // the NotModified answer does zero codec work.
            if !epochs.is_empty()
                && epochs
                    .iter()
                    .all(|(name, epoch)| engine.table_epoch(name) == Some(*epoch))
            {
                obs::counter!("transfer.delta.server.not_modified").inc();
                return Message::DeltaNotModified { transfer_id };
            }
            match engine.extract_inputs_with_deps(&query, &udf) {
                Ok((inputs, deps)) => {
                    delta_reply(config, options, transfer_id, &inputs, deps, &digests)
                }
                Err(e) => Message::Error {
                    code: e.code.name().to_string(),
                    message: e.message.clone(),
                    traceback: e.traceback,
                },
            }
        }
        // Server-only messages arriving at the server are protocol errors.
        other => err_msg(
            "ProtocolError",
            format!("unexpected message from client: {other:?}"),
        ),
    }
}
