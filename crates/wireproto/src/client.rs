//! Client API: connect, query, manage UDFs, extract input data.

use pylite::Value;

use crate::message::{Message, WireError, WireResult};
use crate::server::Server;
use crate::transfer::{self, TransferOptions, TransferStats};
use crate::transport::{ClientTransport, InProcTransport, TcpTransport};

/// Metadata of a stored function, as returned by [`Client::get_function`].
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    pub name: String,
    /// (param name, SQL type name).
    pub params: Vec<(String, String)>,
    pub return_type: String,
    pub language: String,
    /// Function body as stored in the server's meta tables.
    pub body: String,
}

/// A connected, authenticated client.
pub struct Client {
    // Fields below; Debug is implemented manually (the transport is opaque
    // and the password must not leak into logs).
    transport: Box<dyn ClientTransport>,
    password: String,
    next_transfer_id: u64,
    last_udf_stdout: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_transfer_id", &self.next_transfer_id)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connect over the in-process transport (tests / benchmarks / embedded).
    pub fn connect_in_proc(
        server: &Server,
        user: &str,
        password: &str,
        database: &str,
    ) -> Result<Client, WireError> {
        let (sender, session) = server.in_proc_connection();
        let transport = InProcTransport { sender, session };
        Self::login(Box::new(transport), user, password, database)
    }

    /// Connect over TCP.
    pub fn connect_tcp(
        addr: std::net::SocketAddr,
        user: &str,
        password: &str,
        database: &str,
    ) -> Result<Client, WireError> {
        let stream =
            std::net::TcpStream::connect(addr).map_err(|e| WireError::Io(e.to_string()))?;
        let transport = TcpTransport { stream };
        Self::login(Box::new(transport), user, password, database)
    }

    fn login(
        mut transport: Box<dyn ClientTransport>,
        user: &str,
        password: &str,
        database: &str,
    ) -> Result<Client, WireError> {
        let login = Message::Login {
            user: user.to_string(),
            password: password.to_string(),
            database: database.to_string(),
        };
        let reply = transport.round_trip(&login.encode())?;
        match Message::decode(&reply)? {
            Message::LoginOk { .. } => Ok(Client {
                transport,
                password: password.to_string(),
                next_transfer_id: 1,
                last_udf_stdout: String::new(),
            }),
            Message::Error { code, message, .. } if code == "AuthError" => {
                Err(WireError::Auth(message))
            }
            other => Err(WireError::Protocol(format!(
                "unexpected login reply: {other:?}"
            ))),
        }
    }

    fn round_trip(&mut self, msg: &Message) -> Result<Message, WireError> {
        let reply = self.transport.round_trip(&msg.encode())?;
        let decoded = Message::decode(&reply)?;
        if let Message::Error {
            code,
            message,
            traceback,
        } = decoded
        {
            return Err(WireError::Server {
                code,
                message,
                traceback,
            });
        }
        Ok(decoded)
    }

    /// Execute one SQL statement.
    pub fn query(&mut self, sql: &str) -> Result<WireResult, WireError> {
        match self.round_trip(&Message::Query {
            sql: sql.to_string(),
        })? {
            Message::ResultSet { result, udf_stdout } => {
                self.last_udf_stdout = udf_stdout;
                Ok(result)
            }
            other => Err(WireError::Protocol(format!(
                "unexpected query reply: {other:?}"
            ))),
        }
    }

    /// `print` output emitted by server-side UDFs during the last query —
    /// the "print debugging" channel the paper's demo contrasts against.
    pub fn last_udf_stdout(&self) -> &str {
        &self.last_udf_stdout
    }

    /// Names of every stored function.
    pub fn list_functions(&mut self) -> Result<Vec<String>, WireError> {
        match self.round_trip(&Message::ListFunctions)? {
            Message::FunctionList { names } => Ok(names),
            other => Err(WireError::Protocol(format!(
                "unexpected list reply: {other:?}"
            ))),
        }
    }

    /// Full metadata + stored body of one function.
    pub fn get_function(&mut self, name: &str) -> Result<FunctionInfo, WireError> {
        match self.round_trip(&Message::GetFunction {
            name: name.to_string(),
        })? {
            Message::FunctionInfo {
                name,
                params,
                return_type,
                language,
                body,
            } => Ok(FunctionInfo {
                name,
                params,
                return_type,
                language,
                body,
            }),
            other => Err(WireError::Protocol(format!(
                "unexpected function reply: {other:?}"
            ))),
        }
    }

    /// Run the paper's extract function: evaluate `query` server-side with
    /// the call to `udf` intercepted, and transfer its input data using
    /// `options`. Returns the inputs dict and the transfer statistics.
    pub fn extract_inputs(
        &mut self,
        query: &str,
        udf: &str,
        options: TransferOptions,
    ) -> Result<(Value, TransferStats), WireError> {
        let transfer_id = self.next_transfer_id;
        self.next_transfer_id += 1;
        match self.round_trip(&Message::ExtractInputs {
            query: query.to_string(),
            udf: udf.to_string(),
            options,
            transfer_id,
        })? {
            Message::Extracted {
                payload,
                raw_len,
                options,
                transfer_id,
            } => {
                let stats = TransferStats {
                    raw_len: raw_len as usize,
                    wire_len: payload.len(),
                };
                let value =
                    transfer::decode_payload(&payload, &options, &self.password, transfer_id)
                        .map_err(|e| WireError::Protocol(e.to_string()))?;
                Ok((value, stats))
            }
            other => Err(WireError::Protocol(format!(
                "unexpected extract reply: {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.round_trip(&Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(WireError::Protocol(format!(
                "unexpected ping reply: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireValue;
    use crate::server::ServerConfig;

    fn demo_server() -> Server {
        Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            db.execute("INSERT INTO numbers VALUES (1), (2), (3), (4), (5), (6)")
                .unwrap();
            db.execute(
                "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\nmean = 0\nfor i in range(0, len(column)):\n    mean += column[i]\nmean = mean / len(column)\ndistance = 0\nfor i in range(0, len(column)):\n    distance += abs(column[i] - mean)\nreturn distance / len(column)\n}",
            )
            .unwrap();
        })
    }

    fn connect(server: &Server) -> Client {
        Client::connect_in_proc(server, "monetdb", "monetdb", "demo").unwrap()
    }

    #[test]
    fn login_and_query() {
        let server = demo_server();
        let mut client = connect(&server);
        let t = client
            .query("SELECT sum(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], WireValue::Int(21));
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn bad_credentials_rejected() {
        let server = demo_server();
        let err = Client::connect_in_proc(&server, "monetdb", "wrongpw", "demo").unwrap_err();
        assert!(matches!(err, WireError::Auth(_)));
        let err = Client::connect_in_proc(&server, "monetdb", "monetdb", "nodb").unwrap_err();
        assert!(matches!(err, WireError::Auth(_)));
        server.shutdown();
    }

    #[test]
    fn unauthenticated_session_rejected() {
        let server = demo_server();
        let (sender, session) = server.in_proc_connection();
        let mut transport = InProcTransport { sender, session };
        let reply = transport
            .round_trip(
                &Message::Query {
                    sql: "SELECT 1".into(),
                }
                .encode(),
            )
            .unwrap();
        match Message::decode(&reply).unwrap() {
            Message::Error { code, .. } => assert_eq!(code, "AuthError"),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn udf_execution_over_the_wire() {
        let server = demo_server();
        let mut client = connect(&server);
        let t = client
            .query("SELECT mean_deviation(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], WireValue::Double(1.5));
        server.shutdown();
    }

    #[test]
    fn server_side_error_propagates_with_traceback() {
        let server = demo_server();
        let mut client = connect(&server);
        client
            .query("CREATE FUNCTION boom(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nreturn i / 0\n}")
            .unwrap();
        let err = client.query("SELECT boom(i) FROM numbers").unwrap_err();
        match err {
            WireError::Server {
                code, traceback, ..
            } => {
                assert_eq!(code, "UdfError");
                assert!(traceback.unwrap().contains("line 1"));
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn list_and_get_functions() {
        let server = demo_server();
        let mut client = connect(&server);
        let names = client.list_functions().unwrap();
        assert_eq!(names, vec!["mean_deviation"]);
        let info = client.get_function("mean_deviation").unwrap();
        assert_eq!(
            info.params,
            vec![("column".to_string(), "INTEGER".to_string())]
        );
        assert_eq!(info.return_type, "DOUBLE");
        assert!(info.body.contains("distance"));
        assert!(client.get_function("ghost").is_err());
        server.shutdown();
    }

    #[test]
    fn extract_inputs_round_trip_all_option_combinations() {
        let server = demo_server();
        let mut client = connect(&server);
        for (compress, encrypt) in [(false, false), (true, false), (false, true), (true, true)] {
            let options = TransferOptions {
                compress,
                encrypt,
                sample: None,
            };
            let (value, stats) = client
                .extract_inputs(
                    "SELECT mean_deviation(i) FROM numbers",
                    "mean_deviation",
                    options,
                )
                .unwrap();
            let Value::Dict(d) = &value else { panic!() };
            let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
            match col {
                Value::Array(a) => assert_eq!(a.len(), 6),
                other => panic!("{other:?}"),
            }
            assert!(stats.raw_len > 0);
        }
        server.shutdown();
    }

    #[test]
    fn extract_with_sampling_reduces_rows_and_bytes() {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE big (i INTEGER)").unwrap();
            let values: Vec<String> = (0..2000).map(|i| format!("({i})")).collect();
            db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
                .unwrap();
            db.execute(
                "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return 0.0 }",
            )
            .unwrap();
        });
        let mut client = connect(&server);
        let (full, full_stats) = client
            .extract_inputs("SELECT f(i) FROM big", "f", TransferOptions::plain())
            .unwrap();
        let (sampled, sampled_stats) = client
            .extract_inputs("SELECT f(i) FROM big", "f", TransferOptions::sampled(50))
            .unwrap();
        let arr_len = |v: &Value| {
            let Value::Dict(d) = v else { panic!() };
            let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
            let Value::Array(a) = col else { panic!() };
            a.len()
        };
        assert_eq!(arr_len(&full), 2000);
        assert_eq!(arr_len(&sampled), 50);
        assert!(sampled_stats.wire_len < full_stats.wire_len / 10);
        server.shutdown();
    }

    #[test]
    fn tcp_transport_end_to_end() {
        let server = demo_server();
        let addr = server.listen_tcp().unwrap();
        let mut client = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap();
        let t = client
            .query("SELECT count(*) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], WireValue::Int(6));
        // Second client concurrently.
        let mut client2 = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap();
        client2.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn udf_print_output_travels_to_client() {
        let server = demo_server();
        let mut client = connect(&server);
        client
            .query("CREATE FUNCTION noisy(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nprint('debugging', len(i))\nreturn i\n}")
            .unwrap();
        client.query("SELECT noisy(i) FROM numbers").unwrap();
        assert_eq!(client.last_udf_stdout(), "debugging 6\n");
        server.shutdown();
    }
}
