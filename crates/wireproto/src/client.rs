//! Client API: connect, query, manage UDFs, extract input data.
//!
//! # Robustness
//!
//! A [`Client`] carries a [`RetryPolicy`]. With retries enabled,
//! **idempotent** operations — [`Client::ping`], read-only
//! [`Client::query`] (`SELECT …`), [`Client::list_functions`],
//! [`Client::get_function`], [`Client::extract_inputs`] — transparently
//! reconnect, re-authenticate and retry on transient errors (IO failures,
//! frame-checksum mismatches). Non-idempotent statements are never
//! replayed: a transient failure surfaces immediately as
//! [`WireError::RetriesExhausted`] with `attempts == 1`, telling the
//! caller the statement may or may not have executed server-side.

use std::time::{Duration, Instant};

use devharness::Rng;
use pylite::Value;

use crate::delta::{self, BlockCache, CacheEntry};
use crate::fault::{FaultInjectingTransport, FaultPolicy, FaultStats, FaultStatsHandle};
use crate::message::{Message, WireError, WireResult};
use crate::retry::RetryPolicy;
use crate::server::Server;
use crate::transfer::{self, TransferOptions, TransferStats};
use crate::transport::{ClientTransport, InProcTransport, TcpTransport};

/// Default per-syscall read/write deadline on TCP connections: generous
/// enough for any legitimate reply, finite so a dead peer cannot hang the
/// client forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Connection-time knobs: retry policy, socket deadlines and (for tests
/// and benchmarks) deterministic fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientOptions {
    /// Retry policy for idempotent operations (default: disabled).
    pub retry: RetryPolicy,
    /// Seed of the backoff-jitter stream (retries are deterministic given
    /// the seed).
    pub retry_seed: u64,
    /// Per-read socket deadline (TCP only; `None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline (TCP only; `None` blocks forever).
    pub write_timeout: Option<Duration>,
    /// Wrap the transport in a [`FaultInjectingTransport`] with this
    /// policy (tests/benchmarks).
    pub fault: Option<FaultPolicy>,
    /// Worker threads for decoding chunked transfer payloads: `None`
    /// shares the process-global pool (sized by `DEVUDF_POOL_THREADS`),
    /// `Some(n)` gives this client its own `n`-thread pool. Local knob
    /// only — never crosses the wire, never changes the bytes on it.
    pub parallelism: Option<usize>,
    /// Content-addressed delta cache for repeated extracts: `Some(n)`
    /// keeps up to `n` extract payloads ([`crate::delta::BlockCache`])
    /// and upgrades [`Client::extract_inputs`] to the `ExtractDelta`
    /// protocol (falling back transparently against older servers);
    /// `None` disables caching and always runs the classic full extract.
    pub cache: Option<usize>,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            retry: RetryPolicy::none(),
            retry_seed: 0,
            read_timeout: Some(DEFAULT_IO_TIMEOUT),
            write_timeout: Some(DEFAULT_IO_TIMEOUT),
            fault: None,
            parallelism: None,
            cache: None,
        }
    }
}

impl ClientOptions {
    /// Default options with the given retry policy.
    pub fn with_retry(retry: RetryPolicy) -> ClientOptions {
        ClientOptions {
            retry,
            ..ClientOptions::default()
        }
    }
}

/// Metadata of a stored function, as returned by [`Client::get_function`].
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionInfo {
    pub name: String,
    /// (param name, SQL type name).
    pub params: Vec<(String, String)>,
    pub return_type: String,
    pub language: String,
    /// Function body as stored in the server's meta tables.
    pub body: String,
}

/// A connected, authenticated client.
pub struct Client {
    // Fields below; Debug is implemented manually (the transport is opaque
    // and the password must not leak into logs).
    transport: Box<dyn ClientTransport>,
    user: String,
    password: String,
    database: String,
    retry: RetryPolicy,
    rng: Rng,
    next_transfer_id: u64,
    last_udf_stdout: String,
    fault_stats: Option<FaultStatsHandle>,
    /// Private decode pool when `ClientOptions::parallelism` was set;
    /// `None` falls back to the process-global pool.
    pool: Option<devharness::Pool>,
    /// Delta block cache when `ClientOptions::cache` was set.
    cache: Option<BlockCache>,
    /// Cleared permanently the first time the server rejects the
    /// `ExtractDelta` tag — every later extract takes the classic path
    /// without re-probing (one wasted round trip per connection, max).
    delta_supported: bool,
    /// Cleared permanently the first time the server rejects the `Traced`
    /// envelope tag — every later [`Client::query_traced`] degrades to a
    /// plain query without re-probing (same version gate as deltas).
    trace_supported: bool,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_transfer_id", &self.next_transfer_id)
            .finish_non_exhaustive()
    }
}

/// Per-operation latency histogram, resolved to a cached handle (the
/// names are a closed set, so each arm is one `static OnceLock`).
fn op_latency(op: &'static str) -> &'static obs::metrics::Histogram {
    match op {
        "ping" => obs::histogram!("wire.client.latency.ping"),
        "query" => obs::histogram!("wire.client.latency.query"),
        "list_functions" => obs::histogram!("wire.client.latency.list_functions"),
        "get_function" => obs::histogram!("wire.client.latency.get_function"),
        "extract_inputs" => obs::histogram!("wire.client.latency.extract_inputs"),
        "extract_delta" => obs::histogram!("wire.client.latency.extract_delta"),
        _ => obs::histogram!("wire.client.latency.other"),
    }
}

/// A read-only statement is safe to replay after a transient failure; a
/// write may have executed server-side before the reply was lost.
fn sql_is_idempotent(sql: &str) -> bool {
    let t = sql.trim_start();
    ["select", "values", "explain"]
        .iter()
        .any(|kw| t.len() >= kw.len() && t[..kw.len()].eq_ignore_ascii_case(kw))
}

impl Client {
    /// Connect over the in-process transport (tests / benchmarks / embedded).
    pub fn connect_in_proc(
        server: &Server,
        user: &str,
        password: &str,
        database: &str,
    ) -> Result<Client, WireError> {
        Self::connect_in_proc_with(server, user, password, database, ClientOptions::default())
    }

    /// Connect in-process with explicit retry/fault options.
    pub fn connect_in_proc_with(
        server: &Server,
        user: &str,
        password: &str,
        database: &str,
        options: ClientOptions,
    ) -> Result<Client, WireError> {
        let (core, session) = server.in_proc_connection();
        let transport = InProcTransport { core, session };
        Self::login(Box::new(transport), user, password, database, options)
    }

    /// Connect over TCP with the default [`ClientOptions`] (30 s socket
    /// deadlines, retries disabled).
    pub fn connect_tcp(
        addr: std::net::SocketAddr,
        user: &str,
        password: &str,
        database: &str,
    ) -> Result<Client, WireError> {
        Self::connect_tcp_with(addr, user, password, database, ClientOptions::default())
    }

    /// Connect over TCP with explicit retry/deadline/fault options.
    pub fn connect_tcp_with(
        addr: std::net::SocketAddr,
        user: &str,
        password: &str,
        database: &str,
        options: ClientOptions,
    ) -> Result<Client, WireError> {
        let transport = TcpTransport::connect(addr, options.read_timeout, options.write_timeout)?;
        Self::login(Box::new(transport), user, password, database, options)
    }

    fn login(
        transport: Box<dyn ClientTransport>,
        user: &str,
        password: &str,
        database: &str,
        options: ClientOptions,
    ) -> Result<Client, WireError> {
        let mut fault_stats = None;
        let transport: Box<dyn ClientTransport> = match options.fault {
            Some(policy) => {
                let injector = FaultInjectingTransport::wrap(transport, policy);
                fault_stats = Some(injector.stats_handle());
                Box::new(injector)
            }
            None => transport,
        };
        let mut client = Client {
            transport,
            user: user.to_string(),
            password: password.to_string(),
            database: database.to_string(),
            retry: options.retry,
            rng: Rng::new(options.retry_seed),
            next_transfer_id: 1,
            last_udf_stdout: String::new(),
            fault_stats,
            pool: options.parallelism.map(devharness::Pool::new),
            cache: options.cache.map(BlockCache::new),
            delta_supported: true,
            trace_supported: true,
        };
        // Login is idempotent: under fault injection / flaky networks the
        // initial handshake retries like any read.
        let started = Instant::now();
        let result = client.with_retry(true, false, |c| c.authenticate());
        obs::histogram!("wire.client.latency.login").record_duration(started.elapsed());
        result?;
        Ok(client)
    }

    /// One login round trip over the current transport (no retry).
    fn authenticate(&mut self) -> Result<(), WireError> {
        let login = Message::Login {
            user: self.user.clone(),
            password: self.password.clone(),
            database: self.database.clone(),
        };
        let frame = login.encode();
        obs::counter!("wire.client.bytes_out").add(frame.len() as u64);
        let reply = self.transport.round_trip(&frame)?;
        obs::counter!("wire.client.bytes_in").add(reply.len() as u64);
        match Message::decode(&reply)? {
            Message::LoginOk { .. } => Ok(()),
            Message::Error { code, message, .. } if code == "AuthError" => {
                Err(WireError::Auth(message))
            }
            other => Err(WireError::Protocol(format!(
                "unexpected login reply: {other:?}"
            ))),
        }
    }

    /// Exact counts of what the fault injector did to this connection, if
    /// one was configured ([`ClientOptions::fault`]).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault_stats.as_ref().map(FaultStatsHandle::get)
    }

    /// One request/reply round trip over the current transport (no retry).
    fn round_trip(&mut self, msg: &Message) -> Result<Message, WireError> {
        let frame = msg.encode();
        obs::counter!("wire.client.bytes_out").add(frame.len() as u64);
        let reply = self.transport.round_trip(&frame)?;
        obs::counter!("wire.client.bytes_in").add(reply.len() as u64);
        let decoded = Message::decode(&reply)?;
        if let Message::Error {
            code,
            message,
            traceback,
        } = decoded
        {
            // Backpressure gets its own typed error: it is retryable even
            // for writes (the server refused before executing anything).
            if code == "ServerBusy" {
                return Err(WireError::Busy(message));
            }
            return Err(WireError::Server {
                code,
                message,
                traceback,
            });
        }
        Ok(decoded)
    }

    /// Run `op` under the client's [`RetryPolicy`].
    ///
    /// Transient errors on an idempotent `op` trigger reconnect (+ reauth
    /// unless `op` *is* the login) and a backoff-then-retry, until the
    /// policy's attempt budget or overall deadline is spent — then the
    /// last error surfaces wrapped in [`WireError::RetriesExhausted`].
    /// Non-idempotent ops are never replayed. With retries disabled the
    /// first error surfaces raw, preserving fail-fast semantics.
    fn with_retry<T>(
        &mut self,
        idempotent: bool,
        reauth: bool,
        op: impl Fn(&mut Client) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let started = Instant::now();
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            let err = match op(self) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if !self.retry.enabled() || !err.is_transient() {
                return Err(err);
            }
            // `Busy` means the server's bounded queue refused the command
            // before execution started, so replaying can never double-run
            // it — the no-replay rule for non-idempotent ops exempts it.
            if !idempotent && !matches!(err, WireError::Busy(_)) {
                return Err(WireError::RetriesExhausted {
                    attempts: 1,
                    last: Box::new(err),
                    elapsed: started.elapsed(),
                });
            }
            let deadline_spent = self.retry.deadline.is_some_and(|d| started.elapsed() >= d);
            if attempts >= self.retry.max_attempts || deadline_spent {
                return Err(WireError::RetriesExhausted {
                    attempts,
                    last: Box::new(err),
                    elapsed: started.elapsed(),
                });
            }
            obs::counter!("wire.client.retries").inc();
            let mut backoff = self.retry.backoff(attempts, &mut self.rng);
            if let Some(d) = self.retry.deadline {
                // Never sleep past the overall deadline.
                backoff = backoff.min(d.saturating_sub(started.elapsed()));
            }
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            // A busy server refused a well-formed request on a healthy
            // connection: back off and resend, no reconnect ceremony.
            if matches!(err, WireError::Busy(_)) {
                continue;
            }
            // Reconnect + reauth; failures here surface on the next
            // attempt (the op fails again and consumes the budget).
            obs::counter!("wire.client.reconnects").inc();
            if self.transport.reconnect().is_ok() && reauth {
                match self.authenticate() {
                    Ok(()) | Err(WireError::Io(_)) | Err(WireError::Protocol(_)) => {}
                    // Deterministic auth/server failures will not improve
                    // with more attempts — surface them now.
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// One retried request/reply exchange (helper for the public calls),
    /// recording a `wire.client.latency.<op>` observation covering all
    /// attempts.
    fn call(
        &mut self,
        op: &'static str,
        msg: &Message,
        idempotent: bool,
    ) -> Result<Message, WireError> {
        if !obs::enabled() {
            return self.with_retry(idempotent, true, |c| c.round_trip(msg));
        }
        let started = Instant::now();
        let result = self.with_retry(idempotent, true, |c| c.round_trip(msg));
        op_latency(op).record_duration(started.elapsed());
        result
    }

    /// Execute one SQL statement. `SELECT`s retry under the client's
    /// [`RetryPolicy`]; writes are never replayed.
    pub fn query(&mut self, sql: &str) -> Result<WireResult, WireError> {
        let msg = Message::Query {
            sql: sql.to_string(),
        };
        match self.call("query", &msg, sql_is_idempotent(sql))? {
            Message::ResultSet { result, udf_stdout } => {
                self.last_udf_stdout = udf_stdout;
                Ok(result)
            }
            other => Err(WireError::Protocol(format!(
                "unexpected query reply: {other:?}"
            ))),
        }
    }

    /// Execute one SQL statement inside a client-minted trace (DESIGN
    /// §15). The query travels wrapped in a [`Message::Traced`] envelope;
    /// the server captures every span it closes while executing and ships
    /// them back, and the client returns the full set — its own
    /// `client.query` / `client.wire` spans plus the server's, remapped
    /// into one id space and stitched under the wire span — ready for
    /// [`obs::trace::assemble`] / [`obs::trace::render_tree`].
    ///
    /// Degrades transparently in every direction: with telemetry disabled
    /// (or compiled out) the frame sent is byte-identical to
    /// [`Client::query`] and the span list is empty; against a server
    /// that predates the envelope the first attempt fails on the unknown
    /// tag and the client permanently falls back to plain queries.
    pub fn query_traced(
        &mut self,
        sql: &str,
    ) -> Result<(WireResult, Vec<obs::trace::SpanRecord>), WireError> {
        let trace = obs::trace::new_trace_id();
        if trace == 0 || !self.trace_supported {
            return Ok((self.query(sql)?, Vec::new()));
        }
        obs::trace::start_capture(trace);
        let ctx = obs::trace::enter_context(obs::trace::SpanContext { trace, parent: 0 });
        let wire_span_id;
        let exchange = {
            let mut qspan = obs::trace::span_active("client.query");
            qspan.field("sql", sql);
            let envelope = Message::Traced {
                trace,
                inner: Message::Query {
                    sql: sql.to_string(),
                }
                .encode(),
            };
            let bytes_out = envelope.encode().len();
            let mut wspan = obs::trace::span_active("client.wire");
            wire_span_id = wspan.id();
            wspan.field("bytes_out", bytes_out);
            match self.call("query", &envelope, sql_is_idempotent(sql)) {
                Ok(Message::TracedReply { spans, inner }) => {
                    wspan.field("bytes_in", inner.len());
                    Ok((spans, inner))
                }
                Ok(other) => Err(WireError::Protocol(format!(
                    "unexpected traced reply: {other:?}"
                ))),
                Err(e) => Err(e),
            }
        };
        drop(ctx);
        let mut records = obs::trace::take_capture(trace);
        let (server_spans, inner) = match exchange {
            Ok(v) => v,
            Err(WireError::Server {
                ref code,
                ref message,
                ..
            }) if code == "ProtocolError" && message.contains("unknown message tag") => {
                // Old-format server: remember and repeat as a plain query.
                self.trace_supported = false;
                obs::counter!("wire.client.trace_fallbacks").inc();
                return Ok((self.query(sql)?, Vec::new()));
            }
            Err(e) => return Err(e),
        };
        // Stitch: server span ids live in their own namespace — shift
        // them into the top half of the id space (client ids are minted
        // from 1 and can never reach it) and hang the server's roots off
        // the wire span that carried them.
        const SERVER_BIT: u64 = 1 << 63;
        records.extend(server_spans.into_iter().map(|s| obs::trace::SpanRecord {
            id: s.id | SERVER_BIT,
            parent: if s.parent == 0 {
                wire_span_id
            } else {
                s.parent | SERVER_BIT
            },
            name: s.name,
            duration_ns: s.duration_ns,
            fields: s.fields,
        }));
        match Message::decode(&inner)? {
            Message::ResultSet { result, udf_stdout } => {
                self.last_udf_stdout = udf_stdout;
                Ok((result, records))
            }
            Message::Error {
                code,
                message,
                traceback,
            } => Err(WireError::Server {
                code,
                message,
                traceback,
            }),
            other => Err(WireError::Protocol(format!(
                "unexpected query reply: {other:?}"
            ))),
        }
    }

    /// `print` output emitted by server-side UDFs during the last query —
    /// the "print debugging" channel the paper's demo contrasts against.
    pub fn last_udf_stdout(&self) -> &str {
        &self.last_udf_stdout
    }

    /// Names of every stored function.
    pub fn list_functions(&mut self) -> Result<Vec<String>, WireError> {
        match self.call("list_functions", &Message::ListFunctions, true)? {
            Message::FunctionList { names } => Ok(names),
            other => Err(WireError::Protocol(format!(
                "unexpected list reply: {other:?}"
            ))),
        }
    }

    /// Full metadata + stored body of one function.
    pub fn get_function(&mut self, name: &str) -> Result<FunctionInfo, WireError> {
        let msg = Message::GetFunction {
            name: name.to_string(),
        };
        match self.call("get_function", &msg, true)? {
            Message::FunctionInfo {
                name,
                params,
                return_type,
                language,
                body,
            } => Ok(FunctionInfo {
                name,
                params,
                return_type,
                language,
                body,
            }),
            other => Err(WireError::Protocol(format!(
                "unexpected function reply: {other:?}"
            ))),
        }
    }

    /// Run the paper's extract function: evaluate `query` server-side with
    /// the call to `udf` intercepted, and transfer its input data using
    /// `options`. Returns the inputs dict and the transfer statistics.
    ///
    /// With a delta cache configured ([`ClientOptions::cache`]) and no
    /// sampling requested, the call goes through the `ExtractDelta`
    /// protocol: unchanged payloads cost zero payload bytes, partially
    /// changed ones ship only the changed blocks. Against a server that
    /// predates the protocol the first attempt fails on the unknown
    /// message tag and the client permanently falls back to the classic
    /// full extract — same results, PR 4 bytes.
    pub fn extract_inputs(
        &mut self,
        query: &str,
        udf: &str,
        options: TransferOptions,
    ) -> Result<(Value, TransferStats), WireError> {
        if self.cache.is_some() && self.delta_supported && options.sample.is_none() {
            match self.extract_delta(query, udf, options) {
                Err(WireError::Server {
                    ref code,
                    ref message,
                    ..
                }) if code == "ProtocolError" && message.contains("unknown message tag") => {
                    // Old-format server: remember and fall through to the
                    // classic extract below.
                    self.delta_supported = false;
                    obs::counter!("transfer.delta.fallbacks").inc();
                }
                other => return other,
            }
        }
        let transfer_id = self.next_transfer_id;
        self.next_transfer_id += 1;
        let msg = Message::ExtractInputs {
            query: query.to_string(),
            udf: udf.to_string(),
            options,
            transfer_id,
        };
        match self.call("extract_inputs", &msg, true)? {
            Message::Extracted {
                payload,
                raw_len,
                options,
                transfer_id,
            } => {
                let stats = TransferStats {
                    raw_len: raw_len as usize,
                    wire_len: payload.len(),
                };
                let pool = self
                    .pool
                    .as_ref()
                    .unwrap_or_else(|| devharness::pool::global());
                let value = transfer::decode_payload_with(
                    pool,
                    &payload,
                    &options,
                    &self.password,
                    transfer_id,
                )
                .map_err(|e| WireError::Protocol(e.to_string()))?;
                Ok((value, stats))
            }
            other => Err(WireError::Protocol(format!(
                "unexpected extract reply: {other:?}"
            ))),
        }
    }

    /// One `ExtractDelta` round trip: claim what the cache holds, then
    /// rebuild the payload from the reply (`NotModified` → pure cache,
    /// `DeltaBlocks` → shipped blocks + cached blocks by digest).
    fn extract_delta(
        &mut self,
        query: &str,
        udf: &str,
        options: TransferOptions,
    ) -> Result<(Value, TransferStats), WireError> {
        let transfer_id = self.next_transfer_id;
        self.next_transfer_id += 1;
        let fp = delta::fingerprint(query, udf, &options);
        let (epochs, digests) = match self.cache.as_mut().and_then(|c| c.get(fp)) {
            Some(entry) => (entry.epochs.clone(), entry.digests.clone()),
            None => (Vec::new(), Vec::new()),
        };
        let msg = Message::ExtractDelta {
            query: query.to_string(),
            udf: udf.to_string(),
            options,
            transfer_id,
            epochs,
            digests,
        };
        match self.call("extract_delta", &msg, true)? {
            Message::DeltaNotModified { .. } => {
                let cache = self.cache.as_mut().expect("delta path requires a cache");
                let entry = cache.get(fp).ok_or_else(|| {
                    WireError::Protocol(
                        "server answered NotModified for an extract not in the cache".into(),
                    )
                })?;
                obs::counter!("transfer.delta.not_modified").inc();
                obs::counter!("transfer.delta.bytes_saved").add(entry.raw_len as u64);
                let raw = entry.reassemble();
                let stats = TransferStats {
                    raw_len: entry.raw_len,
                    wire_len: 0,
                };
                let value = transfer::unpickle_inputs(&raw)
                    .map_err(|e| WireError::Protocol(e.to_string()))?;
                Ok((value, stats))
            }
            Message::DeltaBlocks {
                options: reply_options,
                transfer_id: reply_id,
                raw_len,
                epochs,
                digests,
                blocks,
            } => {
                // The block grid is client-chosen: a reply under different
                // options (or the wrong transfer id) is not ours.
                if reply_options != options || reply_id != transfer_id {
                    return Err(WireError::Protocol(
                        "delta reply does not match the request".into(),
                    ));
                }
                let raw_len = usize::try_from(raw_len)
                    .map_err(|_| WireError::Protocol("delta raw length out of range".into()))?;
                let block_size = options.effective_block_size();
                let nblocks = digests.len();
                let wire_len =
                    blocks.iter().map(|b| b.body.len()).sum::<usize>() + 32 * digests.len();
                let raw = {
                    let cached_map = match self.cache.as_mut().and_then(|c| c.get(fp)) {
                        Some(entry) => entry.digest_map(),
                        None => std::collections::HashMap::new(),
                    };
                    let pool = self
                        .pool
                        .as_ref()
                        .unwrap_or_else(|| devharness::pool::global());
                    transfer::reconstruct_delta(
                        pool,
                        raw_len,
                        &options,
                        &self.password,
                        transfer_id,
                        &digests,
                        &blocks,
                        &cached_map,
                    )
                    .map_err(|e| WireError::Protocol(e.to_string()))?
                };
                // Raw bytes that did NOT cross the wire thanks to block
                // reuse (grid arithmetic is safe: reconstruct validated
                // the digest table against raw_len and every index).
                let shipped_raw: usize = blocks
                    .iter()
                    .map(|b| {
                        if b.index as usize + 1 == nblocks {
                            raw_len - (nblocks - 1) * block_size
                        } else {
                            block_size
                        }
                    })
                    .sum();
                if blocks.len() < nblocks {
                    obs::counter!("transfer.delta.hits").inc();
                } else {
                    obs::counter!("transfer.delta.misses").inc();
                }
                obs::counter!("transfer.delta.bytes_saved")
                    .add(raw_len.saturating_sub(shipped_raw) as u64);
                let entry = CacheEntry::from_raw(&raw, block_size, epochs);
                self.cache
                    .as_mut()
                    .expect("delta path requires a cache")
                    .insert(fp, entry);
                let stats = TransferStats { raw_len, wire_len };
                let value = transfer::unpickle_inputs(&raw)
                    .map_err(|e| WireError::Protocol(e.to_string()))?;
                Ok((value, stats))
            }
            other => Err(WireError::Protocol(format!(
                "unexpected delta reply: {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.call("ping", &Message::Ping, true)? {
            Message::Pong => Ok(()),
            other => Err(WireError::Protocol(format!(
                "unexpected ping reply: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireValue;
    use crate::server::ServerConfig;

    fn demo_server() -> Server {
        Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE numbers (i INTEGER)").unwrap();
            db.execute("INSERT INTO numbers VALUES (1), (2), (3), (4), (5), (6)")
                .unwrap();
            db.execute(
                "CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\nmean = 0\nfor i in range(0, len(column)):\n    mean += column[i]\nmean = mean / len(column)\ndistance = 0\nfor i in range(0, len(column)):\n    distance += abs(column[i] - mean)\nreturn distance / len(column)\n}",
            )
            .unwrap();
        })
    }

    fn connect(server: &Server) -> Client {
        Client::connect_in_proc(server, "monetdb", "monetdb", "demo").unwrap()
    }

    #[test]
    fn login_and_query() {
        let server = demo_server();
        let mut client = connect(&server);
        let t = client
            .query("SELECT sum(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], WireValue::Int(21));
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn bad_credentials_rejected() {
        let server = demo_server();
        let err = Client::connect_in_proc(&server, "monetdb", "wrongpw", "demo").unwrap_err();
        assert!(matches!(err, WireError::Auth(_)));
        let err = Client::connect_in_proc(&server, "monetdb", "monetdb", "nodb").unwrap_err();
        assert!(matches!(err, WireError::Auth(_)));
        server.shutdown();
    }

    #[test]
    fn unauthenticated_session_rejected() {
        let server = demo_server();
        let (core, session) = server.in_proc_connection();
        let mut transport = InProcTransport { core, session };
        let reply = transport
            .round_trip(
                &Message::Query {
                    sql: "SELECT 1".into(),
                }
                .encode(),
            )
            .unwrap();
        match Message::decode(&reply).unwrap() {
            Message::Error { code, .. } => assert_eq!(code, "AuthError"),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn udf_execution_over_the_wire() {
        let server = demo_server();
        let mut client = connect(&server);
        let t = client
            .query("SELECT mean_deviation(i) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], WireValue::Double(1.5));
        server.shutdown();
    }

    #[test]
    fn server_side_error_propagates_with_traceback() {
        let server = demo_server();
        let mut client = connect(&server);
        client
            .query("CREATE FUNCTION boom(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nreturn i / 0\n}")
            .unwrap();
        let err = client.query("SELECT boom(i) FROM numbers").unwrap_err();
        match err {
            WireError::Server {
                code, traceback, ..
            } => {
                assert_eq!(code, "UdfError");
                assert!(traceback.unwrap().contains("line 1"));
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn list_and_get_functions() {
        let server = demo_server();
        let mut client = connect(&server);
        let names = client.list_functions().unwrap();
        assert_eq!(names, vec!["mean_deviation"]);
        let info = client.get_function("mean_deviation").unwrap();
        assert_eq!(
            info.params,
            vec![("column".to_string(), "INTEGER".to_string())]
        );
        assert_eq!(info.return_type, "DOUBLE");
        assert!(info.body.contains("distance"));
        assert!(client.get_function("ghost").is_err());
        server.shutdown();
    }

    #[test]
    fn extract_inputs_round_trip_all_option_combinations() {
        let server = demo_server();
        let mut client = connect(&server);
        for (compress, encrypt) in [(false, false), (true, false), (false, true), (true, true)] {
            let options = TransferOptions {
                compress,
                encrypt,
                ..Default::default()
            };
            let (value, stats) = client
                .extract_inputs(
                    "SELECT mean_deviation(i) FROM numbers",
                    "mean_deviation",
                    options,
                )
                .unwrap();
            let Value::Dict(d) = &value else { panic!() };
            let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
            match col {
                Value::Array(a) => assert_eq!(a.len(), 6),
                other => panic!("{other:?}"),
            }
            assert!(stats.raw_len > 0);
        }
        server.shutdown();
    }

    #[test]
    fn extract_with_private_decode_pool_matches_global() {
        let server = demo_server();
        let pooled_opts = ClientOptions {
            parallelism: Some(2),
            ..ClientOptions::default()
        };
        let mut pooled =
            Client::connect_in_proc_with(&server, "monetdb", "monetdb", "demo", pooled_opts)
                .unwrap();
        let mut shared = connect(&server);
        let transfer = TransferOptions {
            compress: true,
            encrypt: true,
            ..Default::default()
        };
        let (a, _) = pooled
            .extract_inputs(
                "SELECT mean_deviation(i) FROM numbers",
                "mean_deviation",
                transfer,
            )
            .unwrap();
        let (b, _) = shared
            .extract_inputs(
                "SELECT mean_deviation(i) FROM numbers",
                "mean_deviation",
                transfer,
            )
            .unwrap();
        assert!(a.py_eq(&b));
        server.shutdown();
    }

    #[test]
    fn extract_with_sampling_reduces_rows_and_bytes() {
        let server = Server::start(ServerConfig::new("demo", "monetdb", "monetdb"), |db| {
            db.execute("CREATE TABLE big (i INTEGER)").unwrap();
            let values: Vec<String> = (0..2000).map(|i| format!("({i})")).collect();
            db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
                .unwrap();
            db.execute(
                "CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return 0.0 }",
            )
            .unwrap();
        });
        let mut client = connect(&server);
        let (full, full_stats) = client
            .extract_inputs("SELECT f(i) FROM big", "f", TransferOptions::plain())
            .unwrap();
        let (sampled, sampled_stats) = client
            .extract_inputs("SELECT f(i) FROM big", "f", TransferOptions::sampled(50))
            .unwrap();
        let arr_len = |v: &Value| {
            let Value::Dict(d) = v else { panic!() };
            let col = d.borrow().get(&Value::str("column")).unwrap().unwrap();
            let Value::Array(a) = col else { panic!() };
            a.len()
        };
        assert_eq!(arr_len(&full), 2000);
        assert_eq!(arr_len(&sampled), 50);
        assert!(sampled_stats.wire_len < full_stats.wire_len / 10);
        server.shutdown();
    }

    #[test]
    fn tcp_transport_end_to_end() {
        let server = demo_server();
        let addr = server.listen_tcp().unwrap();
        let mut client = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap();
        let t = client
            .query("SELECT count(*) FROM numbers")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], WireValue::Int(6));
        // Second client concurrently.
        let mut client2 = Client::connect_tcp(addr, "monetdb", "monetdb", "demo").unwrap();
        client2.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn retries_exhausted_preserves_cause_and_elapsed() {
        let server = demo_server();
        let options = ClientOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                deadline: None,
            },
            // Every frame is dropped, so login itself exhausts the budget.
            fault: Some(crate::fault::FaultPolicy::black_hole(11)),
            ..ClientOptions::default()
        };
        let err = Client::connect_in_proc_with(&server, "monetdb", "monetdb", "demo", options)
            .unwrap_err();
        match err {
            WireError::RetriesExhausted {
                attempts,
                last,
                elapsed,
            } => {
                assert_eq!(attempts, 3);
                // The underlying cause survives the wrapping…
                match *last {
                    WireError::Io(ref m) => assert!(m.contains("frame dropped"), "{m}"),
                    other => panic!("expected the injected Io cause, got {other:?}"),
                }
                // …and the total wall-clock time (two 1–2 ms backoffs).
                assert!(elapsed >= Duration::from_millis(2), "{elapsed:?}");
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn fault_stats_reachable_through_the_client() {
        let server = demo_server();
        let options = ClientOptions {
            fault: Some(crate::fault::FaultPolicy::none(3)),
            ..ClientOptions::default()
        };
        let mut client =
            Client::connect_in_proc_with(&server, "monetdb", "monetdb", "demo", options).unwrap();
        client.ping().unwrap();
        let stats = client.fault_stats().expect("injector configured");
        assert_eq!(stats.clean, 2, "login + ping, nothing injected: {stats:?}");
        assert_eq!(stats.injected(), 0);
        // Without a fault policy there is nothing to report.
        let bare = connect(&server);
        assert!(bare.fault_stats().is_none());
        server.shutdown();
    }

    /// Mimics a server that predates the delta protocol: any `ExtractDelta`
    /// frame (tag 7) is answered with the exact error an old decoder
    /// produces, everything else passes through to the real server.
    struct OldServerTransport {
        inner: InProcTransport,
        delta_frames: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl crate::transport::ClientTransport for OldServerTransport {
        fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
            if frame.first() == Some(&7) {
                self.delta_frames
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(Message::Error {
                    code: "ProtocolError".into(),
                    message: "unknown message tag 7".into(),
                    traceback: None,
                }
                .encode());
            }
            self.inner.round_trip(frame)
        }
    }

    #[test]
    fn delta_client_falls_back_against_an_old_server() {
        let server = demo_server();
        let (core, session) = server.in_proc_connection();
        let delta_frames = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let transport = OldServerTransport {
            inner: InProcTransport { core, session },
            delta_frames: delta_frames.clone(),
        };
        let options = ClientOptions {
            cache: Some(4),
            ..ClientOptions::default()
        };
        let mut client =
            Client::login(Box::new(transport), "monetdb", "monetdb", "demo", options).unwrap();
        let query = "SELECT mean_deviation(i) FROM numbers";
        let (a, stats_a) = client
            .extract_inputs(query, "mean_deviation", TransferOptions::plain())
            .unwrap();
        // The probe failed on the unknown tag and the classic extract
        // carried the data.
        assert!(!client.delta_supported);
        assert!(stats_a.wire_len > 0);
        // Later extracts skip the probe entirely: exactly one tag-7 frame
        // ever crossed this connection.
        let (b, _) = client
            .extract_inputs(query, "mean_deviation", TransferOptions::plain())
            .unwrap();
        assert_eq!(delta_frames.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert!(a.py_eq(&b));
        server.shutdown();
    }

    /// Refuses frames with `ServerBusy` while the shared counter is
    /// positive, then passes everything through to the real server —
    /// deterministic backpressure without racing real queues.
    struct BusyServerTransport {
        inner: InProcTransport,
        refusals: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }

    impl crate::transport::ClientTransport for BusyServerTransport {
        fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
            use std::sync::atomic::Ordering;
            if self.refusals.load(Ordering::Relaxed) > 0 {
                self.refusals.fetch_sub(1, Ordering::Relaxed);
                return Ok(Message::Error {
                    code: "ServerBusy".into(),
                    message: "write queue is full; retry after backoff".into(),
                    traceback: None,
                }
                .encode());
            }
            self.inner.round_trip(frame)
        }
    }

    #[test]
    fn busy_replies_retry_even_non_idempotent_commands() {
        let server = demo_server();
        let refusals = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let (core, session) = server.in_proc_connection();
        let transport = BusyServerTransport {
            inner: InProcTransport { core, session },
            refusals: refusals.clone(),
        };
        let options = ClientOptions::with_retry(RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            deadline: Some(Duration::from_secs(5)),
        });
        let mut client =
            Client::login(Box::new(transport), "monetdb", "monetdb", "demo", options).unwrap();
        // An INSERT is not idempotent, but `ServerBusy` means the server
        // refused the command before executing anything — the retry layer
        // replays it instead of giving up after one attempt.
        refusals.store(2, std::sync::atomic::Ordering::Relaxed);
        client.query("INSERT INTO numbers VALUES (99)").unwrap();
        assert_eq!(refusals.load(std::sync::atomic::Ordering::Relaxed), 0);
        let t = client
            .query("SELECT i FROM numbers WHERE i = 99")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows.len(), 1, "the write executed exactly once");
        server.shutdown();
    }

    #[test]
    fn busy_surfaces_raw_when_retries_are_disabled() {
        let server = demo_server();
        let refusals = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let (core, session) = server.in_proc_connection();
        let transport = BusyServerTransport {
            inner: InProcTransport { core, session },
            refusals: refusals.clone(),
        };
        let mut client = Client::login(
            Box::new(transport),
            "monetdb",
            "monetdb",
            "demo",
            ClientOptions::default(),
        )
        .unwrap();
        refusals.store(1, std::sync::atomic::Ordering::Relaxed);
        let err = client.query("INSERT INTO numbers VALUES (99)").unwrap_err();
        assert!(matches!(err, WireError::Busy(_)), "{err:?}");
        assert!(err.is_transient());
        server.shutdown();
    }

    #[test]
    fn traced_query_returns_a_stitched_span_tree() {
        // Captures and the enable flag are process-global: serialize with
        // every other telemetry-recording test.
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        obs::trace::clear_subscribers();
        let server = demo_server();
        let mut client = connect(&server);
        let (result, spans) = client
            .query_traced("SELECT mean_deviation(i) FROM numbers")
            .unwrap();
        let t = result.into_table().unwrap();
        assert_eq!(t.rows[0][0], WireValue::Double(1.5));
        let query = spans.iter().find(|r| r.name == "client.query").unwrap();
        assert_eq!(query.parent, 0);
        let wire = spans.iter().find(|r| r.name == "client.wire").unwrap();
        assert_eq!(wire.parent, query.id);
        let cmd = spans.iter().find(|r| r.name == "server.command").unwrap();
        assert_eq!(cmd.parent, wire.id, "server roots hang off the wire span");
        assert_ne!(cmd.id & (1 << 63), 0, "server ids are remapped");
        assert!(
            cmd.fields
                .contains(&("command".to_string(), "query".to_string())),
            "{:?}",
            cmd.fields
        );
        assert!(spans.iter().all(|r| r.duration_ns > 0), "{spans:?}");
        // The whole exchange assembles into one tree rooted at the client.
        let roots = obs::trace::assemble(&spans);
        assert_eq!(roots.len(), 1, "{spans:?}");
        assert_eq!(roots[0].record.name, "client.query");
        assert_eq!(roots[0].len(), spans.len());
        server.shutdown();
    }

    /// Mimics a server that predates the trace envelope: any `Traced`
    /// frame (tag 8) is answered with an old decoder's exact error.
    struct PreTraceServerTransport {
        inner: InProcTransport,
        traced_frames: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl crate::transport::ClientTransport for PreTraceServerTransport {
        fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
            if frame.first() == Some(&8) {
                self.traced_frames
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(Message::Error {
                    code: "ProtocolError".into(),
                    message: "unknown message tag 8".into(),
                    traceback: None,
                }
                .encode());
            }
            self.inner.round_trip(frame)
        }
    }

    #[test]
    fn traced_client_falls_back_against_an_old_server() {
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        obs::trace::clear_subscribers();
        let server = demo_server();
        let (core, session) = server.in_proc_connection();
        let traced_frames = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let transport = PreTraceServerTransport {
            inner: InProcTransport { core, session },
            traced_frames: traced_frames.clone(),
        };
        let mut client = Client::login(
            Box::new(transport),
            "monetdb",
            "monetdb",
            "demo",
            ClientOptions::default(),
        )
        .unwrap();
        let (a, spans) = client.query_traced("SELECT sum(i) FROM numbers").unwrap();
        assert_eq!(a.into_table().unwrap().rows[0][0], WireValue::Int(21));
        assert!(spans.is_empty(), "fallback returns no spans");
        assert!(!client.trace_supported);
        // Later traced queries skip the probe entirely: exactly one tag-8
        // frame ever crossed this connection.
        let (_, spans2) = client.query_traced("SELECT sum(i) FROM numbers").unwrap();
        assert!(spans2.is_empty());
        assert_eq!(traced_frames.load(std::sync::atomic::Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// Records every frame a client sends, so tests can compare wire
    /// bytes across clients.
    struct RecordingTransport {
        inner: InProcTransport,
        frames: std::sync::Arc<std::sync::Mutex<Vec<Vec<u8>>>>,
    }

    impl crate::transport::ClientTransport for RecordingTransport {
        fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
            self.frames
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(frame.to_vec());
            self.inner.round_trip(frame)
        }
    }

    #[test]
    fn untraced_query_traced_is_byte_identical_to_plain_query() {
        let _serial = obs::metrics::test_lock();
        // With telemetry off no trace id can be minted; query_traced must
        // leave no mark on the wire.
        obs::set_enabled(false);
        let server = demo_server();
        let recorded = |server: &Server| {
            let (core, session) = server.in_proc_connection();
            let frames = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let transport = RecordingTransport {
                inner: InProcTransport { core, session },
                frames: frames.clone(),
            };
            let client = Client::login(
                Box::new(transport),
                "monetdb",
                "monetdb",
                "demo",
                ClientOptions::default(),
            )
            .unwrap();
            (client, frames)
        };
        let (mut plain, plain_frames) = recorded(&server);
        let (mut traced, traced_frames) = recorded(&server);
        let sql = "SELECT mean_deviation(i) FROM numbers";
        plain.query(sql).unwrap();
        let (_, spans) = traced.query_traced(sql).unwrap();
        assert!(spans.is_empty());
        let a = plain_frames.lock().unwrap().clone();
        let b = traced_frames.lock().unwrap().clone();
        assert_eq!(a.len(), 2, "login + query");
        assert_eq!(a, b, "untraced traced-query bytes must match plain bytes");
        obs::set_enabled(true);
        server.shutdown();
    }

    #[test]
    fn udf_print_output_travels_to_client() {
        let server = demo_server();
        let mut client = connect(&server);
        client
            .query("CREATE FUNCTION noisy(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nprint('debugging', len(i))\nreturn i\n}")
            .unwrap();
        client.query("SELECT noisy(i) FROM numbers").unwrap();
        assert_eq!(client.last_udf_stdout(), "debugging 6\n");
        server.shutdown();
    }
}
