//! Wire messages and their binary codec.
//!
//! Hand-rolled tagged binary encoding (varint-framed), so the protocol has
//! zero reflection overhead and the transfer benchmarks measure real bytes.

use codecs::varint::{read_u64, write_u64};
use monetlite::{DbError, QueryResult, Table};

use crate::transfer;
use crate::transfer::{DeltaBlock, TransferOptions};

/// Protocol-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Transport failure (connection closed, IO error).
    Io(String),
    /// Malformed frame or unknown message tag.
    Protocol(String),
    /// Authentication rejected.
    Auth(String),
    /// The server's bounded command queue refused the request before any
    /// execution happened (`ServerBusy` backpressure). Always safe to
    /// retry after backoff — even for non-idempotent commands, because the
    /// server never started the work.
    Busy(String),
    /// The server reported a database error.
    Server {
        code: String,
        message: String,
        traceback: Option<String>,
    },
    /// The retry layer gave up: an idempotent operation failed on every
    /// configured attempt, or a non-idempotent one hit a transient
    /// transport error it must not replay (`attempts` is 1 in that case).
    /// `last` is the error of the final attempt and `elapsed` the total
    /// wall-clock time spent across all attempts (including backoff).
    RetriesExhausted {
        attempts: u32,
        last: Box<WireError>,
        elapsed: std::time::Duration,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(m) => write!(f, "io error: {m}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
            WireError::Auth(m) => write!(f, "authentication failed: {m}"),
            WireError::Busy(m) => write!(f, "server busy: {m}"),
            WireError::Server { code, message, .. } => write!(f, "{code}: {message}"),
            WireError::RetriesExhausted {
                attempts,
                last,
                elapsed,
            } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempt(s) in {elapsed:?}: {last}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Whether a retry (after reconnecting) could plausibly succeed:
    /// transport IO failures and frame-level checksum mismatches, i.e.
    /// errors where the stream state is suspect but the request itself is
    /// fine. Auth, server-side and codec errors are deterministic and
    /// retrying them would only repeat the failure.
    pub fn is_transient(&self) -> bool {
        match self {
            WireError::Io(_) => true,
            WireError::Protocol(m) => m.contains("checksum mismatch"),
            // Backpressure: the server refused before executing, so a
            // delayed retry is always safe and plausibly succeeds.
            WireError::Busy(_) => true,
            _ => false,
        }
    }

    pub fn from_db(e: &DbError) -> WireError {
        WireError::Server {
            code: e.code.name().to_string(),
            message: e.message.clone(),
            traceback: e.traceback.clone(),
        }
    }
}

/// A scalar value on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    Null,
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
    Blob(Vec<u8>),
}

impl WireValue {
    pub fn render(&self) -> String {
        match self {
            WireValue::Null => "NULL".into(),
            WireValue::Int(i) => i.to_string(),
            WireValue::Double(d) => {
                if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                    format!("{d:.1}")
                } else {
                    format!("{d}")
                }
            }
            WireValue::Str(s) => s.clone(),
            WireValue::Bool(b) => if *b { "true" } else { "false" }.into(),
            WireValue::Blob(b) => format!("<blob {} bytes>", b.len()),
        }
    }
}

/// A result table on the wire (row-major).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireTable {
    pub name: String,
    /// (column name, type name) pairs.
    pub columns: Vec<(String, String)>,
    pub rows: Vec<Vec<WireValue>>,
}

impl WireTable {
    /// Convert from an engine table.
    pub fn from_table(t: &Table) -> WireTable {
        let columns = t
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.sql_type().name().to_string()))
            .collect();
        let mut rows = Vec::with_capacity(t.row_count());
        for i in 0..t.row_count() {
            rows.push(
                t.row(i)
                    .into_iter()
                    .map(|v| match v {
                        monetlite::SqlValue::Null => WireValue::Null,
                        monetlite::SqlValue::Int(x) => WireValue::Int(x),
                        monetlite::SqlValue::Double(x) => WireValue::Double(x),
                        monetlite::SqlValue::Str(x) => WireValue::Str(x),
                        monetlite::SqlValue::Bool(x) => WireValue::Bool(x),
                        monetlite::SqlValue::Blob(x) => WireValue::Blob(x),
                    })
                    .collect(),
            );
        }
        WireTable {
            name: t.name.clone(),
            columns,
            rows,
        }
    }

    /// Column index by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    /// All values of one column.
    pub fn column_values(&self, name: &str) -> Option<Vec<WireValue>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Render as an ASCII grid (client-side pretty printer).
    pub fn render_ascii(&self) -> String {
        let headers: Vec<String> = self.columns.iter().map(|(n, _)| n.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(c, v)| {
                        let s = v.render();
                        widths[c] = widths[c].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let mut out = sep.clone();
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:w$} |", w = w));
        }
        out.push('\n');
        out.push_str(&sep.replace('-', "="));
        for row in &rendered {
            out.push('|');
            for (v, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {v:w$} |", w = w));
            }
            out.push('\n');
        }
        out.push_str(&sep);
        format!("{out}{} row(s)\n", self.rows.len())
    }
}

/// Result of a query as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResult {
    Table(WireTable),
    Affected { rows: u64, message: String },
}

impl WireResult {
    pub fn from_query_result(r: &QueryResult) -> WireResult {
        match r {
            QueryResult::Table(t) => WireResult::Table(WireTable::from_table(t)),
            QueryResult::Affected { rows, message } => WireResult::Affected {
                rows: *rows as u64,
                message: message.clone(),
            },
        }
    }

    pub fn into_table(self) -> Result<WireTable, WireError> {
        match self {
            WireResult::Table(t) => Ok(t),
            WireResult::Affected { message, .. } => Err(WireError::Protocol(format!(
                "statement produced no result set ({message})"
            ))),
        }
    }
}

/// A closed span as carried in a [`Message::TracedReply`] (DESIGN §15):
/// the server's half of a stitched trace. Ids are only unique per side;
/// the client remaps them before merging into its own tree.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSpan {
    /// Span id, unique on the side that minted it.
    pub id: u64,
    /// Parent span id (0 = root of its side).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Key/value fields attached while the span was open.
    pub fields: Vec<(String, String)>,
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    // Client → server.
    Login {
        user: String,
        password: String,
        database: String,
    },
    Query {
        sql: String,
    },
    /// The paper's extract function: capture `udf`'s inputs from `query`
    /// and ship them with the requested transfer options.
    ExtractInputs {
        query: String,
        udf: String,
        options: TransferOptions,
        transfer_id: u64,
    },
    ListFunctions,
    GetFunction {
        name: String,
    },
    Ping,
    /// Delta-aware extract (DESIGN §12): like [`Message::ExtractInputs`],
    /// but the client also declares what it already holds — the
    /// dependency epochs its cache entry was built against and the
    /// SHA-256 digests of its cached plaintext blocks — so the server can
    /// answer [`Message::DeltaNotModified`] or ship only changed blocks.
    /// Both lists are empty on a cold cache.
    ExtractDelta {
        query: String,
        udf: String,
        options: TransferOptions,
        transfer_id: u64,
        /// `(table name, epoch)` pairs the cached payload was built from.
        epochs: Vec<(String, u64)>,
        /// Content addresses of the client's cached raw blocks.
        digests: Vec<[u8; 32]>,
    },
    /// Trace envelope (PR 8 version gate, DESIGN §15): `inner` is a fully
    /// encoded client message, `trace` the client-minted trace id. A
    /// traced server answers with [`Message::TracedReply`]; an old server
    /// fails on the unknown tag — the client's cue to fall back to plain
    /// frames permanently. Untraced clients never send this, so their
    /// wire bytes are untouched by the feature.
    Traced {
        /// Client-minted trace id (never 0 on the wire).
        trace: u64,
        /// The encoded inner request frame body.
        inner: Vec<u8>,
    },

    // Server → client.
    LoginOk {
        session: u64,
    },
    ResultSet {
        result: WireResult,
        /// `print` output emitted by UDFs during the statement.
        udf_stdout: String,
    },
    /// Extracted input payload: pickle bytes, possibly compressed and/or
    /// encrypted (flags echoed in `options`).
    Extracted {
        payload: Vec<u8>,
        raw_len: u64,
        options: TransferOptions,
        transfer_id: u64,
    },
    FunctionList {
        names: Vec<String>,
    },
    FunctionInfo {
        name: String,
        params: Vec<(String, String)>,
        return_type: String,
        language: String,
        body: String,
    },
    Error {
        code: String,
        message: String,
        traceback: Option<String>,
    },
    Pong,
    /// Every dependency epoch in the [`Message::ExtractDelta`] request
    /// still matches: the client's cached payload is provably current and
    /// no payload bytes follow.
    DeltaNotModified {
        transfer_id: u64,
    },
    /// Delta reply: the fresh payload's full digest table plus only the
    /// blocks whose digest the client did not declare.
    DeltaBlocks {
        options: TransferOptions,
        transfer_id: u64,
        /// Total plaintext length of the fresh payload.
        raw_len: u64,
        /// Dependency epochs the fresh payload was built from (empty when
        /// a dependency is volatile and can never be provably unchanged).
        epochs: Vec<(String, u64)>,
        /// SHA-256 digest of every block of the fresh payload, in order.
        digests: Vec<[u8; 32]>,
        /// The shipped (changed) blocks, strictly increasing by index.
        blocks: Vec<DeltaBlock>,
    },
    /// Reply to a [`Message::Traced`] envelope: the encoded inner reply
    /// plus every span the server recorded while handling it (empty when
    /// the server was built without telemetry).
    TracedReply {
        /// Server-side spans, in close order.
        spans: Vec<WireSpan>,
        /// The encoded inner reply frame body.
        inner: Vec<u8>,
    },
}

// ----------------------------------------------------------------------
// Codec helpers
// ----------------------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn err(msg: &str) -> WireError {
        WireError::Protocol(msg.to_string())
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let (v, used) = read_u64(&self.data[self.pos.min(self.data.len())..])
            .map_err(|e| WireError::Protocol(format!("bad varint: {e}")))?;
        self.pos += used;
        Ok(v)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.data.len() {
            return Err(Self::err("truncated frame"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.varint()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| Self::err("invalid UTF-8"))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(Self::err("trailing bytes in frame"))
        }
    }

    /// Bytes left in the frame — the plausibility bound for declared
    /// counts, so a hostile count can never size an allocation the frame
    /// could not physically hold.
    fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_value(out: &mut Vec<u8>, v: &WireValue) {
    match v {
        WireValue::Null => out.push(0),
        WireValue::Int(i) => {
            out.push(1);
            put_i64(out, *i);
        }
        WireValue::Double(d) => {
            out.push(2);
            out.extend_from_slice(&d.to_le_bytes());
        }
        WireValue::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        WireValue::Bool(b) => out.push(if *b { 5 } else { 4 }),
        WireValue::Blob(b) => {
            out.push(6);
            put_bytes(out, b);
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<WireValue, WireError> {
    Ok(match r.byte()? {
        0 => WireValue::Null,
        1 => WireValue::Int(r.i64()?),
        2 => WireValue::Double(r.f64()?),
        3 => WireValue::Str(r.string()?),
        4 => WireValue::Bool(false),
        5 => WireValue::Bool(true),
        6 => WireValue::Blob(r.bytes()?),
        t => return Err(Reader::err(&format!("unknown value tag {t}"))),
    })
}

fn put_table(out: &mut Vec<u8>, t: &WireTable) {
    put_str(out, &t.name);
    write_u64(out, t.columns.len() as u64);
    for (n, ty) in &t.columns {
        put_str(out, n);
        put_str(out, ty);
    }
    write_u64(out, t.rows.len() as u64);
    for row in &t.rows {
        for v in row {
            put_value(out, v);
        }
    }
}

fn read_table(r: &mut Reader<'_>) -> Result<WireTable, WireError> {
    let name = r.string()?;
    let ncols = r.varint()? as usize;
    if ncols > 10_000 {
        return Err(Reader::err("implausible column count"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push((r.string()?, r.string()?));
    }
    let nrows = r.varint()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(1 << 20));
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(read_value(r)?);
        }
        rows.push(row);
    }
    Ok(WireTable {
        name,
        columns,
        rows,
    })
}

fn put_options(out: &mut Vec<u8>, o: &TransferOptions) {
    put_options_impl(out, o, false)
}

/// [`put_options`] with the delta version-gate bit set. Only the delta
/// messages carry it: an old server that sees an `ExtractDelta` frame
/// fails on the unknown message tag (the client's cue to fall back), and
/// the bit keeps a delta frame from ever being misparsed as a plain one.
fn put_options_delta(out: &mut Vec<u8>, o: &TransferOptions) {
    put_options_impl(out, o, true)
}

fn put_options_impl(out: &mut Vec<u8>, o: &TransferOptions, delta: bool) {
    let mut flags = 0u8;
    if o.compress {
        flags |= 1;
    }
    if o.encrypt {
        flags |= 2;
    }
    if o.sample.is_some() {
        flags |= 4;
    }
    // Bit 8 marks a non-default container block size; the default is
    // elided so frames from older peers (and the common case) stay
    // byte-identical to the pre-chunking encoding.
    let block_size = o.effective_block_size();
    if block_size != transfer::DEFAULT_BLOCK_SIZE {
        flags |= 8;
    }
    if delta {
        flags |= DELTA_OPTION_FLAG;
    }
    out.push(flags);
    if let Some(k) = o.sample {
        write_u64(out, k as u64);
    }
    if block_size != transfer::DEFAULT_BLOCK_SIZE {
        write_u64(out, block_size as u64);
    }
}

/// Every transfer-option flag bit this version understands. Bits 0–2
/// (compress/encrypt/sample) shipped in v0; bit 3 (block size) implies a
/// trailing varint. Bit 4 ([`DELTA_OPTION_FLAG`]) is deliberately **not**
/// in this set: it only ever appears inside the delta messages, which use
/// [`read_options_delta`] — a plain message carrying it is still rejected
/// with the same strictness as any unknown bit.
const KNOWN_OPTION_FLAGS: u8 = 1 | 2 | 4 | 8;

/// Option flag bit marking a delta-protocol message (PR 5 version gate).
const DELTA_OPTION_FLAG: u8 = 16;

fn read_options(r: &mut Reader<'_>) -> Result<TransferOptions, WireError> {
    read_options_impl(r, false)
}

/// [`read_options`] for the delta messages: bit 4 is both accepted and
/// **required**, so a delta frame from a peer that does not actually
/// speak the delta protocol fails loudly instead of desyncing.
fn read_options_delta(r: &mut Reader<'_>) -> Result<TransferOptions, WireError> {
    read_options_impl(r, true)
}

fn read_options_impl(r: &mut Reader<'_>, delta: bool) -> Result<TransferOptions, WireError> {
    let flags = r.byte()?;
    // Reject unknown bits loudly. Flag bits here imply trailing fields
    // (bit 2 a sample count, bit 3 a block size), so skipping an unknown
    // bit would leave its field unconsumed and silently desync every
    // later read in the frame — a clean error beats misparsed garbage
    // when a newer peer sends an extension we don't know.
    let known = if delta {
        KNOWN_OPTION_FLAGS | DELTA_OPTION_FLAG
    } else {
        KNOWN_OPTION_FLAGS
    };
    if flags & !known != 0 {
        return Err(Reader::err(&format!(
            "unknown transfer option flag bits {:#04x}",
            flags & !known
        )));
    }
    if delta && flags & DELTA_OPTION_FLAG == 0 {
        return Err(Reader::err("delta message without the delta option flag"));
    }
    let sample = if flags & 4 != 0 {
        Some(r.varint()? as usize)
    } else {
        None
    };
    let block_size = if flags & 8 != 0 {
        let bs = r.varint()? as usize;
        if bs == 0 {
            return Err(Reader::err("zero transfer block size"));
        }
        bs
    } else {
        transfer::DEFAULT_BLOCK_SIZE
    };
    Ok(TransferOptions {
        compress: flags & 1 != 0,
        encrypt: flags & 2 != 0,
        sample,
        block_size,
    })
}

fn put_epochs(out: &mut Vec<u8>, epochs: &[(String, u64)]) {
    write_u64(out, epochs.len() as u64);
    for (name, epoch) in epochs {
        put_str(out, name);
        write_u64(out, *epoch);
    }
}

fn read_epochs(r: &mut Reader<'_>) -> Result<Vec<(String, u64)>, WireError> {
    let n = r.varint()? as usize;
    // Each entry occupies at least two bytes (length-prefixed name plus
    // an epoch varint), so a count the frame cannot hold is rejected
    // before the vector is reserved.
    if n > r.remaining() / 2 {
        return Err(Reader::err("implausible epoch count"));
    }
    let mut epochs = Vec::with_capacity(n);
    for _ in 0..n {
        epochs.push((r.string()?, r.varint()?));
    }
    Ok(epochs)
}

fn put_digests(out: &mut Vec<u8>, digests: &[[u8; 32]]) {
    write_u64(out, digests.len() as u64);
    for d in digests {
        out.extend_from_slice(d);
    }
}

fn read_digests(r: &mut Reader<'_>) -> Result<Vec<[u8; 32]>, WireError> {
    let n = r.varint()? as usize;
    // 32 bytes per digest must physically fit in the remaining frame.
    if n > r.remaining() / 32 {
        return Err(Reader::err("implausible digest count"));
    }
    let mut digests = Vec::with_capacity(n);
    for _ in 0..n {
        digests.push(r.take(32)?.try_into().expect("32 bytes"));
    }
    Ok(digests)
}

fn put_spans(out: &mut Vec<u8>, spans: &[WireSpan]) {
    write_u64(out, spans.len() as u64);
    for s in spans {
        write_u64(out, s.id);
        write_u64(out, s.parent);
        put_str(out, &s.name);
        write_u64(out, s.duration_ns);
        write_u64(out, s.fields.len() as u64);
        for (k, v) in &s.fields {
            put_str(out, k);
            put_str(out, v);
        }
    }
}

fn read_spans(r: &mut Reader<'_>) -> Result<Vec<WireSpan>, WireError> {
    let n = r.varint()? as usize;
    // A span occupies at least five bytes (id, parent, name length,
    // duration, field count varints), so a count the frame cannot hold is
    // rejected before the vector is reserved.
    if n > r.remaining() / 5 {
        return Err(Reader::err("implausible span count"));
    }
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.varint()?;
        let parent = r.varint()?;
        let name = r.string()?;
        let duration_ns = r.varint()?;
        let nfields = r.varint()? as usize;
        // Two length-prefixed strings per field: at least two bytes each.
        if nfields > r.remaining() / 2 {
            return Err(Reader::err("implausible span field count"));
        }
        let mut fields = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            fields.push((r.string()?, r.string()?));
        }
        spans.push(WireSpan {
            id,
            parent,
            name,
            duration_ns,
            fields,
        });
    }
    Ok(spans)
}

impl Message {
    /// Encode into a frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Message::Login {
                user,
                password,
                database,
            } => {
                out.push(1);
                put_str(&mut out, user);
                put_str(&mut out, password);
                put_str(&mut out, database);
            }
            Message::Query { sql } => {
                out.push(2);
                put_str(&mut out, sql);
            }
            Message::ExtractInputs {
                query,
                udf,
                options,
                transfer_id,
            } => {
                out.push(3);
                put_str(&mut out, query);
                put_str(&mut out, udf);
                put_options(&mut out, options);
                write_u64(&mut out, *transfer_id);
            }
            Message::ListFunctions => out.push(4),
            Message::GetFunction { name } => {
                out.push(5);
                put_str(&mut out, name);
            }
            Message::Ping => out.push(6),
            Message::ExtractDelta {
                query,
                udf,
                options,
                transfer_id,
                epochs,
                digests,
            } => {
                out.push(7);
                put_str(&mut out, query);
                put_str(&mut out, udf);
                put_options_delta(&mut out, options);
                write_u64(&mut out, *transfer_id);
                put_epochs(&mut out, epochs);
                put_digests(&mut out, digests);
            }
            Message::Traced { trace, inner } => {
                out.push(8);
                write_u64(&mut out, *trace);
                put_bytes(&mut out, inner);
            }
            Message::LoginOk { session } => {
                out.push(64);
                write_u64(&mut out, *session);
            }
            Message::ResultSet { result, udf_stdout } => {
                out.push(65);
                match result {
                    WireResult::Table(t) => {
                        out.push(0);
                        put_table(&mut out, t);
                    }
                    WireResult::Affected { rows, message } => {
                        out.push(1);
                        write_u64(&mut out, *rows);
                        put_str(&mut out, message);
                    }
                }
                put_str(&mut out, udf_stdout);
            }
            Message::Extracted {
                payload,
                raw_len,
                options,
                transfer_id,
            } => {
                out.push(66);
                put_bytes(&mut out, payload);
                write_u64(&mut out, *raw_len);
                put_options(&mut out, options);
                write_u64(&mut out, *transfer_id);
            }
            Message::FunctionList { names } => {
                out.push(67);
                write_u64(&mut out, names.len() as u64);
                for n in names {
                    put_str(&mut out, n);
                }
            }
            Message::FunctionInfo {
                name,
                params,
                return_type,
                language,
                body,
            } => {
                out.push(68);
                put_str(&mut out, name);
                write_u64(&mut out, params.len() as u64);
                for (n, t) in params {
                    put_str(&mut out, n);
                    put_str(&mut out, t);
                }
                put_str(&mut out, return_type);
                put_str(&mut out, language);
                put_str(&mut out, body);
            }
            Message::Error {
                code,
                message,
                traceback,
            } => {
                out.push(69);
                put_str(&mut out, code);
                put_str(&mut out, message);
                match traceback {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        put_str(&mut out, t);
                    }
                }
            }
            Message::Pong => out.push(70),
            Message::DeltaNotModified { transfer_id } => {
                out.push(71);
                write_u64(&mut out, *transfer_id);
            }
            Message::DeltaBlocks {
                options,
                transfer_id,
                raw_len,
                epochs,
                digests,
                blocks,
            } => {
                out.push(72);
                put_options_delta(&mut out, options);
                write_u64(&mut out, *transfer_id);
                write_u64(&mut out, *raw_len);
                put_epochs(&mut out, epochs);
                put_digests(&mut out, digests);
                write_u64(&mut out, blocks.len() as u64);
                for b in blocks {
                    write_u64(&mut out, b.index);
                    out.push(b.enc);
                    put_bytes(&mut out, &b.body);
                }
            }
            Message::TracedReply { spans, inner } => {
                out.push(73);
                put_spans(&mut out, spans);
                put_bytes(&mut out, inner);
            }
        }
        out
    }

    /// Decode a frame body.
    pub fn decode(data: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(data);
        let tag = r.byte()?;
        let msg = match tag {
            1 => Message::Login {
                user: r.string()?,
                password: r.string()?,
                database: r.string()?,
            },
            2 => Message::Query { sql: r.string()? },
            3 => Message::ExtractInputs {
                query: r.string()?,
                udf: r.string()?,
                options: read_options(&mut r)?,
                transfer_id: r.varint()?,
            },
            4 => Message::ListFunctions,
            5 => Message::GetFunction { name: r.string()? },
            6 => Message::Ping,
            7 => Message::ExtractDelta {
                query: r.string()?,
                udf: r.string()?,
                options: read_options_delta(&mut r)?,
                transfer_id: r.varint()?,
                epochs: read_epochs(&mut r)?,
                digests: read_digests(&mut r)?,
            },
            8 => {
                let trace = r.varint()?;
                if trace == 0 {
                    return Err(Reader::err("traced envelope without a trace id"));
                }
                Message::Traced {
                    trace,
                    inner: r.bytes()?,
                }
            }
            64 => Message::LoginOk {
                session: r.varint()?,
            },
            65 => {
                let kind = r.byte()?;
                let result = match kind {
                    0 => WireResult::Table(read_table(&mut r)?),
                    1 => WireResult::Affected {
                        rows: r.varint()?,
                        message: r.string()?,
                    },
                    k => return Err(Reader::err(&format!("unknown result kind {k}"))),
                };
                Message::ResultSet {
                    result,
                    udf_stdout: r.string()?,
                }
            }
            66 => Message::Extracted {
                payload: r.bytes()?,
                raw_len: r.varint()?,
                options: read_options(&mut r)?,
                transfer_id: r.varint()?,
            },
            67 => {
                let n = r.varint()? as usize;
                let mut names = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    names.push(r.string()?);
                }
                Message::FunctionList { names }
            }
            68 => {
                let name = r.string()?;
                let nparams = r.varint()? as usize;
                let mut params = Vec::with_capacity(nparams.min(256));
                for _ in 0..nparams {
                    params.push((r.string()?, r.string()?));
                }
                Message::FunctionInfo {
                    name,
                    params,
                    return_type: r.string()?,
                    language: r.string()?,
                    body: r.string()?,
                }
            }
            69 => {
                let code = r.string()?;
                let message = r.string()?;
                let traceback = match r.byte()? {
                    0 => None,
                    _ => Some(r.string()?),
                };
                Message::Error {
                    code,
                    message,
                    traceback,
                }
            }
            70 => Message::Pong,
            71 => Message::DeltaNotModified {
                transfer_id: r.varint()?,
            },
            72 => {
                let options = read_options_delta(&mut r)?;
                let transfer_id = r.varint()?;
                let raw_len = r.varint()?;
                let epochs = read_epochs(&mut r)?;
                let digests = read_digests(&mut r)?;
                let nblocks = r.varint()? as usize;
                // A delta never ships more blocks than the digest table
                // describes; the bound also caps the allocation.
                if nblocks > digests.len() {
                    return Err(Reader::err("more shipped blocks than digest entries"));
                }
                let mut blocks = Vec::with_capacity(nblocks);
                for _ in 0..nblocks {
                    blocks.push(DeltaBlock {
                        index: r.varint()?,
                        enc: r.byte()?,
                        body: r.bytes()?,
                    });
                }
                Message::DeltaBlocks {
                    options,
                    transfer_id,
                    raw_len,
                    epochs,
                    digests,
                    blocks,
                }
            }
            73 => Message::TracedReply {
                spans: read_spans(&mut r)?,
                inner: r.bytes()?,
            },
            t => return Err(Reader::err(&format!("unknown message tag {t}"))),
        };
        r.done()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Message) {
        let encoded = m.encode();
        let decoded = Message::decode(&encoded).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::Login {
            user: "monetdb".into(),
            password: "secret".into(),
            database: "demo".into(),
        });
        round_trip(Message::Query {
            sql: "SELECT * FROM t".into(),
        });
        round_trip(Message::ExtractInputs {
            query: "SELECT f(i) FROM t".into(),
            udf: "f".into(),
            options: TransferOptions {
                compress: true,
                encrypt: true,
                sample: Some(100),
                ..Default::default()
            },
            transfer_id: 42,
        });
        round_trip(Message::ExtractInputs {
            query: "SELECT f(i) FROM t".into(),
            udf: "f".into(),
            options: TransferOptions::compressed().with_block_size(64 * 1024),
            transfer_id: 43,
        });
        round_trip(Message::ListFunctions);
        round_trip(Message::GetFunction { name: "f".into() });
        round_trip(Message::Ping);
        round_trip(Message::LoginOk { session: 7 });
        round_trip(Message::ResultSet {
            result: WireResult::Affected {
                rows: 3,
                message: "3 row(s) inserted".into(),
            },
            udf_stdout: String::new(),
        });
        round_trip(Message::Extracted {
            payload: vec![1, 2, 3],
            raw_len: 100,
            options: TransferOptions::default(),
            transfer_id: 1,
        });
        round_trip(Message::FunctionList {
            names: vec!["a".into(), "b".into()],
        });
        round_trip(Message::FunctionInfo {
            name: "f".into(),
            params: vec![("i".into(), "INTEGER".into())],
            return_type: "DOUBLE".into(),
            language: "PYTHON".into(),
            body: "return i\n".into(),
        });
        round_trip(Message::Error {
            code: "UdfError".into(),
            message: "boom".into(),
            traceback: Some("Traceback...".into()),
        });
        round_trip(Message::Pong);
    }

    #[test]
    fn delta_messages_round_trip() {
        round_trip(Message::ExtractDelta {
            query: "SELECT f(i) FROM t".into(),
            udf: "f".into(),
            options: TransferOptions {
                compress: true,
                encrypt: true,
                ..Default::default()
            }
            .with_block_size(64 * 1024),
            transfer_id: 9,
            epochs: vec![("t".into(), 3), ("sys.functions".into(), 1)],
            digests: vec![[7u8; 32], [9u8; 32]],
        });
        // Cold request: nothing cached yet.
        round_trip(Message::ExtractDelta {
            query: "SELECT f(i) FROM t".into(),
            udf: "f".into(),
            options: TransferOptions::plain(),
            transfer_id: 10,
            epochs: vec![],
            digests: vec![],
        });
        round_trip(Message::DeltaNotModified { transfer_id: 9 });
        round_trip(Message::DeltaBlocks {
            options: TransferOptions::compressed(),
            transfer_id: 11,
            raw_len: 300_000,
            epochs: vec![("numbers".into(), 12)],
            digests: vec![[1u8; 32], [2u8; 32]],
            blocks: vec![DeltaBlock {
                index: 1,
                enc: 0,
                body: vec![1, 2, 3, 4, 5],
            }],
        });
    }

    #[test]
    fn delta_frames_carry_the_version_gate_bit() {
        // The options byte of a delta message must set bit 4 — that's what
        // keeps an old-format peer from misparsing it — and a delta frame
        // *without* the bit must be rejected.
        let msg = Message::ExtractDelta {
            query: "q".into(),
            udf: "f".into(),
            options: TransferOptions::plain(),
            transfer_id: 1,
            epochs: vec![],
            digests: vec![],
        };
        let encoded = msg.encode();
        let mut out = Vec::new();
        put_options_delta(&mut out, &TransferOptions::plain());
        assert_eq!(out[0] & 16, 16);
        // Strip the bit in the frame: decode must fail loudly. The options
        // byte sits at a fixed offset: tag + "q" (2 bytes) + "f" (2 bytes).
        let at = 5;
        assert_eq!(encoded[at] & 16, 16);
        let mut stripped = encoded.clone();
        stripped[at] &= !16;
        let err = Message::decode(&stripped).unwrap_err();
        assert!(
            err.to_string().contains("without the delta option flag"),
            "{err}"
        );
        assert_eq!(Message::decode(&encoded).unwrap(), msg);
    }

    #[test]
    fn hostile_delta_counts_are_rejected_before_allocation() {
        // A tiny frame declaring 2^40 digests (or epochs, or more shipped
        // blocks than digests) must fail on the count, not allocate.
        let mut base = Vec::new();
        base.push(7u8);
        put_str(&mut base, "q");
        put_str(&mut base, "f");
        put_options_delta(&mut base, &TransferOptions::plain());
        write_u64(&mut base, 1); // transfer_id

        let mut huge_epochs = base.clone();
        write_u64(&mut huge_epochs, 1 << 40);
        let err = Message::decode(&huge_epochs).unwrap_err();
        assert!(err.to_string().contains("implausible epoch count"), "{err}");

        let mut huge_digests = base.clone();
        write_u64(&mut huge_digests, 0); // no epochs
        write_u64(&mut huge_digests, 1 << 40);
        let err = Message::decode(&huge_digests).unwrap_err();
        assert!(
            err.to_string().contains("implausible digest count"),
            "{err}"
        );

        let mut overfull = Vec::new();
        overfull.push(72u8);
        put_options_delta(&mut overfull, &TransferOptions::plain());
        write_u64(&mut overfull, 1); // transfer_id
        write_u64(&mut overfull, 100); // raw_len
        write_u64(&mut overfull, 0); // no epochs
        put_digests(&mut overfull, &[[0u8; 32]]);
        write_u64(&mut overfull, 2); // 2 shipped blocks > 1 digest
        let err = Message::decode(&overfull).unwrap_err();
        assert!(err.to_string().contains("more shipped blocks"), "{err}");
    }

    #[test]
    fn traced_envelopes_round_trip() {
        let inner = Message::Query {
            sql: "SELECT f(i) FROM numbers".into(),
        }
        .encode();
        round_trip(Message::Traced {
            trace: 42,
            inner: inner.clone(),
        });
        round_trip(Message::TracedReply {
            spans: vec![
                WireSpan {
                    id: 2,
                    parent: 1,
                    name: "engine.op.scan".into(),
                    duration_ns: 1_500,
                    fields: vec![("rows".into(), "6".into())],
                },
                WireSpan {
                    id: 1,
                    parent: 0,
                    name: "server.command".into(),
                    duration_ns: 9_000,
                    fields: vec![],
                },
            ],
            inner,
        });
        round_trip(Message::TracedReply {
            spans: vec![],
            inner: Message::Pong.encode(),
        });
    }

    #[test]
    fn traced_envelope_rejects_zero_trace_and_hostile_span_counts() {
        // Trace id 0 means "untraced" client-side and must never appear
        // on the wire.
        let mut zero = Vec::new();
        zero.push(8u8);
        write_u64(&mut zero, 0);
        put_bytes(&mut zero, &Message::Ping.encode());
        let err = Message::decode(&zero).unwrap_err();
        assert!(err.to_string().contains("without a trace id"), "{err}");

        // A tiny reply declaring 2^40 spans must fail on the count.
        let mut huge = Vec::new();
        huge.push(73u8);
        write_u64(&mut huge, 1 << 40);
        let err = Message::decode(&huge).unwrap_err();
        assert!(err.to_string().contains("implausible span count"), "{err}");

        // Same for a span declaring an implausible field count.
        let mut fields = Vec::new();
        fields.push(73u8);
        write_u64(&mut fields, 1);
        write_u64(&mut fields, 1); // id
        write_u64(&mut fields, 0); // parent
        put_str(&mut fields, "s");
        write_u64(&mut fields, 5); // duration
        write_u64(&mut fields, 1 << 40); // field count
        let err = Message::decode(&fields).unwrap_err();
        assert!(
            err.to_string().contains("implausible span field count"),
            "{err}"
        );
    }

    #[test]
    fn unknown_option_flag_bits_are_rejected() {
        // A future flag bit may imply a trailing field (as bits 2 and 3
        // already do); ignoring it would desync the rest of the frame,
        // so this version must fail loudly instead.
        let mut out = Vec::new();
        put_options(&mut out, &TransferOptions::compressed());
        out[0] |= 16;
        let err = read_options(&mut Reader::new(&out)).unwrap_err();
        assert!(
            err.to_string().contains("unknown transfer option flag"),
            "{err}"
        );
    }

    #[test]
    fn table_round_trip_with_all_types() {
        let t = WireTable {
            name: "r".into(),
            columns: vec![
                ("i".into(), "INTEGER".into()),
                ("d".into(), "DOUBLE".into()),
                ("s".into(), "STRING".into()),
                ("b".into(), "BOOLEAN".into()),
                ("x".into(), "BLOB".into()),
            ],
            rows: vec![
                vec![
                    WireValue::Int(-5),
                    WireValue::Double(2.5),
                    WireValue::Str("héllo".into()),
                    WireValue::Bool(true),
                    WireValue::Blob(vec![0, 255]),
                ],
                vec![
                    WireValue::Null,
                    WireValue::Null,
                    WireValue::Null,
                    WireValue::Null,
                    WireValue::Null,
                ],
            ],
        };
        round_trip(Message::ResultSet {
            result: WireResult::Table(t),
            udf_stdout: "printed\n".into(),
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[200]).is_err());
        let mut good = Message::Ping.encode();
        good.push(0); // trailing byte
        assert!(Message::decode(&good).is_err());
        let mut truncated = Message::Query {
            sql: "SELECT 1".into(),
        }
        .encode();
        truncated.truncate(truncated.len() - 2);
        assert!(Message::decode(&truncated).is_err());
    }

    #[test]
    fn wire_table_from_engine_table() {
        let db = monetlite::Engine::new();
        db.execute("CREATE TABLE t (i INTEGER, s STRING)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        let table = db.execute("SELECT * FROM t").unwrap().into_table().unwrap();
        let wt = WireTable::from_table(&table);
        assert_eq!(wt.columns.len(), 2);
        assert_eq!(wt.rows.len(), 2);
        assert_eq!(wt.rows[1][1], WireValue::Str("b".into()));
        assert_eq!(
            wt.column_values("i").unwrap(),
            vec![WireValue::Int(1), WireValue::Int(2)]
        );
    }

    #[test]
    fn ascii_render() {
        let t = WireTable {
            name: "r".into(),
            columns: vec![("name".into(), "STRING".into())],
            rows: vec![vec![WireValue::Str("train_rnforest".into())]],
        };
        let s = t.render_ascii();
        assert!(s.contains("| train_rnforest |"));
        assert!(s.contains("1 row(s)"));
    }
}
