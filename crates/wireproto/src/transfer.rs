//! Transfer options and the extract-payload pipeline (paper §2.1).
//!
//! Order of operations on the server: **sample → pickle → compress →
//! encrypt**; the client reverses encryption and compression and unpickles.
//! Sampling happens *before* serialization (fewer bytes ever exist);
//! compression runs before encryption (ciphertext does not compress).
//!
//! # Chunked container (v1)
//!
//! When compression and/or encryption is on, the post-sampling pickle is
//! split into fixed-size blocks (default [`DEFAULT_BLOCK_SIZE`], set via
//! [`TransferOptions::block_size`]) and each block runs through the codec
//! **independently**, so both ends can spread the work across a
//! [`devharness::Pool`]. The frame layout (full diagram in DESIGN §11):
//!
//! ```text
//! container := magic "DUC1" | version u8 (=1) | flags u8
//!              varint(block_size) varint(raw_total) varint(nblocks)
//!              nblocks × ( enc u8 | varint(raw_len) | varint(wire_len) )
//!              nblocks × body
//! body      := encrypt( codec_bytes | fnv1a_32(codec_bytes) )
//! ```
//!
//! Per block: LZ-compress (with a **stored** fallback when the block is
//! incompressible), append a 4-byte FNV-1a integrity tag, then ChaCha20
//! with a per-block nonce derived from (transfer id, block index) so no
//! keystream is ever reused across blocks. The header stays plaintext —
//! the client needs the framing *before* decrypting to fan blocks out
//! across its own pool. The tag detects **accidental corruption and
//! wrong passwords only**: ChaCha20 is malleable and FNV is not keyed,
//! so this is a checksum, not a MAC, and the plaintext header is not
//! authenticated at all — consistent with the paper's threat model
//! (protect data in transit with the user's password), not with an
//! active in-path adversary. Crucially the bytes on the wire depend only on
//! the input and the options, never on the pool width: [`Pool::map`]
//! preserves item order and the LZ scratch reuse is output-invisible, so
//! one thread and eight threads produce identical payloads (CI asserts
//! this with pinned `DEVUDF_POOL_THREADS`).
//!
//! Plain transfers (no compress, no encrypt) stay in the legacy v0 format
//! — the raw pickle — with zero framing overhead, and v0 single-blob
//! compressed/encrypted payloads from older peers still decode:
//! [`decode_payload`] dispatches on the container magic + version byte.
//!
//! # Content-addressed delta layer
//!
//! On top of the container, the extract path supports **block-level delta
//! transfer** (DESIGN §12): both ends address the *plaintext* pickle
//! blocks by their SHA-256 digest ([`block_digests_pooled`]), the client
//! caches raw blocks under those digests ([`crate::delta`]), and the
//! server ships only the blocks whose digest the client does not already
//! hold ([`encode_delta_blocks`] / [`reconstruct_delta`]) — or, when
//! every dependency epoch still matches, no payload at all. Digests are
//! computed over the pickle *before* compression and encryption:
//! ciphertext changes with every transfer id (fresh per-block nonces),
//! while the plaintext only changes when the data does. A delta-shipped
//! block's coded body is bit-identical to the body the full container
//! would carry for that block, because both run through the same
//! per-block codec with the same (transfer id, block index) nonce.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use codecs::varint::{read_u64, write_u64};
use codecs::{chacha20, derive_key, kdf, lz};
use devharness::pool::{self, Pool};
use pylite::value::Dict;
use pylite::{pickle, Array, Value};

/// Default chunk size of the v1 container: 256 KiB. Large enough that the
/// per-block header + tag overhead is negligible (< 0.01 %) and the LZ
/// window mostly stays useful, small enough that a 1 MiB payload already
/// spreads across 4 cores.
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// Options selected in the devUDF settings dialog (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOptions {
    /// Compress the payload with the LZ codec.
    pub compress: bool,
    /// Encrypt the payload with ChaCha20 keyed on the user's password.
    pub encrypt: bool,
    /// Transfer only a uniform random sample of this many rows.
    pub sample: Option<usize>,
    /// Chunk size of the v1 container (bytes). `0` means the default;
    /// only meaningful when compression or encryption is on.
    pub block_size: usize,
}

impl Default for TransferOptions {
    fn default() -> Self {
        TransferOptions {
            compress: false,
            encrypt: false,
            sample: None,
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }
}

impl TransferOptions {
    pub fn plain() -> Self {
        TransferOptions::default()
    }

    pub fn compressed() -> Self {
        TransferOptions {
            compress: true,
            ..Default::default()
        }
    }

    pub fn encrypted() -> Self {
        TransferOptions {
            encrypt: true,
            ..Default::default()
        }
    }

    pub fn sampled(rows: usize) -> Self {
        TransferOptions {
            sample: Some(rows),
            ..Default::default()
        }
    }

    /// Builder-style block-size override.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// The block size actually used: `0` falls back to the default.
    pub fn effective_block_size(&self) -> usize {
        if self.block_size == 0 {
            DEFAULT_BLOCK_SIZE
        } else {
            self.block_size
        }
    }
}

/// Measured outcome of one transfer (reported by benchmarks and the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferStats {
    /// Pickle size before compression/encryption (after sampling).
    pub raw_len: usize,
    /// Bytes that actually crossed the wire.
    pub wire_len: usize,
}

impl TransferStats {
    /// Compression ratio (wire/raw); 1.0 when no compression. Zero-row
    /// extracts produce an empty pickle, so `raw_len == 0` must not
    /// divide — an empty transfer is reported as ratio 1.0.
    pub fn ratio(&self) -> f64 {
        if self.raw_len == 0 {
            1.0
        } else {
            self.wire_len as f64 / self.raw_len as f64
        }
    }
}

/// Error from the transfer pipeline.
///
/// Block-level variants carry the failing block index so a corrupted or
/// wrong-password payload fails **loudly and precisely** instead of
/// surfacing as garbage rows three layers later.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferError {
    /// The inputs value was not usable (not a dict, misaligned arrays…).
    Input(String),
    /// Pickle serialization or deserialization failed.
    Pickle(String),
    /// The chunked container's framing was malformed or inconsistent.
    Container(String),
    /// A block's integrity tag did not match after (optional) decryption.
    BlockIntegrity { block: usize, encrypted: bool },
    /// A block failed to decompress / had the wrong stored size.
    BlockCodec { block: usize, detail: String },
    /// Error in the legacy (v0) single-blob pipeline.
    Legacy(String),
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Input(msg) => write!(f, "transfer error: {msg}"),
            TransferError::Pickle(msg) => write!(f, "transfer error: {msg}"),
            TransferError::Container(msg) => {
                write!(f, "transfer error: malformed container: {msg}")
            }
            TransferError::BlockIntegrity { block, encrypted } => {
                if *encrypted {
                    write!(
                        f,
                        "transfer error: block {block} integrity check failed after \
                         decryption (wrong password?)"
                    )
                } else {
                    write!(
                        f,
                        "transfer error: block {block} integrity check failed \
                         (corrupted payload)"
                    )
                }
            }
            TransferError::BlockCodec { block, detail } => {
                write!(
                    f,
                    "transfer error: block {block} failed to decode: {detail}"
                )
            }
            TransferError::Legacy(msg) => write!(f, "transfer error: {msg}"),
        }
    }
}

impl std::error::Error for TransferError {}

/// Salt domain-separating transfer-encryption keys from other password uses.
const TRANSFER_SALT: &[u8] = b"devudf-transfer-v1";

/// Bytes of plaintext checksum carried inside each (possibly encrypted)
/// body. A corruption/wrong-password detector, **not** a MAC: under the
/// malleable stream cipher a deliberate forgery sticks with probability
/// 2⁻³², which deters nobody — see the module docs.
const INTEGRITY_TAG_LEN: usize = 4;

/// v1 container magic. Distinct from the pickle magic `PKL1` that opens a
/// legacy plain payload, so [`decode_payload`] can dispatch by sniffing.
const CONTAINER_MAGIC: [u8; 4] = *b"DUC1";
/// v1 container version byte.
const CONTAINER_VERSION: u8 = 1;

/// Container flag: blocks went through the LZ codec (stored fallback aside).
const FLAG_COMPRESS: u8 = 1;
/// Container flag: bodies are ChaCha20-encrypted.
const FLAG_ENCRYPT: u8 = 2;

/// Per-block encoding byte: raw bytes (incompressible fallback / no codec).
const BLOCK_STORED: u8 = 0;
/// Per-block encoding byte: LZ token stream.
const BLOCK_LZ: u8 = 1;

/// Most-recently-used KDF cache entries kept per process.
const KDF_CACHE_CAP: usize = 8;

thread_local! {
    /// Per-thread LZ scratch: pool workers are persistent, so the two
    /// match-finder tables are allocated once per worker instead of once
    /// per block. Epoch stamping keeps reuse output-invisible.
    static LZ_SCRATCH: RefCell<lz::Scratch> = RefCell::new(lz::Scratch::new());
}

/// Derive (or fetch) the ChaCha20 transfer key for `password`.
///
/// The KDF runs 1024 SHA-256 iterations by design — deliberately slow —
/// but a debug session re-extracts with the same password dozens of
/// times, so the stretched key is cached process-wide (small MRU list,
/// capped at [`KDF_CACHE_CAP`] entries). The key depends only on
/// (password, constant salt); transfer ids enter through nonces instead.
fn transfer_key(password: &str) -> [u8; 32] {
    static CACHE: Mutex<Vec<(String, [u8; 32])>> = Mutex::new(Vec::new());
    {
        let mut cache = CACHE.lock().expect("kdf cache poisoned");
        if let Some(i) = cache.iter().position(|(p, _)| p == password) {
            let hit = cache.remove(i);
            let key = hit.1;
            cache.insert(0, hit);
            obs::counter!("transfer.kdf.cache_hits").inc();
            return key;
        }
    }
    // Derive outside the lock: 1024 SHA-256 rounds must not serialize
    // unrelated transfers behind the cache mutex.
    let key = derive_key(password, TRANSFER_SALT);
    let mut cache = CACHE.lock().expect("kdf cache poisoned");
    if !cache.iter().any(|(p, _)| p == password) {
        cache.insert(0, (password.to_string(), key));
        cache.truncate(KDF_CACHE_CAP);
    }
    obs::counter!("transfer.kdf.cache_misses").inc();
    key
}

/// Mix the session-level sampling seed with the per-transfer id so every
/// extract in a session draws a fresh (but reproducible) sample. A full
/// splitmix64 step gives avalanche; a plain XOR would only flip low bits
/// for small consecutive transfer ids.
fn mix_seed(seed: u64, transfer_id: u64) -> u64 {
    let mut state = seed ^ transfer_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    devharness::rng::splitmix64(&mut state)
}

/// Derive the per-session sampling seed the server threads into
/// [`encode_payload`]: mixes the engine's base seed with the wire session
/// id, so two debug sessions against the same server sample different
/// rows while any single (engine seed, session, transfer) triple stays
/// fully reproducible.
pub fn derive_sample_seed(engine_seed: u64, session: u64) -> u64 {
    let mut state = engine_seed.wrapping_add(session.wrapping_mul(0xA24B_AED4_963E_E407));
    devharness::rng::splitmix64(&mut state)
}

/// Apply uniform random sampling to an extracted inputs dict: every array
/// value is sampled at the *same* row indices (rows stay aligned across
/// parameters); scalars pass through. `seed` makes the sample reproducible.
pub fn sample_inputs(inputs: &Value, k: usize, seed: u64) -> Result<Value, TransferError> {
    let Value::Dict(d) = inputs else {
        return Err(TransferError::Input("inputs must be a dict".into()));
    };
    let d = d.borrow();
    // Find the common array length.
    let mut n: Option<usize> = None;
    for (_, v) in d.entries() {
        if let Value::Array(a) = v {
            match n {
                None => n = Some(a.len()),
                Some(existing) if existing != a.len() => {
                    return Err(TransferError::Input(format!(
                        "input arrays have differing lengths ({existing} vs {})",
                        a.len()
                    )))
                }
                _ => {}
            }
        }
    }
    let Some(n) = n else {
        // No arrays at all: sampling is a no-op.
        return Ok(inputs.clone());
    };
    if k >= n {
        return Ok(inputs.clone());
    }
    // Partial Fisher–Yates over row indices, sorted to preserve order
    // (devharness::Rng::sample_indices does exactly this).
    let picked = devharness::Rng::new(seed).sample_indices(n, k);

    let mut out = Dict::new();
    for (key, v) in d.entries() {
        let sampled = match v {
            Value::Array(a) => {
                let vals: Vec<Value> = picked.iter().map(|&i| a.get(i)).collect();
                Value::array(
                    Array::from_values(&vals)
                        .map_err(|e| TransferError::Input(format!("sampling failed: {e}")))?,
                )
            }
            other => other.clone(),
        };
        out.insert(key.clone(), sampled)
            .map_err(|e| TransferError::Input(e.to_string()))?;
    }
    Ok(Value::dict(out))
}

/// Code one plaintext block exactly as the v1 container does: optional LZ
/// (with the stored fallback), a 4-byte FNV-1a tag, then optional ChaCha20
/// under the per-block nonce for (`transfer_id`, `index`). Shared by the
/// full container writer and the delta path, so a delta-shipped block is
/// bit-identical to its container counterpart.
fn encode_block_body(
    raw: &[u8],
    compress: bool,
    key: Option<&[u8; 32]>,
    transfer_id: u64,
    index: usize,
) -> (u8, Vec<u8>) {
    let start = Instant::now();
    let (enc, mut body) = if compress {
        let packed = LZ_SCRATCH.with(|s| lz::compress_with(&mut s.borrow_mut(), raw));
        if packed.len() < raw.len() {
            (BLOCK_LZ, packed)
        } else {
            // Incompressible block: store raw rather than expand.
            (BLOCK_STORED, raw.to_vec())
        }
    } else {
        (BLOCK_STORED, raw.to_vec())
    };
    let tag = codecs::fnv1a_32(&body);
    body.extend_from_slice(&tag.to_le_bytes());
    if let Some(key) = key {
        let nonce = kdf::derive_block_nonce(transfer_id, index as u64);
        chacha20::ChaCha20::new(key, &nonce, 1).apply(&mut body);
    }
    obs::histogram!("transfer.block.encode_ns").record_duration(start.elapsed());
    (enc, body)
}

/// Reverse [`encode_block_body`] into `target`, whose length is the
/// block's expected raw length. `body` is untrusted wire bytes; nothing
/// here sizes an allocation from it.
fn decode_block_body(
    block: usize,
    enc: u8,
    body: &[u8],
    key: Option<&[u8; 32]>,
    transfer_id: u64,
    target: &mut [u8],
) -> Result<(), TransferError> {
    let start = Instant::now();
    if body.len() <= INTEGRITY_TAG_LEN {
        return Err(container_err(format!(
            "block {block}: body too short for integrity tag"
        )));
    }
    let mut plain = body.to_vec();
    if let Some(key) = key {
        let nonce = kdf::derive_block_nonce(transfer_id, block as u64);
        chacha20::ChaCha20::new(key, &nonce, 1).apply(&mut plain);
    }
    let tag_at = plain.len() - INTEGRITY_TAG_LEN;
    let expected = u32::from_le_bytes(plain[tag_at..].try_into().expect("4-byte tag"));
    let codec_bytes = &plain[..tag_at];
    if codecs::fnv1a_32(codec_bytes) != expected {
        return Err(TransferError::BlockIntegrity {
            block,
            encrypted: key.is_some(),
        });
    }
    let res = match enc {
        BLOCK_STORED => {
            if codec_bytes.len() != target.len() {
                Err(TransferError::BlockCodec {
                    block,
                    detail: format!(
                        "stored block holds {} bytes, expected {}",
                        codec_bytes.len(),
                        target.len()
                    ),
                })
            } else {
                target.copy_from_slice(codec_bytes);
                Ok(())
            }
        }
        _ => lz::decompress_into(codec_bytes, target).map_err(|e| TransferError::BlockCodec {
            block,
            detail: e.to_string(),
        }),
    };
    obs::histogram!("transfer.block.decode_ns").record_duration(start.elapsed());
    res
}

/// Pack raw bytes into the v1 chunked container, running the per-block
/// codec across `pool`. Output bytes are independent of the pool width.
pub fn encode_blocks(
    pool: &Pool,
    data: &[u8],
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
) -> Vec<u8> {
    let block_size = options.effective_block_size();
    let nblocks = data.len().div_ceil(block_size);
    obs::histogram!("transfer.blocks_per_payload").record(nblocks as u64);

    let key = options.encrypt.then(|| transfer_key(password));
    let compress = options.compress;
    let blocks: Vec<&[u8]> = data.chunks(block_size).collect();
    let bodies: Vec<(u8, Vec<u8>)> = pool.map(blocks, |index, raw| {
        encode_block_body(raw, compress, key.as_ref(), transfer_id, index)
    });

    let wire_total: usize = bodies.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(wire_total + 16 + bodies.len() * 8);
    out.extend_from_slice(&CONTAINER_MAGIC);
    out.push(CONTAINER_VERSION);
    let mut flags = 0u8;
    if compress {
        flags |= FLAG_COMPRESS;
    }
    if key.is_some() {
        flags |= FLAG_ENCRYPT;
    }
    out.push(flags);
    write_u64(&mut out, block_size as u64);
    write_u64(&mut out, data.len() as u64);
    write_u64(&mut out, nblocks as u64);
    for (i, (enc, body)) in bodies.iter().enumerate() {
        let raw_len = if i + 1 == nblocks {
            data.len() - i * block_size
        } else {
            block_size
        };
        out.push(*enc);
        write_u64(&mut out, raw_len as u64);
        write_u64(&mut out, body.len() as u64);
    }
    for (_, body) in &bodies {
        out.extend_from_slice(body);
    }
    out
}

/// Parsed per-block header entry.
struct BlockMeta {
    enc: u8,
    raw_len: usize,
    wire_len: usize,
}

fn container_err(msg: impl Into<String>) -> TransferError {
    TransferError::Container(msg.into())
}

fn read_varint_usize(
    payload: &[u8],
    cursor: &mut usize,
    what: &str,
) -> Result<usize, TransferError> {
    let (v, used) = read_u64(&payload[*cursor..])
        .map_err(|e| container_err(format!("bad {what} varint: {e}")))?;
    *cursor += used;
    usize::try_from(v).map_err(|_| container_err(format!("{what} out of range")))
}

/// True when `payload` opens with the v1 container magic + version.
/// A legacy plain payload opens with the pickle magic `PKL1`, a legacy
/// compressed/encrypted blob with a varint/ciphertext — neither collides.
pub fn is_container(payload: &[u8]) -> bool {
    payload.len() >= 6 && payload[..4] == CONTAINER_MAGIC && payload[4] == CONTAINER_VERSION
}

/// Unpack a v1 chunked container produced by [`encode_blocks`], decoding
/// blocks across `pool` into disjoint slices of one output allocation.
pub fn decode_blocks(
    pool: &Pool,
    payload: &[u8],
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
) -> Result<Vec<u8>, TransferError> {
    if payload.len() < 6 {
        return Err(container_err("payload shorter than fixed header"));
    }
    if payload[..4] != CONTAINER_MAGIC {
        return Err(container_err("bad magic"));
    }
    if payload[4] != CONTAINER_VERSION {
        return Err(container_err(format!(
            "unsupported container version {}",
            payload[4]
        )));
    }
    let flags = payload[5];
    if flags & !(FLAG_COMPRESS | FLAG_ENCRYPT) != 0 {
        return Err(container_err(format!("unknown flag bits {flags:#04x}")));
    }
    let compressed = flags & FLAG_COMPRESS != 0;
    let encrypted = flags & FLAG_ENCRYPT != 0;
    // The container is self-describing, but it must agree with the
    // negotiated options — a mismatch means the frame was corrupted or
    // the peers disagree about the session.
    if compressed != options.compress || encrypted != options.encrypt {
        return Err(container_err(format!(
            "container flags (compress={compressed}, encrypt={encrypted}) disagree \
             with negotiated options (compress={}, encrypt={})",
            options.compress, options.encrypt
        )));
    }

    let mut cursor = 6usize;
    let block_size = read_varint_usize(payload, &mut cursor, "block size")?;
    let raw_total = read_varint_usize(payload, &mut cursor, "raw length")?;
    let nblocks = read_varint_usize(payload, &mut cursor, "block count")?;
    if block_size == 0 {
        return Err(container_err("zero block size"));
    }
    if nblocks != raw_total.div_ceil(block_size) {
        return Err(container_err(format!(
            "block count {nblocks} inconsistent with raw length {raw_total} \
             and block size {block_size}"
        )));
    }
    // Never size an allocation from a declared count alone: each block
    // table entry occupies at least 3 bytes (encoding byte + two
    // varints), so a count the remaining payload cannot possibly hold is
    // rejected before `metas` is reserved.
    if nblocks > (payload.len() - cursor) / 3 {
        return Err(container_err(format!(
            "block count {nblocks} exceeds what {} remaining bytes can hold",
            payload.len() - cursor
        )));
    }

    let mut metas = Vec::with_capacity(nblocks);
    let mut raw_sum = 0usize;
    let mut wire_sum = 0usize;
    for i in 0..nblocks {
        if cursor >= payload.len() {
            return Err(container_err("truncated block table"));
        }
        let enc = payload[cursor];
        cursor += 1;
        if enc > BLOCK_LZ {
            return Err(container_err(format!("block {i}: unknown encoding {enc}")));
        }
        if enc == BLOCK_LZ && !compressed {
            return Err(container_err(format!(
                "block {i}: LZ encoding in an uncompressed container"
            )));
        }
        let raw_len = read_varint_usize(payload, &mut cursor, "block raw length")?;
        let wire_len = read_varint_usize(payload, &mut cursor, "block wire length")?;
        let expected_raw = if i + 1 == nblocks {
            raw_total - (nblocks - 1) * block_size
        } else {
            block_size
        };
        if raw_len != expected_raw {
            return Err(container_err(format!(
                "block {i}: raw length {raw_len}, expected {expected_raw}"
            )));
        }
        if wire_len <= INTEGRITY_TAG_LEN {
            return Err(container_err(format!(
                "block {i}: wire length {wire_len} too short for integrity tag"
            )));
        }
        // Declared raw lengths size the output allocation below, so they
        // must be plausible for the wire bytes actually present — a
        // hostile header must not buy a terabyte `vec![0; raw_total]`
        // with a handful of payload bytes. Stored blocks are exact
        // (encode writes raw + tag); LZ blocks are bounded by the
        // codec's own minimum stream length for `raw_len` output bytes.
        let codec_len = wire_len - INTEGRITY_TAG_LEN;
        match enc {
            BLOCK_STORED => {
                if codec_len != raw_len {
                    return Err(container_err(format!(
                        "block {i}: stored wire length {wire_len} does not match \
                         raw length {raw_len} plus tag"
                    )));
                }
            }
            _ => {
                if codec_len < lz::min_stream_len(raw_len) {
                    return Err(container_err(format!(
                        "block {i}: raw length {raw_len} impossible for a \
                         {codec_len}-byte LZ stream"
                    )));
                }
            }
        }
        raw_sum += raw_len;
        wire_sum = wire_sum
            .checked_add(wire_len)
            .ok_or_else(|| container_err("block table overflows"))?;
        metas.push(BlockMeta {
            enc,
            raw_len,
            wire_len,
        });
    }
    if raw_sum != raw_total {
        return Err(container_err(format!(
            "block raw lengths sum to {raw_sum}, header declares {raw_total}"
        )));
    }
    if payload.len() - cursor != wire_sum {
        return Err(container_err(format!(
            "body holds {} bytes, block table declares {wire_sum}",
            payload.len() - cursor
        )));
    }

    let key = encrypted.then(|| transfer_key(password));
    let mut out = vec![0u8; raw_total];

    // Pair each block's body slice with its (disjoint) output slice.
    let mut jobs: Vec<(u8, &[u8], &mut [u8])> = Vec::with_capacity(nblocks);
    {
        let mut body_off = cursor;
        let mut chunks = out.chunks_mut(block_size);
        for meta in &metas {
            let body = &payload[body_off..body_off + meta.wire_len];
            body_off += meta.wire_len;
            let target = chunks.next().expect("raw sums validated");
            debug_assert_eq!(target.len(), meta.raw_len);
            jobs.push((meta.enc, body, target));
        }
    }

    let results: Vec<Result<(), TransferError>> = pool.map(jobs, |block, (enc, body, target)| {
        decode_block_body(block, enc, body, key.as_ref(), transfer_id, target)
    });
    // First failing block (in block order, not completion order) wins, so
    // the reported error is deterministic.
    for result in results {
        result?;
    }
    Ok(out)
}

/// One shipped block of a delta reply: the block's position in the fresh
/// payload's block grid, its per-block encoding byte (0 = stored, 1 = LZ
/// — the container's alphabet), and a coded body bit-identical to what
/// the v1 container would carry for that block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBlock {
    /// Index of the block in the fresh payload's block grid.
    pub index: u64,
    /// Per-block encoding byte (0 = stored, 1 = LZ).
    pub enc: u8,
    /// Coded body: optional-ChaCha20(codec bytes ‖ FNV-1a tag).
    pub body: Vec<u8>,
}

/// Content addresses of `data`'s blocks at `block_size`, computed across
/// `pool`. Semantically identical to [`codecs::sha256::block_digests`]
/// but fanned out over the worker pool ([`Pool::map`] preserves order, so
/// the result is pool-width independent). Digests are taken over the
/// *plaintext* pickle blocks — before compression and encryption — which
/// is what makes them stable across transfers.
///
/// # Panics
///
/// Panics if `block_size` is zero.
pub fn block_digests_pooled(pool: &Pool, data: &[u8], block_size: usize) -> Vec<[u8; 32]> {
    assert!(block_size > 0, "block_size must be non-zero");
    let chunks: Vec<&[u8]> = data.chunks(block_size).collect();
    pool.map(chunks, |_, chunk| codecs::sha256::sha256(chunk))
}

/// Server side of a delta reply: run the per-block codec only over the
/// blocks flagged in `ship` (indexes past `ship`'s end are shipped). Each
/// block keeps its **original** grid index in the nonce derivation, so a
/// shipped body is bit-identical to the same block in a full container.
pub fn encode_delta_blocks(
    pool: &Pool,
    data: &[u8],
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
    ship: &[bool],
) -> Vec<DeltaBlock> {
    let block_size = options.effective_block_size();
    let key = options.encrypt.then(|| transfer_key(password));
    let compress = options.compress;
    let jobs: Vec<(usize, &[u8])> = data
        .chunks(block_size)
        .enumerate()
        .filter(|(i, _)| ship.get(*i).copied().unwrap_or(true))
        .collect();
    pool.map(jobs, |_, (index, raw)| {
        let (enc, body) = encode_block_body(raw, compress, key.as_ref(), transfer_id, index);
        DeltaBlock {
            index: index as u64,
            enc,
            body,
        }
    })
}

/// Client side of a delta reply: rebuild the fresh raw payload of
/// `raw_total` bytes from the shipped blocks plus cached raw blocks
/// looked up by digest.
///
/// Every input except `cached` is untrusted wire data and is validated
/// before it can size an allocation: the digest table must match the
/// declared grid, shipped indices must be strictly increasing and in
/// range, and each shipped body must be physically plausible for its
/// block's raw length (stored blocks are exact, LZ blocks are bounded by
/// the codec's minimum stream length). Decoded shipped blocks are
/// re-hashed and checked against the digest table, so a block that
/// decodes to the wrong content fails loudly. Cached blocks are trusted
/// to match their digest — [`crate::delta::CacheEntry`] constructs them
/// from hashed data.
#[allow(clippy::too_many_arguments)]
pub fn reconstruct_delta(
    pool: &Pool,
    raw_total: usize,
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
    digests: &[[u8; 32]],
    shipped: &[DeltaBlock],
    cached: &HashMap<[u8; 32], &[u8]>,
) -> Result<Vec<u8>, TransferError> {
    let block_size = options.effective_block_size();
    let nblocks = raw_total.div_ceil(block_size);
    if digests.len() != nblocks {
        return Err(container_err(format!(
            "digest table holds {} entries, raw length {raw_total} at block \
             size {block_size} needs {nblocks}",
            digests.len()
        )));
    }
    let raw_len_of = |i: usize| {
        if i + 1 == nblocks {
            raw_total - (nblocks - 1) * block_size
        } else {
            block_size
        }
    };
    // Validate the shipped set, then plan every block's source before any
    // output allocation happens.
    let mut shipped_of = vec![None::<usize>; nblocks];
    let mut prev: Option<u64> = None;
    for (j, b) in shipped.iter().enumerate() {
        if prev.is_some_and(|p| b.index <= p) {
            return Err(container_err(format!(
                "shipped block indices not strictly increasing at {}",
                b.index
            )));
        }
        prev = Some(b.index);
        let index = usize::try_from(b.index)
            .ok()
            .filter(|i| *i < nblocks)
            .ok_or_else(|| {
                container_err(format!("shipped block index {} out of range", b.index))
            })?;
        if b.enc > BLOCK_LZ {
            return Err(container_err(format!(
                "block {index}: unknown encoding {}",
                b.enc
            )));
        }
        if b.enc == BLOCK_LZ && !options.compress {
            return Err(container_err(format!(
                "block {index}: LZ encoding in an uncompressed delta"
            )));
        }
        if b.body.len() <= INTEGRITY_TAG_LEN {
            return Err(container_err(format!(
                "block {index}: body too short for integrity tag"
            )));
        }
        let codec_len = b.body.len() - INTEGRITY_TAG_LEN;
        let raw_len = raw_len_of(index);
        match b.enc {
            BLOCK_STORED => {
                if codec_len != raw_len {
                    return Err(container_err(format!(
                        "block {index}: stored body holds {codec_len} bytes, \
                         expected {raw_len}"
                    )));
                }
            }
            _ => {
                if codec_len < lz::min_stream_len(raw_len) {
                    return Err(container_err(format!(
                        "block {index}: raw length {raw_len} impossible for a \
                         {codec_len}-byte LZ stream"
                    )));
                }
            }
        }
        shipped_of[index] = Some(j);
    }
    // Every non-shipped block must resolve in the cache — checked before
    // the output is allocated so a hostile digest table cannot buy a huge
    // allocation with bytes it never sent.
    let mut cached_of = vec![None::<&[u8]>; nblocks];
    for i in 0..nblocks {
        if shipped_of[i].is_some() {
            continue;
        }
        let raw = cached.get(&digests[i]).copied().ok_or_else(|| {
            container_err(format!(
                "server omitted block {i} but its digest is not in the cache"
            ))
        })?;
        if raw.len() != raw_len_of(i) {
            return Err(container_err(format!(
                "cached block {i} holds {} bytes, grid expects {}",
                raw.len(),
                raw_len_of(i)
            )));
        }
        cached_of[i] = Some(raw);
    }

    let key = options.encrypt.then(|| transfer_key(password));
    let mut out = vec![0u8; raw_total];
    let mut decode_jobs: Vec<(usize, &DeltaBlock, &mut [u8])> = Vec::with_capacity(shipped.len());
    for (i, target) in out.chunks_mut(block_size).enumerate() {
        match shipped_of[i] {
            Some(j) => decode_jobs.push((i, &shipped[j], target)),
            None => target.copy_from_slice(cached_of[i].expect("coverage validated")),
        }
    }
    let results: Vec<Result<(), TransferError>> =
        pool.map(decode_jobs, |_, (index, block, target)| {
            decode_block_body(
                index,
                block.enc,
                &block.body,
                key.as_ref(),
                transfer_id,
                target,
            )?;
            if codecs::sha256::sha256(target) != digests[index] {
                return Err(TransferError::BlockCodec {
                    block: index,
                    detail: "content digest mismatch after decode".into(),
                });
            }
            Ok(())
        });
    for result in results {
        result?;
    }
    Ok(out)
}

/// Pickle an inputs value with no codec work — the delta path digests and
/// codes blocks separately, and the `NotModified` answer skips this call
/// entirely.
pub fn pickle_inputs(inputs: &Value) -> Result<Vec<u8>, TransferError> {
    pickle::dumps(inputs).map_err(|e| TransferError::Pickle(format!("pickle: {e}")))
}

/// Unpickle a raw (reconstructed) payload — the delta path's final step.
pub fn unpickle_inputs(data: &[u8]) -> Result<Value, TransferError> {
    pickle::loads(data).map_err(|e| TransferError::Pickle(format!("unpickle: {e}")))
}

/// Server side: pickle the (possibly sampled) inputs and apply the selected
/// codecs on the process-global pool. Returns (wire payload, raw pickle
/// length). See [`encode_payload_with`] to supply a specific pool.
pub fn encode_payload(
    inputs: &Value,
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
    seed: u64,
) -> Result<(Vec<u8>, usize), TransferError> {
    encode_payload_with(pool::global(), inputs, options, password, transfer_id, seed)
}

/// [`encode_payload`] with an explicit worker pool.
pub fn encode_payload_with(
    pool: &Pool,
    inputs: &Value,
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
    seed: u64,
) -> Result<(Vec<u8>, usize), TransferError> {
    let effective = match options.sample {
        Some(k) => sample_inputs(inputs, k, mix_seed(seed, transfer_id))?,
        None => inputs.clone(),
    };
    let payload =
        pickle::dumps(&effective).map_err(|e| TransferError::Pickle(format!("pickle: {e}")))?;
    let raw_len = payload.len();
    if !options.compress && !options.encrypt {
        // Plain transfers keep the zero-overhead legacy format: the raw
        // pickle itself is the wire payload.
        return Ok((payload, raw_len));
    }
    Ok((
        encode_blocks(pool, &payload, options, password, transfer_id),
        raw_len,
    ))
}

/// Legacy (v0) single-blob encoder: compress-then-encrypt the whole
/// pickle in one piece. Kept for compatibility tests and as the
/// single-core baseline in benchmarks; new code emits the chunked
/// container via [`encode_payload`].
pub fn encode_payload_legacy(
    inputs: &Value,
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
    seed: u64,
) -> Result<(Vec<u8>, usize), TransferError> {
    let effective = match options.sample {
        Some(k) => sample_inputs(inputs, k, mix_seed(seed, transfer_id))?,
        None => inputs.clone(),
    };
    let mut payload =
        pickle::dumps(&effective).map_err(|e| TransferError::Pickle(format!("pickle: {e}")))?;
    let raw_len = payload.len();
    if options.compress {
        payload = lz::compress(&payload);
    }
    if options.encrypt {
        // Integrity envelope: an FNV-1a checksum of the plaintext rides
        // *inside* the ciphertext, so a wrong-password decrypt fails
        // loudly instead of unpickling garbage.
        let tag = codecs::fnv1a_32(&payload);
        payload.extend_from_slice(&tag.to_le_bytes());
        let key = transfer_key(password);
        let nonce = kdf::derive_nonce(transfer_id);
        let mut cipher = chacha20::ChaCha20::new(&key, &nonce, 1);
        cipher.apply(&mut payload);
    }
    Ok((payload, raw_len))
}

/// Client side: reverse the codecs and unpickle on the process-global
/// pool. The client derives the same key from the password it already
/// holds — the key never crosses the wire. Dispatches on the container
/// magic, so legacy v0 single-blob payloads still decode.
pub fn decode_payload(
    payload: &[u8],
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
) -> Result<Value, TransferError> {
    decode_payload_with(pool::global(), payload, options, password, transfer_id)
}

/// [`decode_payload`] with an explicit worker pool.
pub fn decode_payload_with(
    pool: &Pool,
    payload: &[u8],
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
) -> Result<Value, TransferError> {
    let data = if (options.compress || options.encrypt) && is_container(payload) {
        decode_blocks(pool, payload, options, password, transfer_id)?
    } else {
        decode_legacy_bytes(payload, options, password, transfer_id)?
    };
    pickle::loads(&data)
        .map_err(|e| TransferError::Pickle(format!("unpickle (wrong password?): {e}")))
}

/// Reverse the legacy v0 single-blob codecs (no container framing).
fn decode_legacy_bytes(
    payload: &[u8],
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
) -> Result<Vec<u8>, TransferError> {
    let mut data = payload.to_vec();
    if options.encrypt {
        let key = transfer_key(password);
        let nonce = kdf::derive_nonce(transfer_id);
        let mut cipher = chacha20::ChaCha20::new(&key, &nonce, 1);
        cipher.apply(&mut data);
        // Verify the plaintext checksum appended by the legacy encoder.
        if data.len() < INTEGRITY_TAG_LEN {
            return Err(TransferError::Legacy(
                "encrypted payload too short for integrity tag".into(),
            ));
        }
        let tag_bytes = data.split_off(data.len() - INTEGRITY_TAG_LEN);
        let expected = u32::from_le_bytes(tag_bytes.try_into().expect("4-byte tag"));
        if codecs::fnv1a_32(&data) != expected {
            return Err(TransferError::Legacy(
                "integrity check failed after decryption (wrong password?)".into(),
            ));
        }
    }
    if options.compress {
        data = lz::decompress(&data)
            .map_err(|e| TransferError::Legacy(format!("decompress (wrong password?): {e}")))?;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dict(rows: usize) -> Value {
        let mut d = Dict::new();
        d.insert(
            Value::str("data"),
            Value::array(Array::Int((0..rows as i64).collect())),
        )
        .unwrap();
        d.insert(
            Value::str("labels"),
            Value::array(Array::Int((0..rows as i64).map(|i| i % 2).collect())),
        )
        .unwrap();
        d.insert(Value::str("n_estimators"), Value::Int(10))
            .unwrap();
        Value::dict(d)
    }

    fn get_arr(v: &Value, key: &str) -> Vec<i64> {
        let Value::Dict(d) = v else { panic!() };
        let got = d.borrow().get(&Value::str(key)).unwrap().unwrap();
        let Value::Array(a) = got else {
            panic!("{key} not an array")
        };
        match a.as_ref() {
            Array::Int(v) => v.clone(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plain_round_trip() {
        let inputs = sample_dict(100);
        let (payload, raw) =
            encode_payload(&inputs, &TransferOptions::plain(), "pw", 1, 7).unwrap();
        // Plain stays legacy v0: the raw pickle, zero framing overhead.
        assert_eq!(payload.len(), raw);
        assert!(!is_container(&payload));
        let back = decode_payload(&payload, &TransferOptions::plain(), "pw", 1).unwrap();
        assert!(back.py_eq(&inputs));
    }

    #[test]
    fn compression_shrinks_repetitive_inputs() {
        let mut d = Dict::new();
        d.insert(
            Value::str("col"),
            Value::array(Array::Int(vec![7; 100_000])),
        )
        .unwrap();
        let inputs = Value::dict(d);
        let opts = TransferOptions::compressed();
        let (payload, raw) = encode_payload(&inputs, &opts, "pw", 2, 7).unwrap();
        assert!(is_container(&payload));
        assert!(payload.len() < raw / 10, "{} vs {raw}", payload.len());
        let back = decode_payload(&payload, &opts, "pw", 2).unwrap();
        assert!(back.py_eq(&inputs));
    }

    #[test]
    fn encryption_round_trips_and_scrambles() {
        let inputs = sample_dict(50);
        let opts = TransferOptions::encrypted();
        let (payload, raw) = encode_payload(&inputs, &opts, "secret", 3, 7).unwrap();
        // Container framing + per-block integrity tags add overhead.
        assert!(is_container(&payload));
        assert!(payload.len() > raw);
        // The (plaintext) header aside, the body must not leak the pickle
        // magic anywhere.
        assert!(
            !payload.windows(4).any(|w| w == b"PKL1"),
            "ciphertext leaked pickle magic"
        );
        let back = decode_payload(&payload, &opts, "secret", 3).unwrap();
        assert!(back.py_eq(&inputs));
    }

    #[test]
    fn multi_block_payload_round_trips_every_combo() {
        // Big enough for several blocks at a small block size, with a
        // compressible and an incompressible column.
        let mut noisy = devharness::Rng::new(42);
        let mut d = Dict::new();
        d.insert(
            Value::str("smooth"),
            Value::array(Array::Int((0..20_000).map(|i| i / 3).collect())),
        )
        .unwrap();
        d.insert(
            Value::str("noise"),
            Value::array(Array::Int(
                (0..20_000).map(|_| noisy.next_u64() as i64).collect(),
            )),
        )
        .unwrap();
        let inputs = Value::dict(d);
        for compress in [false, true] {
            for encrypt in [false, true] {
                if !compress && !encrypt {
                    continue; // plain is the v0 passthrough, covered above
                }
                let opts = TransferOptions {
                    compress,
                    encrypt,
                    ..Default::default()
                }
                .with_block_size(16 * 1024);
                let (payload, raw) = encode_payload(&inputs, &opts, "pw", 5, 7).unwrap();
                assert!(is_container(&payload));
                assert!(raw > 64 * 1024, "test payload too small: {raw}");
                let back = decode_payload(&payload, &opts, "pw", 5).unwrap();
                assert!(back.py_eq(&inputs), "combo c={compress} e={encrypt}");
            }
        }
    }

    #[test]
    fn wire_bytes_do_not_depend_on_pool_width() {
        let inputs = sample_dict(50_000);
        let opts = TransferOptions {
            compress: true,
            encrypt: true,
            ..Default::default()
        }
        .with_block_size(8 * 1024);
        let reference = Pool::new(1);
        let (expect, raw) = encode_payload_with(&reference, &inputs, &opts, "pw", 9, 7).unwrap();
        for threads in [2, 4, 8] {
            let pool = Pool::new(threads);
            let (payload, raw2) = encode_payload_with(&pool, &inputs, &opts, "pw", 9, 7).unwrap();
            assert_eq!(raw, raw2);
            assert_eq!(payload, expect, "{threads}-thread pool changed wire bytes");
            let back = decode_payload_with(&pool, &payload, &opts, "pw", 9).unwrap();
            assert!(back.py_eq(&inputs));
        }
    }

    #[test]
    fn incompressible_blocks_fall_back_to_stored() {
        let mut rng = devharness::Rng::new(1);
        let mut noise = vec![0u8; 64 * 1024];
        rng.fill_bytes(&mut noise);
        let opts = TransferOptions::compressed().with_block_size(16 * 1024);
        let pool = Pool::new(2);
        let payload = encode_blocks(&pool, &noise, &opts, "pw", 1);
        // Stored fallback bounds expansion to framing + tags.
        assert!(payload.len() < noise.len() + 128, "{}", payload.len());
        assert_eq!(
            decode_blocks(&pool, &payload, &opts, "pw", 1).unwrap(),
            noise
        );
    }

    #[test]
    fn corrupting_any_single_block_fails_loudly_with_its_index() {
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(2000);
        let opts = TransferOptions {
            compress: true,
            encrypt: true,
            ..Default::default()
        }
        .with_block_size(8 * 1024);
        let pool = Pool::new(4);
        let clean = encode_blocks(&pool, &data, &opts, "pw", 3);
        // Parse the header to find each body's offset in the payload.
        fn take(buf: &[u8], cur: &mut usize) -> usize {
            let (v, used) = read_u64(&buf[*cur..]).unwrap();
            *cur += used;
            v as usize
        }
        let mut cur = 6usize;
        let _block_size = take(&clean, &mut cur);
        let _raw_total = take(&clean, &mut cur);
        let nblocks = take(&clean, &mut cur);
        assert!(nblocks >= 4, "want a multi-block payload, got {nblocks}");
        let mut wire_lens = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            cur += 1; // enc byte
            let _raw_len = take(&clean, &mut cur);
            wire_lens.push(take(&clean, &mut cur));
        }
        // Flip one byte inside each block body in turn; decode must blame
        // exactly that block (every body is ≥ 5 bytes, so +2 stays inside).
        let mut off = cur;
        for (block, wire_len) in wire_lens.into_iter().enumerate() {
            let mut bad = clean.clone();
            bad[off + 2] ^= 0x10;
            match decode_blocks(&pool, &bad, &opts, "pw", 3) {
                Err(TransferError::BlockIntegrity { block: got, .. }) => {
                    assert_eq!(got, block, "wrong block blamed");
                }
                other => panic!("block {block}: expected BlockIntegrity, got {other:?}"),
            }
            off += wire_len;
        }
    }

    #[test]
    fn legacy_v0_blob_still_decodes() {
        let inputs = sample_dict(200);
        for opts in [
            TransferOptions::compressed(),
            TransferOptions::encrypted(),
            TransferOptions {
                compress: true,
                encrypt: true,
                ..Default::default()
            },
        ] {
            let (payload, _) = encode_payload_legacy(&inputs, &opts, "pw", 6, 7).unwrap();
            assert!(!is_container(&payload));
            let back = decode_payload(&payload, &opts, "pw", 6).unwrap();
            assert!(back.py_eq(&inputs), "legacy decode failed for {opts:?}");
        }
    }

    #[test]
    fn wrong_password_fails_to_decode() {
        let inputs = sample_dict(50);
        let opts = TransferOptions {
            compress: true,
            encrypt: true,
            ..Default::default()
        };
        let (payload, _) = encode_payload(&inputs, &opts, "right", 4, 7).unwrap();
        assert!(decode_payload(&payload, &opts, "wrong", 4).is_err());
    }

    #[test]
    fn wrong_password_on_uncompressed_payload_is_a_clear_error() {
        // Every wrong key is caught by the per-block checksum before
        // unpickling is even attempted, and the error says so.
        let inputs = sample_dict(50);
        let opts = TransferOptions::encrypted();
        let (payload, _) = encode_payload(&inputs, &opts, "right", 9, 7).unwrap();
        for wrong in ["wrong", "Right", "right ", ""] {
            match decode_payload(&payload, &opts, wrong, 9) {
                Err(
                    e @ TransferError::BlockIntegrity {
                        encrypted: true, ..
                    },
                ) => {
                    assert!(e.to_string().contains("wrong password"), "{e}")
                }
                other => panic!("wrong password '{wrong}': {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_ciphertext_is_rejected() {
        let inputs = sample_dict(20);
        let opts = TransferOptions::encrypted();
        let (mut payload, _) = encode_payload(&inputs, &opts, "pw", 11, 7).unwrap();
        // Flip a byte in the (single) block body at the tail.
        let at = payload.len() - 5;
        payload[at] ^= 0x40;
        assert!(decode_payload(&payload, &opts, "pw", 11).is_err());
    }

    #[test]
    fn hostile_raw_total_is_rejected_before_allocation() {
        // A ~40-byte container declaring a terabyte raw length must be
        // rejected from the framing alone — no honest 5-byte LZ stream
        // can expand to 2^40 bytes, and the declared length must never
        // size an allocation. (A valid tag proves rejection happens at
        // the header, not at the post-allocation integrity check.)
        let opts = TransferOptions::compressed();
        let mut body = vec![0u8; 5];
        let tag = codecs::fnv1a_32(&body);
        body.extend_from_slice(&tag.to_le_bytes());
        let mut p = Vec::new();
        p.extend_from_slice(&CONTAINER_MAGIC);
        p.push(CONTAINER_VERSION);
        p.push(FLAG_COMPRESS);
        write_u64(&mut p, 1 << 40); // block_size
        write_u64(&mut p, 1 << 40); // raw_total
        write_u64(&mut p, 1); // nblocks
        p.push(BLOCK_LZ);
        write_u64(&mut p, 1 << 40); // raw_len
        write_u64(&mut p, body.len() as u64); // wire_len
        p.extend_from_slice(&body);
        let pool = Pool::new(1);
        match decode_blocks(&pool, &p, &opts, "", 0) {
            Err(TransferError::Container(msg)) => {
                assert!(msg.contains("impossible"), "{msg}")
            }
            other => panic!("hostile raw_total: {other:?}"),
        }
    }

    #[test]
    fn hostile_block_count_is_rejected_before_allocation() {
        // block_size=1 makes nblocks equal the declared raw length; the
        // block table for 2^40 entries cannot fit in a short payload, so
        // the count is rejected before the table vector is reserved.
        let opts = TransferOptions::compressed();
        let mut p = Vec::new();
        p.extend_from_slice(&CONTAINER_MAGIC);
        p.push(CONTAINER_VERSION);
        p.push(FLAG_COMPRESS);
        write_u64(&mut p, 1); // block_size
        write_u64(&mut p, 1 << 40); // raw_total
        write_u64(&mut p, 1 << 40); // nblocks
        let pool = Pool::new(1);
        match decode_blocks(&pool, &p, &opts, "", 0) {
            Err(TransferError::Container(msg)) => {
                assert!(msg.contains("exceeds what"), "{msg}")
            }
            other => panic!("hostile nblocks: {other:?}"),
        }
    }

    #[test]
    fn hostile_stored_block_length_mismatch_is_rejected() {
        // Stored blocks are exact: wire length must equal raw + tag.
        let opts = TransferOptions::compressed();
        let mut body = vec![7u8; 10];
        let tag = codecs::fnv1a_32(&body);
        body.extend_from_slice(&tag.to_le_bytes());
        let mut p = Vec::new();
        p.extend_from_slice(&CONTAINER_MAGIC);
        p.push(CONTAINER_VERSION);
        p.push(FLAG_COMPRESS);
        write_u64(&mut p, 4096); // block_size
        write_u64(&mut p, 100); // raw_total (≠ 10 stored bytes)
        write_u64(&mut p, 1); // nblocks
        p.push(BLOCK_STORED);
        write_u64(&mut p, 100); // raw_len
        write_u64(&mut p, body.len() as u64); // wire_len = 14
        p.extend_from_slice(&body);
        let pool = Pool::new(1);
        match decode_blocks(&pool, &p, &opts, "", 0) {
            Err(TransferError::Container(msg)) => {
                assert!(msg.contains("does not match"), "{msg}")
            }
            other => panic!("stored mismatch: {other:?}"),
        }
    }

    #[test]
    fn truncated_encrypted_payload_is_rejected() {
        let inputs = sample_dict(20);
        let opts = TransferOptions::encrypted();
        let (payload, _) = encode_payload(&inputs, &opts, "pw", 12, 7).unwrap();
        for cut in [2, 6, payload.len() - 3] {
            assert!(
                decode_payload(&payload[..cut], &opts, "pw", 12).is_err(),
                "accepted payload truncated to {cut} bytes"
            );
        }
    }

    #[test]
    fn different_transfer_ids_produce_different_ciphertexts() {
        let inputs = sample_dict(20);
        let opts = TransferOptions::encrypted();
        let (p1, _) = encode_payload(&inputs, &opts, "pw", 1, 7).unwrap();
        let (p2, _) = encode_payload(&inputs, &opts, "pw", 2, 7).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn empty_and_tiny_payload_containers() {
        let pool = Pool::new(2);
        for opts in [
            TransferOptions::compressed(),
            TransferOptions::encrypted(),
            TransferOptions {
                compress: true,
                encrypt: true,
                ..Default::default()
            },
        ] {
            for data in [&b""[..], &b"x"[..], &[0u8; DEFAULT_BLOCK_SIZE][..]] {
                let payload = encode_blocks(&pool, data, &opts, "pw", 1);
                assert!(is_container(&payload));
                assert_eq!(
                    decode_blocks(&pool, &payload, &opts, "pw", 1).unwrap(),
                    data,
                    "{opts:?} len={}",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn container_flag_mismatch_is_rejected() {
        let pool = Pool::new(1);
        let data = b"hello world".repeat(100);
        let payload = encode_blocks(&pool, &data, &TransferOptions::compressed(), "pw", 1);
        let wrong = TransferOptions::encrypted();
        assert!(matches!(
            decode_blocks(&pool, &payload, &wrong, "pw", 1),
            Err(TransferError::Container(_))
        ));
    }

    #[test]
    fn sampling_keeps_rows_aligned() {
        let inputs = sample_dict(1000);
        let sampled = sample_inputs(&inputs, 100, 42).unwrap();
        let data = get_arr(&sampled, "data");
        let labels = get_arr(&sampled, "labels");
        assert_eq!(data.len(), 100);
        assert_eq!(labels.len(), 100);
        // Alignment: labels[i] must equal data[i] % 2 (their original link).
        for (d, l) in data.iter().zip(&labels) {
            assert_eq!(*l, d % 2);
        }
        // Scalars survive.
        let Value::Dict(dd) = &sampled else { panic!() };
        assert_eq!(
            dd.borrow()
                .get(&Value::str("n_estimators"))
                .unwrap()
                .unwrap(),
            Value::Int(10)
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let inputs = sample_dict(500);
        let a = sample_inputs(&inputs, 50, 9).unwrap();
        let b = sample_inputs(&inputs, 50, 9).unwrap();
        let c = sample_inputs(&inputs, 50, 10).unwrap();
        assert_eq!(get_arr(&a, "data"), get_arr(&b, "data"));
        assert_ne!(get_arr(&a, "data"), get_arr(&c, "data"));
    }

    #[test]
    fn repeated_extracts_sample_different_rows_per_transfer() {
        // Same session seed, consecutive transfer ids: each extract must
        // draw a fresh sample (the old `seed ^ transfer_id` mixing plus a
        // shared call-site seed always picked near-identical rows).
        let inputs = sample_dict(5000);
        let opts = TransferOptions::sampled(50);
        let seed = derive_sample_seed(0x5eed_cafe, 1);
        let (p1, _) = encode_payload(&inputs, &opts, "pw", 1, seed).unwrap();
        let (p2, _) = encode_payload(&inputs, &opts, "pw", 2, seed).unwrap();
        assert_ne!(p1, p2, "consecutive extracts picked identical samples");
        // Determinism per (seed, transfer) is preserved.
        let (p1b, _) = encode_payload(&inputs, &opts, "pw", 1, seed).unwrap();
        assert_eq!(p1, p1b);
    }

    #[test]
    fn different_sessions_sample_different_rows() {
        let engine_seed = 0x5eed_cafe;
        let s1 = derive_sample_seed(engine_seed, 1);
        let s2 = derive_sample_seed(engine_seed, 2);
        assert_ne!(s1, s2);
        let inputs = sample_dict(5000);
        let a = sample_inputs(&inputs, 50, s1).unwrap();
        let b = sample_inputs(&inputs, 50, s2).unwrap();
        assert_ne!(get_arr(&a, "data"), get_arr(&b, "data"));
        // Reproducible per session.
        assert_eq!(derive_sample_seed(engine_seed, 1), s1);
    }

    #[test]
    fn oversized_sample_is_identity() {
        let inputs = sample_dict(10);
        let sampled = sample_inputs(&inputs, 100, 1).unwrap();
        assert_eq!(get_arr(&sampled, "data").len(), 10);
    }

    #[test]
    fn sample_through_encode_reduces_payload() {
        let inputs = sample_dict(10_000);
        let full = encode_payload(&inputs, &TransferOptions::plain(), "pw", 1, 7).unwrap();
        let sampled = encode_payload(&inputs, &TransferOptions::sampled(100), "pw", 1, 7).unwrap();
        assert!(sampled.0.len() < full.0.len() / 10);
    }

    #[test]
    fn kdf_cache_returns_the_real_key() {
        // First call derives, second call must hit the cache with the
        // identical key; a different password gets a different key.
        let k1 = transfer_key("cache-test-pw");
        let k2 = transfer_key("cache-test-pw");
        assert_eq!(k1, k2);
        assert_eq!(k1, derive_key("cache-test-pw", TRANSFER_SALT));
        assert_ne!(k1, transfer_key("cache-test-other"));
    }

    #[test]
    fn pooled_digests_match_the_serial_helper() {
        let mut rng = devharness::Rng::new(77);
        let mut data = vec![0u8; 100_000];
        rng.fill_bytes(&mut data);
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            assert_eq!(
                block_digests_pooled(&pool, &data, 16 * 1024),
                codecs::sha256::block_digests(&data, 16 * 1024)
            );
        }
        assert!(block_digests_pooled(&Pool::new(2), &[], 1024).is_empty());
    }

    #[test]
    fn delta_bodies_are_bit_identical_to_container_bodies() {
        // A shipped delta block must carry exactly the bytes the full
        // container would carry for that block — same codec, same nonce.
        let data = b"abcdefgh".repeat(5000);
        for (compress, encrypt) in [(true, false), (false, true), (true, true)] {
            let opts = TransferOptions {
                compress,
                encrypt,
                ..Default::default()
            }
            .with_block_size(8 * 1024);
            let pool = Pool::new(3);
            let container = encode_blocks(&pool, &data, &opts, "pw", 17);
            let ship = vec![true; data.len().div_ceil(8 * 1024)];
            let delta = encode_delta_blocks(&pool, &data, &opts, "pw", 17, &ship);
            // Walk the container header to find each body.
            let mut cur = 6usize;
            let (_, used) = read_u64(&container[cur..]).unwrap();
            cur += used;
            let (_, used) = read_u64(&container[cur..]).unwrap();
            cur += used;
            let (nblocks, used) = read_u64(&container[cur..]).unwrap();
            cur += used;
            assert_eq!(nblocks as usize, delta.len());
            let mut metas = Vec::new();
            for _ in 0..nblocks {
                let enc = container[cur];
                cur += 1;
                let (_, used) = read_u64(&container[cur..]).unwrap();
                cur += used;
                let (wire_len, used) = read_u64(&container[cur..]).unwrap();
                cur += used;
                metas.push((enc, wire_len as usize));
            }
            for (i, (enc, wire_len)) in metas.into_iter().enumerate() {
                let body = &container[cur..cur + wire_len];
                cur += wire_len;
                assert_eq!(delta[i].index, i as u64);
                assert_eq!(delta[i].enc, enc, "c={compress} e={encrypt} block {i}");
                assert_eq!(delta[i].body, body, "c={compress} e={encrypt} block {i}");
            }
        }
    }

    #[test]
    fn delta_round_trips_cold_and_reuses_cached_blocks_warm() {
        let opts = TransferOptions {
            compress: true,
            encrypt: true,
            ..Default::default()
        }
        .with_block_size(4 * 1024);
        let pool = Pool::new(2);
        let old: Vec<u8> = (0..40_000u32).map(|i| (i / 7) as u8).collect();

        // Cold: nothing cached, everything shipped.
        let digests = block_digests_pooled(&pool, &old, 4 * 1024);
        let nblocks = digests.len();
        let shipped = encode_delta_blocks(&pool, &old, &opts, "pw", 1, &vec![true; nblocks]);
        let back = reconstruct_delta(
            &pool,
            old.len(),
            &opts,
            "pw",
            1,
            &digests,
            &shipped,
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(back, old);

        // Warm: mutate one block in place; only it should need shipping.
        let mut new = old.clone();
        new[9000] ^= 0xFF; // inside block 2
        let new_digests = block_digests_pooled(&pool, &new, 4 * 1024);
        let known: std::collections::HashSet<[u8; 32]> = digests.iter().copied().collect();
        let ship: Vec<bool> = new_digests.iter().map(|d| !known.contains(d)).collect();
        assert_eq!(ship.iter().filter(|s| **s).count(), 1);
        let shipped = encode_delta_blocks(&pool, &new, &opts, "pw", 2, &ship);
        assert_eq!(shipped.len(), 1);
        assert_eq!(shipped[0].index, 2);
        let cache: HashMap<[u8; 32], &[u8]> =
            digests.iter().copied().zip(old.chunks(4 * 1024)).collect();
        let back = reconstruct_delta(
            &pool,
            new.len(),
            &opts,
            "pw",
            2,
            &new_digests,
            &shipped,
            &cache,
        )
        .unwrap();
        assert_eq!(back, new);
    }

    #[test]
    fn hostile_delta_replies_are_rejected() {
        let pool = Pool::new(1);
        let opts = TransferOptions::compressed().with_block_size(1024);
        let data = vec![3u8; 4096];
        let digests = block_digests_pooled(&pool, &data, 1024);
        let full = encode_delta_blocks(&pool, &data, &opts, "pw", 5, &[true; 4]);
        let empty: HashMap<[u8; 32], &[u8]> = HashMap::new();

        // Digest table not matching the grid.
        assert!(
            reconstruct_delta(&pool, 4096, &opts, "pw", 5, &digests[..3], &full, &empty).is_err()
        );
        // Out-of-range shipped index.
        let mut bad = full.clone();
        bad[3].index = 9;
        assert!(reconstruct_delta(&pool, 4096, &opts, "pw", 5, &digests, &bad, &empty).is_err());
        // Non-increasing indices.
        let mut bad = full.clone();
        bad[1].index = 0;
        assert!(reconstruct_delta(&pool, 4096, &opts, "pw", 5, &digests, &bad, &empty).is_err());
        // A block neither shipped nor cached.
        assert!(
            reconstruct_delta(&pool, 4096, &opts, "pw", 5, &digests, &full[..3], &empty).is_err()
        );
        // A shipped body whose content hashes to the wrong digest.
        let mut wrong = digests.clone();
        wrong[0] = [0u8; 32];
        match reconstruct_delta(&pool, 4096, &opts, "pw", 5, &wrong, &full, &empty) {
            Err(TransferError::BlockCodec { block: 0, detail }) => {
                assert!(detail.contains("digest mismatch"), "{detail}")
            }
            other => panic!("digest mismatch: {other:?}"),
        }
    }

    #[test]
    fn stats_ratio() {
        let s = TransferStats {
            raw_len: 1000,
            wire_len: 250,
        };
        assert!((s.ratio() - 0.25).abs() < 1e-12);
        // Zero-row extract: empty pickle must not divide by zero — the
        // regression this guards is `raw_len == 0` panicking/NaN-ing.
        let empty = TransferStats {
            raw_len: 0,
            wire_len: 0,
        };
        assert_eq!(empty.ratio(), 1.0);
        assert!(empty.ratio().is_finite());
        // Even with nonzero wire bytes (container overhead on an empty
        // pickle), the ratio stays defined and finite.
        let framed = TransferStats {
            raw_len: 0,
            wire_len: 48,
        };
        assert_eq!(framed.ratio(), 1.0);
    }
}
