//! Transfer options and the extract-payload pipeline (paper §2.1).
//!
//! Order of operations on the server: **sample → pickle → compress →
//! encrypt**; the client reverses encryption and compression and unpickles.
//! Sampling happens *before* serialization (fewer bytes ever exist);
//! compression runs before encryption (ciphertext does not compress).

use codecs::{chacha20, derive_key, kdf, lz};
use pylite::value::Dict;
use pylite::{pickle, Array, Value};

/// Options selected in the devUDF settings dialog (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferOptions {
    /// Compress the payload with the LZ codec.
    pub compress: bool,
    /// Encrypt the payload with ChaCha20 keyed on the user's password.
    pub encrypt: bool,
    /// Transfer only a uniform random sample of this many rows.
    pub sample: Option<usize>,
}

impl TransferOptions {
    pub fn plain() -> Self {
        TransferOptions::default()
    }

    pub fn compressed() -> Self {
        TransferOptions {
            compress: true,
            ..Default::default()
        }
    }

    pub fn encrypted() -> Self {
        TransferOptions {
            encrypt: true,
            ..Default::default()
        }
    }

    pub fn sampled(rows: usize) -> Self {
        TransferOptions {
            sample: Some(rows),
            ..Default::default()
        }
    }
}

/// Measured outcome of one transfer (reported by benchmarks and the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferStats {
    /// Pickle size before compression/encryption (after sampling).
    pub raw_len: usize,
    /// Bytes that actually crossed the wire.
    pub wire_len: usize,
}

impl TransferStats {
    /// Compression ratio (wire/raw); 1.0 when no compression.
    pub fn ratio(&self) -> f64 {
        if self.raw_len == 0 {
            1.0
        } else {
            self.wire_len as f64 / self.raw_len as f64
        }
    }
}

/// Error from the transfer pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferError(pub String);

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transfer error: {}", self.0)
    }
}

impl std::error::Error for TransferError {}

/// Salt domain-separating transfer-encryption keys from other password uses.
const TRANSFER_SALT: &[u8] = b"devudf-transfer-v1";

/// Bytes of plaintext checksum carried inside the encrypted envelope.
const INTEGRITY_TAG_LEN: usize = 4;

/// Apply uniform random sampling to an extracted inputs dict: every array
/// value is sampled at the *same* row indices (rows stay aligned across
/// parameters); scalars pass through. `seed` makes the sample reproducible.
pub fn sample_inputs(inputs: &Value, k: usize, seed: u64) -> Result<Value, TransferError> {
    let Value::Dict(d) = inputs else {
        return Err(TransferError("inputs must be a dict".into()));
    };
    let d = d.borrow();
    // Find the common array length.
    let mut n: Option<usize> = None;
    for (_, v) in d.entries() {
        if let Value::Array(a) = v {
            match n {
                None => n = Some(a.len()),
                Some(existing) if existing != a.len() => {
                    return Err(TransferError(format!(
                        "input arrays have differing lengths ({existing} vs {})",
                        a.len()
                    )))
                }
                _ => {}
            }
        }
    }
    let Some(n) = n else {
        // No arrays at all: sampling is a no-op.
        return Ok(inputs.clone());
    };
    if k >= n {
        return Ok(inputs.clone());
    }
    // Partial Fisher–Yates over row indices, sorted to preserve order
    // (devharness::Rng::sample_indices does exactly this).
    let picked = devharness::Rng::new(seed).sample_indices(n, k);

    let mut out = Dict::new();
    for (key, v) in d.entries() {
        let sampled = match v {
            Value::Array(a) => {
                let vals: Vec<Value> = picked.iter().map(|&i| a.get(i)).collect();
                Value::array(
                    Array::from_values(&vals)
                        .map_err(|e| TransferError(format!("sampling failed: {e}")))?,
                )
            }
            other => other.clone(),
        };
        out.insert(key.clone(), sampled)
            .map_err(|e| TransferError(e.to_string()))?;
    }
    Ok(Value::dict(out))
}

/// Server side: pickle the (possibly sampled) inputs and apply the selected
/// codecs. Returns (wire payload, raw pickle length).
pub fn encode_payload(
    inputs: &Value,
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
    seed: u64,
) -> Result<(Vec<u8>, usize), TransferError> {
    let effective = match options.sample {
        Some(k) => sample_inputs(inputs, k, seed ^ transfer_id)?,
        None => inputs.clone(),
    };
    let mut payload =
        pickle::dumps(&effective).map_err(|e| TransferError(format!("pickle: {e}")))?;
    let raw_len = payload.len();
    if options.compress {
        payload = lz::compress(&payload);
    }
    if options.encrypt {
        // Integrity envelope: an FNV-1a checksum of the plaintext rides
        // *inside* the ciphertext. Without it, a wrong-password decrypt
        // of an uncompressed payload whose garbage plaintext happens to
        // unpickle would be silently accepted as data.
        let tag = codecs::fnv1a_32(&payload);
        payload.extend_from_slice(&tag.to_le_bytes());
        let key = derive_key(password, TRANSFER_SALT);
        let nonce = kdf::derive_nonce(transfer_id);
        let mut cipher = chacha20::ChaCha20::new(&key, &nonce, 1);
        cipher.apply(&mut payload);
    }
    Ok((payload, raw_len))
}

/// Client side: reverse the codecs and unpickle. The client derives the same
/// key from the password it already holds — the key never crosses the wire.
pub fn decode_payload(
    payload: &[u8],
    options: &TransferOptions,
    password: &str,
    transfer_id: u64,
) -> Result<Value, TransferError> {
    let mut data = payload.to_vec();
    if options.encrypt {
        let key = derive_key(password, TRANSFER_SALT);
        let nonce = kdf::derive_nonce(transfer_id);
        let mut cipher = chacha20::ChaCha20::new(&key, &nonce, 1);
        cipher.apply(&mut data);
        // Verify the plaintext checksum appended by `encode_payload`.
        if data.len() < INTEGRITY_TAG_LEN {
            return Err(TransferError(
                "encrypted payload too short for integrity tag".into(),
            ));
        }
        let tag_bytes = data.split_off(data.len() - INTEGRITY_TAG_LEN);
        let expected = u32::from_le_bytes(tag_bytes.try_into().expect("4-byte tag"));
        if codecs::fnv1a_32(&data) != expected {
            return Err(TransferError(
                "integrity check failed after decryption (wrong password?)".into(),
            ));
        }
    }
    if options.compress {
        data = lz::decompress(&data)
            .map_err(|e| TransferError(format!("decompress (wrong password?): {e}")))?;
    }
    pickle::loads(&data).map_err(|e| TransferError(format!("unpickle (wrong password?): {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dict(rows: usize) -> Value {
        let mut d = Dict::new();
        d.insert(
            Value::str("data"),
            Value::array(Array::Int((0..rows as i64).collect())),
        )
        .unwrap();
        d.insert(
            Value::str("labels"),
            Value::array(Array::Int((0..rows as i64).map(|i| i % 2).collect())),
        )
        .unwrap();
        d.insert(Value::str("n_estimators"), Value::Int(10))
            .unwrap();
        Value::dict(d)
    }

    fn get_arr(v: &Value, key: &str) -> Vec<i64> {
        let Value::Dict(d) = v else { panic!() };
        let got = d.borrow().get(&Value::str(key)).unwrap().unwrap();
        let Value::Array(a) = got else {
            panic!("{key} not an array")
        };
        match a.as_ref() {
            Array::Int(v) => v.clone(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plain_round_trip() {
        let inputs = sample_dict(100);
        let (payload, raw) =
            encode_payload(&inputs, &TransferOptions::plain(), "pw", 1, 7).unwrap();
        assert_eq!(payload.len(), raw);
        let back = decode_payload(&payload, &TransferOptions::plain(), "pw", 1).unwrap();
        assert!(back.py_eq(&inputs));
    }

    #[test]
    fn compression_shrinks_repetitive_inputs() {
        let mut d = Dict::new();
        d.insert(
            Value::str("col"),
            Value::array(Array::Int(vec![7; 100_000])),
        )
        .unwrap();
        let inputs = Value::dict(d);
        let opts = TransferOptions::compressed();
        let (payload, raw) = encode_payload(&inputs, &opts, "pw", 2, 7).unwrap();
        assert!(payload.len() < raw / 10, "{} vs {raw}", payload.len());
        let back = decode_payload(&payload, &opts, "pw", 2).unwrap();
        assert!(back.py_eq(&inputs));
    }

    #[test]
    fn encryption_round_trips_and_scrambles() {
        let inputs = sample_dict(50);
        let opts = TransferOptions::encrypted();
        let (payload, raw) = encode_payload(&inputs, &opts, "secret", 3, 7).unwrap();
        // Plaintext plus the 4-byte integrity tag, all encrypted.
        assert_eq!(payload.len(), raw + INTEGRITY_TAG_LEN);
        // Ciphertext must not contain the pickle magic.
        assert_ne!(&payload[..4], b"PKL1");
        let back = decode_payload(&payload, &opts, "secret", 3).unwrap();
        assert!(back.py_eq(&inputs));
    }

    #[test]
    fn wrong_password_fails_to_decode() {
        let inputs = sample_dict(50);
        let opts = TransferOptions {
            compress: true,
            encrypt: true,
            sample: None,
        };
        let (payload, _) = encode_payload(&inputs, &opts, "right", 4, 7).unwrap();
        assert!(decode_payload(&payload, &opts, "wrong", 4).is_err());
    }

    #[test]
    fn wrong_password_on_uncompressed_payload_is_a_clear_error() {
        // Without the integrity tag this failure mode was silent whenever
        // the garbage plaintext happened to unpickle; now every wrong key
        // is caught by the checksum before unpickling is even attempted.
        let inputs = sample_dict(50);
        let opts = TransferOptions::encrypted();
        let (payload, _) = encode_payload(&inputs, &opts, "right", 9, 7).unwrap();
        for wrong in ["wrong", "Right", "right ", ""] {
            match decode_payload(&payload, &opts, wrong, 9) {
                Err(TransferError(msg)) => {
                    assert!(msg.contains("wrong password"), "{msg}")
                }
                Ok(_) => panic!("wrong password '{wrong}' accepted"),
            }
        }
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let inputs = sample_dict(20);
        let opts = TransferOptions::encrypted();
        let (mut payload, _) = encode_payload(&inputs, &opts, "pw", 11, 7).unwrap();
        payload[5] ^= 0x40;
        assert!(decode_payload(&payload, &opts, "pw", 11).is_err());
    }

    #[test]
    fn truncated_encrypted_payload_is_rejected() {
        let inputs = sample_dict(20);
        let opts = TransferOptions::encrypted();
        let (payload, _) = encode_payload(&inputs, &opts, "pw", 12, 7).unwrap();
        assert!(decode_payload(&payload[..2], &opts, "pw", 12).is_err());
    }

    #[test]
    fn different_transfer_ids_produce_different_ciphertexts() {
        let inputs = sample_dict(20);
        let opts = TransferOptions::encrypted();
        let (p1, _) = encode_payload(&inputs, &opts, "pw", 1, 7).unwrap();
        let (p2, _) = encode_payload(&inputs, &opts, "pw", 2, 7).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn sampling_keeps_rows_aligned() {
        let inputs = sample_dict(1000);
        let sampled = sample_inputs(&inputs, 100, 42).unwrap();
        let data = get_arr(&sampled, "data");
        let labels = get_arr(&sampled, "labels");
        assert_eq!(data.len(), 100);
        assert_eq!(labels.len(), 100);
        // Alignment: labels[i] must equal data[i] % 2 (their original link).
        for (d, l) in data.iter().zip(&labels) {
            assert_eq!(*l, d % 2);
        }
        // Scalars survive.
        let Value::Dict(dd) = &sampled else { panic!() };
        assert_eq!(
            dd.borrow()
                .get(&Value::str("n_estimators"))
                .unwrap()
                .unwrap(),
            Value::Int(10)
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let inputs = sample_dict(500);
        let a = sample_inputs(&inputs, 50, 9).unwrap();
        let b = sample_inputs(&inputs, 50, 9).unwrap();
        let c = sample_inputs(&inputs, 50, 10).unwrap();
        assert_eq!(get_arr(&a, "data"), get_arr(&b, "data"));
        assert_ne!(get_arr(&a, "data"), get_arr(&c, "data"));
    }

    #[test]
    fn oversized_sample_is_identity() {
        let inputs = sample_dict(10);
        let sampled = sample_inputs(&inputs, 100, 1).unwrap();
        assert_eq!(get_arr(&sampled, "data").len(), 10);
    }

    #[test]
    fn sample_through_encode_reduces_payload() {
        let inputs = sample_dict(10_000);
        let full = encode_payload(&inputs, &TransferOptions::plain(), "pw", 1, 7).unwrap();
        let sampled = encode_payload(&inputs, &TransferOptions::sampled(100), "pw", 1, 7).unwrap();
        assert!(sampled.0.len() < full.0.len() / 10);
    }

    #[test]
    fn stats_ratio() {
        let s = TransferStats {
            raw_len: 1000,
            wire_len: 250,
        };
        assert!((s.ratio() - 0.25).abs() < 1e-12);
        assert_eq!(
            TransferStats {
                raw_len: 0,
                wire_len: 0
            }
            .ratio(),
            1.0
        );
    }
}
