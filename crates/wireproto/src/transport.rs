//! Transports: framing plus in-process and TCP request/reply channels.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::message::WireError;
use crate::server::ServerCore;

/// Maximum accepted frame size (guards against hostile length prefixes).
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Write one frame: `u32 LE length | body | u32 LE FNV-1a checksum`.
///
/// The checksum catches transport-level corruption before the codec sees
/// the bytes, turning silent garbage into a clean protocol error.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    // Validate before the u32 cast: a body over 4 GiB would wrap the cast
    // and silently bypass the guard, writing a corrupt length prefix.
    if body.len() > MAX_FRAME as usize {
        return Err(WireError::Protocol(format!(
            "frame too large: {}",
            body.len()
        )));
    }
    let len = body.len() as u32;
    let checksum = codecs::fnv1a_32(body);
    w.write_all(&len.to_le_bytes())
        .and_then(|_| w.write_all(body))
        .and_then(|_| w.write_all(&checksum.to_le_bytes()))
        .and_then(|_| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Read one frame written by [`write_frame`], verifying its checksum.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!("frame too large: {len}")));
    }
    read_frame_rest(r, len)
}

/// Read the body + checksum of a frame whose length prefix is already
/// consumed.
fn read_frame_rest(r: &mut impl Read, len: u32) -> Result<Vec<u8>, WireError> {
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let mut sum_buf = [0u8; 4];
    r.read_exact(&mut sum_buf)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let expected = u32::from_le_bytes(sum_buf);
    let actual = codecs::fnv1a_32(&body);
    if expected != actual {
        return Err(WireError::Protocol(format!(
            "frame checksum mismatch (expected {expected:08x}, got {actual:08x})"
        )));
    }
    Ok(body)
}

/// Server-side frame read with a *mid-frame* deadline.
///
/// Waiting for the next frame blocks indefinitely — an idle-but-healthy
/// client may sit silent between requests for as long as it likes. But
/// once a length prefix has arrived, the rest of the frame must follow
/// within `deadline`; a peer that stalls mid-frame is cut off with an
/// [`WireError::Io`] instead of pinning its session thread forever.
pub fn read_frame_with_mid_deadline(
    stream: &mut TcpStream,
    deadline: Option<Duration>,
) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    stream
        .read_exact(&mut len_buf)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!("frame too large: {len}")));
    }
    if deadline.is_some() {
        stream
            .set_read_timeout(deadline)
            .map_err(|e| WireError::Io(e.to_string()))?;
    }
    let result = read_frame_rest(stream, len);
    if deadline.is_some() {
        // Disarm so the next between-frames wait blocks again.
        stream.set_read_timeout(None).ok();
        if result.is_err() {
            // The prefix arrived but the rest did not before the armed
            // deadline (or the peer died mid-frame): the session is cut.
            obs::counter!("wire.server.deadline_cuts").inc();
        }
    }
    result
}

/// Abstraction over a request/reply connection to the server.
pub trait ClientTransport: Send {
    /// Send one encoded message and await the encoded reply.
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError>;

    /// Tear down and re-establish the underlying connection, e.g. after an
    /// IO error left the stream in an unknown framing state. Transports
    /// that cannot reconnect return an [`WireError::Io`] error; the retry
    /// layer treats that as one more failed attempt.
    fn reconnect(&mut self) -> Result<(), WireError> {
        Err(WireError::Io("this transport cannot reconnect".to_string()))
    }
}

impl<T: ClientTransport + ?Sized> ClientTransport for Box<T> {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        (**self).round_trip(frame)
    }

    fn reconnect(&mut self) -> Result<(), WireError> {
        (**self).reconnect()
    }
}

/// In-process transport: frames go straight into the server scheduler
/// ([`ServerCore::handle_frame`]) on the calling thread. Used by tests and
/// benchmarks (zero syscall noise).
pub struct InProcTransport {
    pub(crate) core: Arc<ServerCore>,
    pub(crate) session: u64,
}

impl ClientTransport for InProcTransport {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        if self.core.is_stopping() {
            return Err(WireError::Io("server is gone".to_string()));
        }
        Ok(self.core.handle_frame(self.session, frame))
    }

    fn reconnect(&mut self) -> Result<(), WireError> {
        // The scheduler handle either still reaches the server (nothing to
        // do) or the server is stopping (the next send will fail cleanly).
        Ok(())
    }
}

impl Drop for InProcTransport {
    fn drop(&mut self) {
        // Deregister from `sys.sessions` when the client goes away, like a
        // TCP session teardown does.
        self.core.remove_session(self.session);
    }
}

/// TCP transport: frames over a socket, with optional read/write deadlines
/// so a stalled server can never hang the client indefinitely.
pub struct TcpTransport {
    pub(crate) stream: TcpStream,
    pub(crate) addr: SocketAddr,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) write_timeout: Option<Duration>,
}

impl TcpTransport {
    /// Connect to `addr`, applying the given socket deadlines. The
    /// timeouts apply per read/write syscall: a dead peer surfaces as an
    /// [`WireError::Io`] after at most one timeout instead of a hang.
    pub fn connect(
        addr: SocketAddr,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
    ) -> Result<TcpTransport, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| WireError::Io(e.to_string()))?;
        // A frame is several small writes (length, body, checksum);
        // Nagle would pair them with the peer's delayed ACK and put a
        // ~40 ms floor under every round trip on loopback.
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(read_timeout)
            .and_then(|_| stream.set_write_timeout(write_timeout))
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(TcpTransport {
            stream,
            addr,
            read_timeout,
            write_timeout,
        })
    }
}

impl ClientTransport for TcpTransport {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream)
    }

    fn reconnect(&mut self) -> Result<(), WireError> {
        *self = TcpTransport::connect(self.addr, self.read_timeout, self.write_timeout)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frame");
    }

    #[test]
    fn empty_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full body").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn corrupted_body_rejected_by_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"important payload").unwrap();
        // Flip one bit in the body.
        buf[6] ^= 0x01;
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_body_rejected_before_the_cast() {
        // Exactly MAX_FRAME passes the length check (written to a sink so
        // the test does not hold two 256 MiB buffers).
        let body = vec![0u8; MAX_FRAME as usize];
        assert!(write_frame(&mut std::io::sink(), &body).is_ok());
        // One byte over is rejected with the true (untruncated) length in
        // the message — this is the boundary where `len as u32` used to be
        // computed before the guard and could wrap for >4 GiB bodies.
        let mut body = body;
        body.push(0);
        match write_frame(&mut std::io::sink(), &body) {
            Err(WireError::Protocol(msg)) => {
                assert!(msg.contains(&(MAX_FRAME as usize + 1).to_string()), "{msg}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(_))
        ));
    }
}
