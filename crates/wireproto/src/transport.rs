//! Transports: framing plus in-process and TCP request/reply channels.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Sender};

use crate::message::WireError;
use crate::server::ServerRequest;

/// Maximum accepted frame size (guards against hostile length prefixes).
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Write one frame: `u32 LE length | body | u32 LE FNV-1a checksum`.
///
/// The checksum catches transport-level corruption before the codec sees
/// the bytes, turning silent garbage into a clean protocol error.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    let len = body.len() as u32;
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!("frame too large: {len}")));
    }
    let checksum = codecs::fnv1a_32(body);
    w.write_all(&len.to_le_bytes())
        .and_then(|_| w.write_all(body))
        .and_then(|_| w.write_all(&checksum.to_le_bytes()))
        .and_then(|_| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Read one frame written by [`write_frame`], verifying its checksum.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!("frame too large: {len}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let mut sum_buf = [0u8; 4];
    r.read_exact(&mut sum_buf)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let expected = u32::from_le_bytes(sum_buf);
    let actual = codecs::fnv1a_32(&body);
    if expected != actual {
        return Err(WireError::Protocol(format!(
            "frame checksum mismatch (expected {expected:08x}, got {actual:08x})"
        )));
    }
    Ok(body)
}

/// Abstraction over a request/reply connection to the server.
pub trait ClientTransport: Send {
    /// Send one encoded message and await the encoded reply.
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError>;
}

/// In-process transport: frames travel over `std::sync::mpsc` channels
/// straight to the engine thread. Used by tests and benchmarks (zero
/// syscall noise).
pub struct InProcTransport {
    pub(crate) sender: Sender<ServerRequest>,
    pub(crate) session: u64,
}

impl ClientTransport for InProcTransport {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        let (reply_tx, reply_rx) = channel();
        self.sender
            .send(ServerRequest::Frame {
                session: self.session,
                body: frame.to_vec(),
                reply: reply_tx,
            })
            .map_err(|_| WireError::Io("server is gone".to_string()))?;
        reply_rx
            .recv()
            .map_err(|_| WireError::Io("server dropped the reply".to_string()))
    }
}

/// TCP transport: frames over a socket.
pub struct TcpTransport {
    pub(crate) stream: TcpStream,
}

impl ClientTransport for TcpTransport {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        write_frame(&mut self.stream, frame)?;
        read_frame(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frame");
    }

    #[test]
    fn empty_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full body").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn corrupted_body_rejected_by_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"important payload").unwrap();
        // Flip one bit in the body.
        buf[6] ^= 0x01;
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Protocol(_))
        ));
    }
}
