//! The transport trait and the in-process **embedded** implementation —
//! "MonetDBLite mode" (DESIGN §17).
//!
//! Everything the devUDF plugin needs from its database is six calls:
//! query, traced query, list/get function, input extraction, and the UDF
//! stdout of the last statement. [`EngineTransport`] names exactly that
//! surface; [`Client`] implements it over the TCP/in-proc wire, and
//! [`Embedded`] implements it by calling [`monetlite::Engine`] directly
//! in the same process — no frames, no pickling, no socket.
//!
//! The embedded transport keeps the wire server's read/write discipline:
//! each call is classified with the same [`monetlite::classify_sql`] /
//! [`monetlite::classify_extract`] the PR-9 `ServerCore` router uses, and
//! reads run against an epoch-stamped snapshot engine (hydrated lazily,
//! cached until the live catalog's version moves) while writes go to the
//! live engine. That makes the embedded path behaviourally identical to
//! the server's scheduler — a query routed differently would be a bug a
//! differential test can catch.
//!
//! What embedding deliberately skips: the three transfer options.
//! Compression and encryption protect bytes **on the wire**, and
//! sampling exists "to alleviate the data transfer overhead" (paper
//! §2.1) — with no wire there is nothing to protect or alleviate, so
//! extraction returns the engine's values as-is and reports a
//! [`TransferStats`] of zero bytes (ratio 1.0).
//!
//! # Embedded extract
//!
//! ```
//! use wireproto::embedded::{Embedded, EngineTransport};
//! use wireproto::TransferOptions;
//!
//! let mut db = Embedded::in_memory();
//! db.query("CREATE TABLE t (i INTEGER)").unwrap();
//! db.query("INSERT INTO t VALUES (1), (2), (3)").unwrap();
//! db.query(
//!     "CREATE FUNCTION double(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
//! )
//! .unwrap();
//! let (inputs, stats) = db
//!     .extract_inputs("SELECT double(i) FROM t", "double", TransferOptions::plain())
//!     .unwrap();
//! // The UDF's input column came back as a live pylite value …
//! assert!(matches!(inputs, pylite::Value::Dict(_)));
//! // … and no bytes crossed any wire.
//! assert_eq!(stats.wire_len, 0);
//! ```

use monetlite::{classify_extract, classify_sql, CommandClass, Engine};
use pylite::Value;

use crate::client::{Client, FunctionInfo};
use crate::message::{WireError, WireResult};
use crate::transfer::{TransferOptions, TransferStats};

/// The calls the devUDF core makes against its database, abstracted over
/// *where* the engine runs. `DevUdf` holds a `Rc<RefCell<dyn
/// EngineTransport>>`; the two implementations are [`Client`] (TCP or
/// in-proc wire) and [`Embedded`] (same-process engine).
pub trait EngineTransport {
    /// Execute one SQL statement.
    fn query(&mut self, sql: &str) -> Result<WireResult, WireError>;

    /// Execute one SQL statement inside a trace; returns the closed spans
    /// alongside the result (empty when telemetry is off).
    fn query_traced(
        &mut self,
        sql: &str,
    ) -> Result<(WireResult, Vec<obs::trace::SpanRecord>), WireError>;

    /// Names of every stored function.
    fn list_functions(&mut self) -> Result<Vec<String>, WireError>;

    /// Full metadata of one stored function.
    fn get_function(&mut self, name: &str) -> Result<FunctionInfo, WireError>;

    /// Run `query` with the call to `udf` intercepted and its inputs
    /// captured (the paper's predefined extract function, §2.2).
    fn extract_inputs(
        &mut self,
        query: &str,
        udf: &str,
        options: TransferOptions,
    ) -> Result<(Value, TransferStats), WireError>;

    /// `print` output of server-side UDFs during the last query.
    fn last_udf_stdout(&self) -> &str;

    /// Short name for diagnostics: `"wire"` or `"embedded"`.
    fn transport_name(&self) -> &'static str;
}

impl EngineTransport for Client {
    fn query(&mut self, sql: &str) -> Result<WireResult, WireError> {
        Client::query(self, sql)
    }

    fn query_traced(
        &mut self,
        sql: &str,
    ) -> Result<(WireResult, Vec<obs::trace::SpanRecord>), WireError> {
        Client::query_traced(self, sql)
    }

    fn list_functions(&mut self) -> Result<Vec<String>, WireError> {
        Client::list_functions(self)
    }

    fn get_function(&mut self, name: &str) -> Result<FunctionInfo, WireError> {
        Client::get_function(self, name)
    }

    fn extract_inputs(
        &mut self,
        query: &str,
        udf: &str,
        options: TransferOptions,
    ) -> Result<(Value, TransferStats), WireError> {
        Client::extract_inputs(self, query, udf, options)
    }

    fn last_udf_stdout(&self) -> &str {
        Client::last_udf_stdout(self)
    }

    fn transport_name(&self) -> &'static str {
        "wire"
    }
}

/// The in-process transport: a [`monetlite::Engine`] called directly,
/// with the wire server's read/write classification and snapshot-read
/// discipline (see the module docs).
pub struct Embedded {
    engine: Engine,
    /// Cached hydrated reader, keyed by the snapshot epoch it was built
    /// from — the embedded analogue of the server's per-thread reader
    /// cache.
    reader: Option<(u64, Engine)>,
    last_udf_stdout: String,
}

impl Embedded {
    /// Embed a fresh in-memory engine (tests, throwaway sessions).
    pub fn in_memory() -> Embedded {
        Self::from_engine(Engine::new())
    }

    /// Embed an engine the caller already configured or opened.
    pub fn from_engine(engine: Engine) -> Embedded {
        Embedded {
            engine,
            reader: None,
            last_udf_stdout: String::new(),
        }
    }

    /// Open a **persistent** engine on `dir` (WAL + snapshots, see
    /// [`monetlite::storage`]) and embed it.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        options: monetlite::StorageOptions,
    ) -> Result<Embedded, WireError> {
        Ok(Self::from_engine(
            Engine::open_with(dir, options).map_err(|e| WireError::from_db(&e))?,
        ))
    }

    /// The embedded engine (for host-side configuration: interp mode,
    /// seeds, checkpoints).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The engine a read may run on: a private engine hydrated from the
    /// current snapshot, rebuilt only when the live catalog moved.
    fn reader_engine(&mut self) -> Engine {
        let epoch = self.engine.catalog_version();
        match &self.reader {
            Some((cached, engine)) if *cached == epoch => engine.clone(),
            _ => {
                let engine = self.engine.snapshot().hydrate();
                self.reader = Some((epoch, engine.clone()));
                engine
            }
        }
    }
}

impl EngineTransport for Embedded {
    fn query(&mut self, sql: &str) -> Result<WireResult, WireError> {
        obs::counter!("wire.embedded.queries").inc();
        let engine = match self.engine.with_catalog(|c| classify_sql(sql, c)) {
            CommandClass::Write => self.engine.clone(),
            CommandClass::Read => self.reader_engine(),
        };
        match engine.execute(sql) {
            Ok(result) => {
                // Mirrors the wire: stdout rides only a successful reply.
                self.last_udf_stdout = engine.take_udf_stdout();
                Ok(WireResult::from_query_result(&result))
            }
            Err(e) => Err(WireError::from_db(&e)),
        }
    }

    fn query_traced(
        &mut self,
        sql: &str,
    ) -> Result<(WireResult, Vec<obs::trace::SpanRecord>), WireError> {
        let trace = obs::trace::new_trace_id();
        if trace == 0 {
            return Ok((self.query(sql)?, Vec::new()));
        }
        obs::trace::start_capture(trace);
        let result = {
            let _ctx = obs::trace::enter_context(obs::trace::SpanContext { trace, parent: 0 });
            let mut span = obs::trace::span_active("embedded.query");
            span.field("sql", sql);
            self.query(sql)
        };
        // One process, one span namespace: no wire hop, no id stitching.
        let records = obs::trace::take_capture(trace);
        Ok((result?, records))
    }

    fn list_functions(&mut self) -> Result<Vec<String>, WireError> {
        Ok(self.engine.function_names())
    }

    fn get_function(&mut self, name: &str) -> Result<FunctionInfo, WireError> {
        match self.engine.get_function(name) {
            Ok(Some(def)) => Ok(FunctionInfo {
                name: def.name.clone(),
                params: def
                    .params
                    .iter()
                    .map(|(n, t)| (n.clone(), t.name().to_string()))
                    .collect(),
                return_type: match &def.returns {
                    monetlite::FunctionReturn::Scalar(t) => t.name().to_string(),
                    monetlite::FunctionReturn::Table(cols) => {
                        let inner: Vec<String> =
                            cols.iter().map(|(n, t)| format!("{n} {t}")).collect();
                        format!("TABLE({})", inner.join(", "))
                    }
                },
                language: def.language,
                body: def.body,
            }),
            Ok(None) => Err(WireError::Server {
                code: "CatalogError".to_string(),
                message: format!("no such function '{name}'"),
                traceback: None,
            }),
            Err(e) => Err(WireError::from_db(&e)),
        }
    }

    fn extract_inputs(
        &mut self,
        query: &str,
        udf: &str,
        _options: TransferOptions,
    ) -> Result<(Value, TransferStats), WireError> {
        obs::counter!("wire.embedded.extracts").inc();
        let engine = match self
            .engine
            .with_catalog(|c| classify_extract(query, udf, c))
        {
            CommandClass::Write => self.engine.clone(),
            CommandClass::Read => self.reader_engine(),
        };
        let value = engine
            .extract_inputs(query, udf)
            .map_err(|e| WireError::from_db(&e))?;
        // Zero-serialization: the value never left the process, so both
        // byte counters are honestly zero (ratio 1.0). Transfer options
        // are wire concerns and do not apply (module docs).
        Ok((
            value,
            TransferStats {
                raw_len: 0,
                wire_len: 0,
            },
        ))
    }

    fn last_udf_stdout(&self) -> &str {
        &self.last_udf_stdout
    }

    fn transport_name(&self) -> &'static str {
        "embedded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireValue;

    fn seeded() -> Embedded {
        let mut db = Embedded::in_memory();
        db.query("CREATE TABLE t (i INTEGER)").unwrap();
        db.query("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        db.query(
            "CREATE FUNCTION double(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
        )
        .unwrap();
        db
    }

    #[test]
    fn query_round_trips_and_reports_affected() {
        let mut db = seeded();
        let t = db
            .query("SELECT sum(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.rows[0][0], WireValue::Int(6));
        match db.query("INSERT INTO t VALUES (4)").unwrap() {
            WireResult::Affected { rows, .. } => assert_eq!(rows, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reads_run_on_a_cached_snapshot_reader() {
        let mut db = seeded();
        db.query("SELECT i FROM t").unwrap();
        let (epoch1, reader1) = {
            let (e, r) = db.reader.as_ref().expect("reader cached");
            (*e, r.clone())
        };
        // A second read at the same epoch reuses the same hydrated engine.
        db.query("SELECT i FROM t").unwrap();
        let (epoch2, reader2) = {
            let (e, r) = db.reader.as_ref().unwrap();
            (*e, r.clone())
        };
        assert_eq!(epoch1, epoch2);
        assert_eq!(reader1.catalog_version(), reader2.catalog_version());
        // A write moves the live epoch; the next read re-hydrates.
        db.query("INSERT INTO t VALUES (9)").unwrap();
        let t = db.query("SELECT i FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.rows.len(), 4);
        assert!(db.reader.as_ref().unwrap().0 > epoch2);
    }

    #[test]
    fn function_metadata_matches_the_wire_encoding() {
        let mut db = seeded();
        assert_eq!(db.list_functions().unwrap(), vec!["double".to_string()]);
        let info = db.get_function("double").unwrap();
        assert_eq!(info.params, vec![("i".to_string(), "INTEGER".to_string())]);
        assert_eq!(info.return_type, "INTEGER");
        assert_eq!(info.language, "PYTHON");
        assert!(info.body.contains("return i * 2"));
        match db.get_function("nope") {
            Err(WireError::Server { code, .. }) => assert_eq!(code, "CatalogError"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_the_engine_code_and_traceback() {
        let mut db = seeded();
        db.query(
            "CREATE FUNCTION boom(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i / 0 }",
        )
        .unwrap();
        match db.query("SELECT boom(i) FROM t") {
            Err(WireError::Server {
                code, traceback, ..
            }) => {
                assert_eq!(code, "UdfError");
                assert!(traceback.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn udf_stdout_is_captured_per_statement() {
        let mut db = seeded();
        db.query(
            "CREATE FUNCTION noisy(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { print('hi'); return i }",
        )
        .unwrap();
        db.query("SELECT noisy(i) FROM t").unwrap();
        assert!(db.last_udf_stdout().contains("hi"));
        db.query("SELECT i FROM t").unwrap();
        assert_eq!(db.last_udf_stdout(), "");
    }

    #[test]
    fn extract_returns_live_values_with_zero_wire_bytes() {
        let mut db = seeded();
        let (inputs, stats) = db
            .extract_inputs(
                "SELECT double(i) FROM t",
                "double",
                TransferOptions::plain(),
            )
            .unwrap();
        let Value::Dict(d) = &inputs else {
            panic!("{inputs:?}")
        };
        assert_eq!(d.borrow().entries().len(), 1);
        assert_eq!(stats.raw_len, 0);
        assert_eq!(stats.wire_len, 0);
        assert_eq!(stats.ratio(), 1.0);
    }

    #[test]
    fn transport_names_distinguish_the_implementations() {
        assert_eq!(Embedded::in_memory().transport_name(), "embedded");
    }
}
