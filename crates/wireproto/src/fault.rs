//! Deterministic fault injection for the wire protocol.
//!
//! [`FaultInjectingTransport`] wraps any [`ClientTransport`] and, driven by
//! a seeded [`devharness::Rng`], injects the failure modes a real network
//! exhibits: dropped frames (reads time out), truncated frames (peer dies
//! mid-write), corrupted frames (checksum mismatch at the reader),
//! injected latency, and full disconnects (every call fails until the
//! retry layer reconnects). Because the schedule is a pure function of
//! `FaultPolicy::seed`, a failing run replays bit-for-bit — the property
//! `tests/failures.rs` relies on to assert that a retrying client
//! survives a 10 % fault rate while a bare client does not.
//!
//! Faults are simulated at the request/reply boundary as the *peer-visible
//! outcome* of each wire failure, not by mangling live socket bytes:
//!
//! * **drop** / **truncate** — the request never completes, so the caller
//!   sees an [`WireError::Io`] and the server never executes it.
//! * **corrupt** — the *reply* frame is damaged in flight: the server has
//!   executed the request, but the caller gets the checksum-mismatch
//!   [`WireError::Protocol`] that [`read_frame`](crate::transport::read_frame)
//!   would produce. Retrying is therefore only safe for idempotent calls,
//!   exactly like the real thing.
//! * **disconnect** — this call and every later one fail with
//!   [`WireError::Io`] until [`ClientTransport::reconnect`] runs.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use devharness::Rng;

use crate::message::WireError;
use crate::transport::ClientTransport;

/// Probabilities (per round trip) of each injected fault, plus the seed
/// that makes the schedule reproducible. Rates are clamped to `[0, 1]`
/// and checked in declaration order; at most one fault fires per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// The connection dies: this and all later calls fail until reconnect.
    pub disconnect_rate: f64,
    /// The request frame vanishes; the read deadline turns it into an IO
    /// error.
    pub drop_rate: f64,
    /// The request frame is cut short; the peer sees EOF mid-frame.
    pub truncate_rate: f64,
    /// The reply frame is bit-flipped; the client's checksum rejects it
    /// (the server **has** executed the request).
    pub corrupt_rate: f64,
    /// Extra latency is injected before the round trip.
    pub delay_rate: f64,
    /// How much latency `delay_rate` injects.
    pub delay: Duration,
}

impl FaultPolicy {
    /// No faults at all — wrapping overhead only (the benchmark baseline).
    pub fn none(seed: u64) -> FaultPolicy {
        FaultPolicy {
            seed,
            disconnect_rate: 0.0,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// A lossy link: frames drop or arrive corrupted, each at `rate / 2`,
    /// for a total fault probability of `rate` per round trip.
    pub fn lossy(seed: u64, rate: f64) -> FaultPolicy {
        FaultPolicy {
            drop_rate: rate / 2.0,
            corrupt_rate: rate / 2.0,
            ..FaultPolicy::none(seed)
        }
    }

    /// Every call fails: frames are always dropped.
    pub fn black_hole(seed: u64) -> FaultPolicy {
        FaultPolicy {
            drop_rate: 1.0,
            ..FaultPolicy::none(seed)
        }
    }
}

/// Counts of what the injector actually did (useful to assert a test
/// really exercised the failure path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    pub clean: u64,
    pub dropped: u64,
    pub truncated: u64,
    pub corrupted: u64,
    pub disconnected: u64,
    pub delayed: u64,
    pub reconnects: u64,
}

impl FaultStats {
    /// Total injected faults (excluding pure delays).
    pub fn injected(&self) -> u64 {
        self.dropped + self.truncated + self.corrupted + self.disconnected
    }
}

/// A cloneable handle onto a [`FaultInjectingTransport`]'s live counters.
///
/// The transport disappears behind a `Box<dyn ClientTransport>` once a
/// [`Client`](crate::Client) wraps it, so the client keeps one of these to
/// let tests read the exact injection tally (`Client::fault_stats`).
#[derive(Debug, Clone, Default)]
pub struct FaultStatsHandle(Arc<Mutex<FaultStats>>);

impl FaultStatsHandle {
    /// A point-in-time copy of the counters.
    pub fn get(&self) -> FaultStats {
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn update(&self, f: impl FnOnce(&mut FaultStats)) {
        f(&mut self.0.lock().unwrap_or_else(|e| e.into_inner()));
    }
}

/// A [`ClientTransport`] decorator that injects faults per [`FaultPolicy`].
pub struct FaultInjectingTransport<T> {
    inner: T,
    policy: FaultPolicy,
    rng: Rng,
    broken: bool,
    stats: FaultStatsHandle,
}

impl<T: ClientTransport> FaultInjectingTransport<T> {
    /// Wrap `inner`; the fault schedule is derived from `policy.seed`.
    pub fn wrap(inner: T, policy: FaultPolicy) -> FaultInjectingTransport<T> {
        FaultInjectingTransport {
            inner,
            policy,
            rng: Rng::new(policy.seed),
            broken: false,
            stats: FaultStatsHandle::default(),
        }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats.get()
    }

    /// A handle onto the live counters that outlives type erasure.
    pub fn stats_handle(&self) -> FaultStatsHandle {
        self.stats.clone()
    }
}

impl<T: ClientTransport> ClientTransport for FaultInjectingTransport<T> {
    fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        if self.broken {
            return Err(WireError::Io(
                "injected fault: connection is down (reconnect required)".to_string(),
            ));
        }
        if self.rng.ratio(self.policy.delay_rate) && !self.policy.delay.is_zero() {
            self.stats.update(|s| s.delayed += 1);
            obs::counter!("wire.fault.injected.delayed").inc();
            std::thread::sleep(self.policy.delay);
        }
        if self.rng.ratio(self.policy.disconnect_rate) {
            self.stats.update(|s| s.disconnected += 1);
            obs::counter!("wire.fault.injected.disconnected").inc();
            self.broken = true;
            return Err(WireError::Io(
                "injected fault: peer disconnected".to_string(),
            ));
        }
        if self.rng.ratio(self.policy.drop_rate) {
            self.stats.update(|s| s.dropped += 1);
            obs::counter!("wire.fault.injected.dropped").inc();
            return Err(WireError::Io(
                "injected fault: frame dropped (read deadline exceeded)".to_string(),
            ));
        }
        if self.rng.ratio(self.policy.truncate_rate) {
            self.stats.update(|s| s.truncated += 1);
            obs::counter!("wire.fault.injected.truncated").inc();
            return Err(WireError::Io(
                "injected fault: connection closed mid-frame (truncated write)".to_string(),
            ));
        }
        let reply = self.inner.round_trip(frame)?;
        if self.rng.ratio(self.policy.corrupt_rate) {
            self.stats.update(|s| s.corrupted += 1);
            obs::counter!("wire.fault.injected.corrupted").inc();
            return Err(WireError::Protocol(
                "injected fault: frame checksum mismatch (reply corrupted in flight)".to_string(),
            ));
        }
        self.stats.update(|s| s.clean += 1);
        Ok(reply)
    }

    fn reconnect(&mut self) -> Result<(), WireError> {
        self.stats.update(|s| s.reconnects += 1);
        self.broken = false;
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo transport: replies with the request bytes.
    struct Echo;

    impl ClientTransport for Echo {
        fn round_trip(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
            Ok(frame.to_vec())
        }

        fn reconnect(&mut self) -> Result<(), WireError> {
            Ok(())
        }
    }

    #[test]
    fn clean_policy_passes_everything_through() {
        let mut t = FaultInjectingTransport::wrap(Echo, FaultPolicy::none(1));
        for _ in 0..100 {
            assert_eq!(t.round_trip(b"hi").unwrap(), b"hi");
        }
        assert_eq!(t.stats().clean, 100);
        assert_eq!(t.stats().injected(), 0);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut t = FaultInjectingTransport::wrap(Echo, FaultPolicy::lossy(seed, 0.3));
            (0..200).map(|_| t.round_trip(b"x").is_ok()).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn lossy_rate_is_roughly_honoured() {
        let mut t = FaultInjectingTransport::wrap(Echo, FaultPolicy::lossy(7, 0.10));
        for _ in 0..2000 {
            let _ = t.round_trip(b"x");
        }
        let s = t.stats();
        assert!(
            (100..300).contains(&s.injected()),
            "expected ~200 faults, got {s:?}"
        );
        assert!(s.dropped > 0 && s.corrupted > 0, "{s:?}");
    }

    #[test]
    fn disconnect_sticks_until_reconnect() {
        let policy = FaultPolicy {
            disconnect_rate: 1.0,
            ..FaultPolicy::none(5)
        };
        let mut t = FaultInjectingTransport::wrap(Echo, policy);
        assert!(matches!(t.round_trip(b"x"), Err(WireError::Io(_))));
        // Still down — and this failure does not advance the schedule.
        assert!(matches!(t.round_trip(b"x"), Err(WireError::Io(_))));
        assert_eq!(t.stats().disconnected, 1);
        t.reconnect().unwrap();
        assert_eq!(t.stats().reconnects, 1);
        // Next call draws a fresh disconnect (rate 1.0), proving the
        // schedule resumed.
        assert!(matches!(t.round_trip(b"x"), Err(WireError::Io(_))));
        assert_eq!(t.stats().disconnected, 2);
    }

    #[test]
    fn corrupt_reply_is_a_checksum_protocol_error() {
        let policy = FaultPolicy {
            corrupt_rate: 1.0,
            ..FaultPolicy::none(6)
        };
        let mut t = FaultInjectingTransport::wrap(Echo, policy);
        match t.round_trip(b"x") {
            Err(e @ WireError::Protocol(_)) => assert!(e.is_transient(), "{e}"),
            other => panic!("{other:?}"),
        }
    }
}
