//! Froid-style UDF inlining: plan decisions, the bail matrix, runtime
//! fallback, and regression pins for every divergence the three-way
//! differential harness (tests/proptests.rs in the root package) found.

use monetlite::{Engine, ExecutionModel};

fn db(model: ExecutionModel, inline: bool) -> Engine {
    let e = Engine::new();
    e.set_model(model);
    e.set_inline(inline);
    e
}

/// Run a query, flattening the first column to rendered strings (or the
/// error message). The shape every parity assertion compares.
fn run(e: &Engine, query: &str) -> Result<Vec<String>, String> {
    match e.execute(query).and_then(|r| r.into_table()) {
        Ok(t) => Ok(t.rows().iter().map(|r| r[0].render()).collect()),
        Err(err) => Err(err.to_string()),
    }
}

/// The EXPLAIN decision line for one stored UDF.
fn explain_udf(e: &Engine, query: &str, name: &str) -> String {
    let t = e
        .execute(&format!("EXPLAIN {query}"))
        .unwrap()
        .into_table()
        .unwrap();
    let tag = format!("udf {name}");
    t.rows()
        .iter()
        .find(|r| r[0].render() == tag)
        .map(|r| r[1].render())
        .unwrap_or_else(|| panic!("no '{tag}' row in EXPLAIN output: {t:?}"))
}

/// Execute the same setup + query with inlining on and off under `model`;
/// assert bit-identical outcomes (the interpreter is the spec) and return
/// the shared result.
fn assert_parity(
    model: ExecutionModel,
    setup: &[&str],
    query: &str,
) -> Result<Vec<String>, String> {
    let on = db(model, true);
    let off = db(model, false);
    for stmt in setup {
        on.execute(stmt).unwrap();
        off.execute(stmt).unwrap();
    }
    let got_on = run(&on, query);
    let got_off = run(&off, query);
    assert_eq!(
        got_on, got_off,
        "inlined result diverged from interpreter under {model:?}"
    );
    got_on
}

const BOTH_MODELS: [ExecutionModel; 2] = [
    ExecutionModel::OperatorAtATime,
    ExecutionModel::TupleAtATime,
];

fn numbers_table() -> Vec<String> {
    vec![
        "CREATE TABLE t (i INTEGER, d DOUBLE)".to_string(),
        "INSERT INTO t VALUES (1, 0.5), (2, 1.5), (3, 2.5)".to_string(),
    ]
}

fn udf(body: &str) -> String {
    format!("CREATE FUNCTION f(i INTEGER, d DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON {{\n{body}\n}}")
}

// ---------------------------------------------------------------------------
// Happy path: straight-line bodies inline and match the interpreter.
// ---------------------------------------------------------------------------

#[test]
fn straight_line_bodies_inline_and_match() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let bodies = [
        "return i * 2 + d",
        "v = i + 1\nw = v * d\nreturn w - v",
        "if i > 2:\n    return d\nelif i > 1:\n    return d + 1\nelse:\n    return d + 2",
        "v = d\nv += i\nreturn v / 2",
        "return abs(i - 2) + d",
    ];
    for body in bodies {
        let mut setup = numbers_table();
        setup.push(udf(body));
        let setup: Vec<&str> = setup.iter().map(|s| s.as_str()).collect();
        for model in BOTH_MODELS {
            let got = assert_parity(model, &setup, "SELECT f(i, d) FROM t");
            let got = got.unwrap_or_else(|e| panic!("body {body:?} failed: {e}"));
            assert_eq!(got.len(), 3, "one value per row for {body:?}");
        }
    }
}

#[test]
fn inlined_counter_increments_and_explain_annotates() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let inlined_c = obs::counter!("monetlite.udf.inlined");
    let bailed_c = obs::counter!("monetlite.udf.bailed");

    let e = db(ExecutionModel::OperatorAtATime, true);
    for stmt in numbers_table() {
        e.execute(&stmt).unwrap();
    }
    e.execute(&udf("return i * 2 + d")).unwrap();

    let plan = explain_udf(&e, "SELECT f(i, d) FROM t", "f");
    assert!(
        plan.starts_with("inlined as "),
        "EXPLAIN should show the inlined expression, got: {plan}"
    );

    let (i0, b0) = (inlined_c.get(), bailed_c.get());
    run(&e, "SELECT f(i, d) FROM t").unwrap();
    assert_eq!(inlined_c.get() - i0, 1, "one inlined execution");
    assert_eq!(bailed_c.get() - b0, 0, "no bail on the happy path");
}

// ---------------------------------------------------------------------------
// Bail matrix: one unsupported construct per row. Each must (a) plan as
// interpreted with the right reason, (b) still return the interpreter's
// answer, (c) bump the bailed counter, not the inlined one.
// ---------------------------------------------------------------------------

#[test]
fn bail_matrix_unsupported_constructs_fall_back() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let inlined_c = obs::counter!("monetlite.udf.inlined");
    let bailed_c = obs::counter!("monetlite.udf.bailed");

    // (body, expected bail label, expected first-row value in OaaT).
    // Scalar returns are not coerced to the declared type, so the
    // interpreter's ints render as ints.
    let matrix: [(&str, &str, &str); 5] = [
        (
            "s = 0\nfor x in range(0, 3):\n    s = s + i\nreturn s",
            "loop",
            "3",
        ),
        (
            "r = _conn.execute('SELECT sum(i) FROM t')\nreturn r['sum'] + 41",
            "loopback",
            "42",
        ),
        ("l = [1, 2]\nl.append(3)\nreturn len(l)", "mutation", "3"),
        (
            "def g(x):\n    return x + 1\nreturn g(i)",
            "nested-def",
            "2",
        ),
        ("print('probe')\nreturn 7", "print", "7"),
    ];

    for (body, label, first) in matrix {
        let e = db(ExecutionModel::OperatorAtATime, true);
        e.execute("CREATE TABLE t (i INTEGER)").unwrap();
        e.execute("INSERT INTO t VALUES (1)").unwrap();
        e.execute(&format!(
            "CREATE FUNCTION f(i INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {{\n{body}\n}}"
        ))
        .unwrap();

        let plan = explain_udf(&e, "SELECT f(i) FROM t", "f");
        assert_eq!(
            plan,
            format!("interpreted (bail: {label})"),
            "plan decision for body:\n{body}"
        );

        let (i0, b0) = (inlined_c.get(), bailed_c.get());
        let got = run(&e, "SELECT f(i) FROM t").unwrap();
        assert_eq!(
            got,
            vec![first.to_string()],
            "interpreter result for {label}"
        );
        assert_eq!(bailed_c.get() - b0, 1, "{label} bumps the bailed counter");
        assert_eq!(inlined_c.get() - i0, 0, "{label} never counts as inlined");
    }
}

#[test]
fn disabling_inlining_via_knob_is_visible_in_explain() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let e = db(ExecutionModel::OperatorAtATime, false);
    for stmt in numbers_table() {
        e.execute(&stmt).unwrap();
    }
    e.execute(&udf("return i * 2 + d")).unwrap();
    assert_eq!(
        explain_udf(&e, "SELECT f(i, d) FROM t", "f"),
        "interpreted (bail: disabled)"
    );
    // Still runs (through the interpreter).
    assert_eq!(run(&e, "SELECT f(i, d) FROM t").unwrap().len(), 3);
}

#[test]
fn plan_cache_invalidates_on_create_or_replace() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let e = db(ExecutionModel::OperatorAtATime, true);
    for stmt in numbers_table() {
        e.execute(&stmt).unwrap();
    }
    e.execute(&udf("return i + d")).unwrap();
    assert!(explain_udf(&e, "SELECT f(i, d) FROM t", "f").starts_with("inlined as "));

    // Replace with a loopy body: the cached plan must not survive.
    e.execute(
        "CREATE OR REPLACE FUNCTION f(i INTEGER, d DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON {\ns = 0\nfor x in range(0, 2):\n    s = s + i\nreturn s + d\n}",
    )
    .unwrap();
    assert_eq!(
        explain_udf(&e, "SELECT f(i, d) FROM t", "f"),
        "interpreted (bail: loop)"
    );
    assert_eq!(
        run(&e, "SELECT f(i, d) FROM t").unwrap(),
        vec!["2.5", "5.5", "8.5"]
    );
}

// ---------------------------------------------------------------------------
// Runtime bails: the plan inlines, but a binding-time fact forces fallback.
// ---------------------------------------------------------------------------

#[test]
fn null_inputs_bail_to_interpreter() {
    let _serial = obs::metrics::test_lock();
    obs::set_enabled(true);
    let bailed_c = obs::counter!("monetlite.udf.bailed");
    for model in BOTH_MODELS {
        let setup = [
            "CREATE TABLE t (i INTEGER, d DOUBLE)",
            "INSERT INTO t VALUES (1, 0.5), (NULL, 1.5)",
            "CREATE FUNCTION f(i INTEGER, d DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON {\nreturn d * 2\n}",
        ];
        let e = db(model, true);
        for stmt in setup {
            e.execute(stmt).unwrap();
        }
        let b0 = bailed_c.get();
        let got = run(&e, "SELECT f(i, d) FROM t");
        assert!(bailed_c.get() > b0, "NULL input must bail under {model:?}");
        assert_eq!(got, assert_parity(model, &setup, "SELECT f(i, d) FROM t"));
    }
}

#[test]
fn empty_input_bails_to_interpreter() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    for model in BOTH_MODELS {
        let setup = [
            "CREATE TABLE t (i INTEGER, d DOUBLE)",
            "CREATE FUNCTION f(i INTEGER, d DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON {\nreturn d * 2\n}",
        ];
        let _ = assert_parity(model, &setup, "SELECT f(i, d) FROM t");
    }
}

#[test]
fn column_bound_condition_bails_in_operator_at_a_time() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    // `if d > 1` over a whole column: pylite sees an array in the condition.
    // Parity (including the interpreter's error, if any) is the contract.
    let mut setup = numbers_table();
    setup.push(udf("if d > 1:\n    return d\nreturn 0 - d"));
    let setup: Vec<&str> = setup.iter().map(|s| s.as_str()).collect();
    for model in BOTH_MODELS {
        let _ = assert_parity(model, &setup, "SELECT f(i, d) FROM t");
    }
    // Tuple-at-a-time sees one row per call, so there the plan runs inlined
    // and produces the per-row branch values.
    let got = assert_parity(
        ExecutionModel::TupleAtATime,
        &setup,
        "SELECT f(i, d) FROM t",
    );
    assert_eq!(got.unwrap(), vec!["-0.5", "1.5", "2.5"]);
}

#[test]
fn scalar_bound_aggregate_bails() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    // sum() over a scalar binding is a Python TypeError the interpreter
    // must raise; sum() over a column binding inlines to SUM().
    let mut setup = numbers_table();
    setup.push(udf("return sum(d)"));
    let setup: Vec<&str> = setup.iter().map(|s| s.as_str()).collect();
    let got = assert_parity(
        ExecutionModel::OperatorAtATime,
        &setup,
        "SELECT f(1, 2.5) FROM t",
    );
    assert!(got.is_err(), "sum over a scalar must raise: {got:?}");
    let got = assert_parity(
        ExecutionModel::OperatorAtATime,
        &setup,
        "SELECT f(i, d) FROM t",
    );
    assert_eq!(got.unwrap(), vec!["4.5"]);
}

// ---------------------------------------------------------------------------
// Regression pins — one named test per divergence the differential harness
// found, fixed in whichever engine was wrong.
// ---------------------------------------------------------------------------

/// Found by the three-way proptest: pylite's `float()`/`int()` are NOT
/// vectorized (TypeError on arrays) while the lowered `CAST` is elementwise.
/// The plan must bail at runtime when a cast argument is column-bound in
/// operator-at-a-time mode so the interpreter raises its error.
#[test]
fn regression_cast_of_column_is_a_type_error_in_operator_at_a_time() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let mut setup = numbers_table();
    setup.push(udf("v0 = i / 7\nreturn 2.5 - float(d)"));
    let setup: Vec<&str> = setup.iter().map(|s| s.as_str()).collect();

    let got = assert_parity(
        ExecutionModel::OperatorAtATime,
        &setup,
        "SELECT f(i, d) FROM t",
    );
    let err = got.expect_err("float(column) must raise in operator-at-a-time mode");
    assert!(
        err.contains("float() argument must be a number or string"),
        "interpreter's TypeError survives: {err}"
    );

    // Per-row mode sees scalars, so the same body inlines and succeeds.
    let got = assert_parity(
        ExecutionModel::TupleAtATime,
        &setup,
        "SELECT f(i, d) FROM t",
    );
    assert_eq!(got.unwrap(), vec!["2.0", "1.0", "0.0"]);
}

/// Found by the three-way proptest: pylite evaluates every assignment
/// eagerly, so a division by zero in a local the return never reads still
/// raises. The plan sequences binding effects via `__seq`.
#[test]
fn regression_dead_local_still_raises_division_by_zero() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let mut setup = numbers_table();
    setup.push(udf("v0 = (0 - d) / (3.5 - 3.5)\nreturn d + 1"));
    let setup: Vec<&str> = setup.iter().map(|s| s.as_str()).collect();
    for model in BOTH_MODELS {
        let got = assert_parity(model, &setup, "SELECT f(i, d) FROM t");
        let err = got.expect_err("dead local's division by zero must raise");
        assert!(
            err.contains("float division by zero"),
            "under {model:?}: {err}"
        );
    }
}

/// Found by the three-way proptest: tuple-at-a-time calls the UDF once per
/// source row, so a row-independent body still yields one value per row —
/// the inlined scalar result must broadcast.
#[test]
fn regression_row_independent_body_broadcasts_per_row() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let mut setup = numbers_table();
    setup.push(udf("v0 = 0.5 + 3 / 6.5\nreturn 0.5 // (0.5 % v0)"));
    let setup: Vec<&str> = setup.iter().map(|s| s.as_str()).collect();
    for model in BOTH_MODELS {
        let got = assert_parity(model, &setup, "SELECT f(i, d) FROM t").unwrap();
        assert_eq!(
            got.len(),
            if model == ExecutionModel::TupleAtATime {
                3
            } else {
                1
            },
            "row-independent body under {model:?}"
        );
    }
}

/// `abs(i64::MIN)` used to panic in both pylite and the engine's abs()
/// builtin. Both now raise a catchable overflow error.
#[test]
fn regression_abs_of_i64_min_errors_instead_of_panicking() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    // i64::MIN is unrepresentable as a literal; build it with arithmetic.
    let setup = [
        "CREATE TABLE t (i INTEGER)",
        "INSERT INTO t VALUES (1)",
        "CREATE FUNCTION f(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nv = -9223372036854775807 - i\nreturn abs(v)\n}",
    ];
    for model in BOTH_MODELS {
        let got = assert_parity(model, &setup, "SELECT f(i) FROM t");
        let err = got.expect_err("abs(i64::MIN) must error, not panic");
        assert!(err.contains("integer overflow in abs()"), "{err}");
    }
    // The plain SQL builtin too.
    let e = db(ExecutionModel::OperatorAtATime, true);
    e.execute(setup[0]).unwrap();
    e.execute(setup[1]).unwrap();
    let err = run(&e, "SELECT abs(0 - 9223372036854775807 - 1) FROM t")
        .expect_err("SQL abs overflows loudly");
    assert!(err.contains("integer overflow in abs()"), "{err}");
}

// ---------------------------------------------------------------------------
// Division / overflow boundaries (satellite: parity at the edges).
// ---------------------------------------------------------------------------

#[test]
fn division_boundaries_match_interpreter() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let setup = [
        "CREATE TABLE t (i INTEGER)",
        "INSERT INTO t VALUES (1)",
        "CREATE FUNCTION f(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nv = -9223372036854775807 - i\nreturn v // -1\n}",
    ];
    for model in BOTH_MODELS {
        let got = assert_parity(model, &setup, "SELECT f(i) FROM t");
        let err = got.expect_err("i64::MIN // -1 overflows");
        assert!(err.contains("integer overflow"), "under {model:?}: {err}");
    }
}

#[test]
fn per_row_zero_divisor_matches_interpreter() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    // One row has a zero divisor; both modes must surface the interpreter's
    // ZeroDivisionError rather than a partial result.
    let setup = [
        "CREATE TABLE t (i INTEGER)",
        "INSERT INTO t VALUES (2), (0), (4)",
        "CREATE FUNCTION f(i INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {\nreturn 10 / i\n}",
    ];
    for model in BOTH_MODELS {
        let got = assert_parity(model, &setup, "SELECT f(i) FROM t");
        let err = got.expect_err("zero divisor in one row must raise");
        assert!(err.contains("division by zero"), "under {model:?}: {err}");
    }
}

#[test]
fn bool_int_promotion_matches_interpreter() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    // `(i > 1) + i` promotes the comparison's bool to int, like Python.
    let setup = [
        "CREATE TABLE t (i INTEGER)",
        "INSERT INTO t VALUES (1), (2), (3)",
        "CREATE FUNCTION f(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON {\nb = i > 1\nreturn b + i\n}",
    ];
    for model in BOTH_MODELS {
        let _ = assert_parity(model, &setup, "SELECT f(i) FROM t");
    }
    let got = assert_parity(ExecutionModel::TupleAtATime, &setup, "SELECT f(i) FROM t");
    assert_eq!(got.unwrap(), vec!["1", "3", "4"]);
}

#[test]
fn mixed_type_promotion_matches_interpreter() {
    // Serialize with the counter-delta tests: every UDF run bumps the
    // global inlined/bailed counters they measure.
    let _serial = obs::metrics::test_lock();
    let setup = [
        "CREATE TABLE t (i INTEGER, d DOUBLE)",
        "INSERT INTO t VALUES (7, 0.5), (-3, 2.0)",
        "CREATE FUNCTION f(i INTEGER, d DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON {\nreturn i / 2 + i % 3 + d * i\n}",
    ];
    for model in BOTH_MODELS {
        let got = assert_parity(model, &setup, "SELECT f(i, d) FROM t");
        // i=7: 3.5 + 1 + 3.5; i=-3: -1.5 + 0 (euclidean %) + -6.
        assert_eq!(got.unwrap(), vec!["8.0", "-7.5"]);
    }
}
