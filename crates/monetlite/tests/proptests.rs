//! Property tests for the SQL engine (devharness::prop).

use devharness::prop::{self, Config};
use devharness::prop_assert_eq;
use monetlite::{Engine, SqlValue};

fn cfg() -> Config {
    Config::cases(48)
}

fn engine_with(data: &[i64]) -> Engine {
    let db = Engine::new();
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    if !data.is_empty() {
        let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

fn ints(t: &monetlite::Table, col: usize) -> Vec<i64> {
    (0..t.row_count())
        .map(|i| match t.row(i)[col] {
            SqlValue::Int(v) => v,
            ref other => panic!("{other:?}"),
        })
        .collect()
}

#[test]
fn order_by_sorts() {
    prop::check(
        cfg(),
        prop::vec_of(prop::i64_in(-1000..1000), 0..60),
        |data| {
            let db = engine_with(data);
            let t = db
                .execute("SELECT i FROM t ORDER BY i")
                .unwrap()
                .into_table()
                .unwrap();
            let got = ints(&t, 0);
            let mut expected = data.clone();
            expected.sort();
            prop_assert_eq!(got, expected);
            Ok(())
        },
    );
}

#[test]
fn where_filter_matches_rust() {
    let strategy = (
        prop::vec_of(prop::i64_in(-100..100), 0..60),
        prop::i64_in(-100..100),
    );
    prop::check(cfg(), strategy, |(data, cut)| {
        let db = engine_with(data);
        let t = db
            .execute(&format!("SELECT i FROM t WHERE i >= {cut}"))
            .unwrap()
            .into_table()
            .unwrap();
        let expected: Vec<i64> = data.iter().copied().filter(|v| v >= cut).collect();
        prop_assert_eq!(ints(&t, 0), expected);
        Ok(())
    });
}

#[test]
fn distinct_removes_duplicates() {
    prop::check(cfg(), prop::vec_of(prop::i64_in(0..10), 0..60), |data| {
        let db = engine_with(data);
        let t = db
            .execute("SELECT DISTINCT i FROM t ORDER BY i")
            .unwrap()
            .into_table()
            .unwrap();
        let mut expected: Vec<i64> = data.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(ints(&t, 0), expected);
        Ok(())
    });
}

#[test]
fn group_by_partitions_correctly() {
    prop::check(cfg(), prop::vec_of(prop::i64_in(0..5), 1..60), |data| {
        let db = engine_with(data);
        let t = db
            .execute("SELECT i, count(*) FROM t GROUP BY i ORDER BY i")
            .unwrap()
            .into_table()
            .unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for v in data {
            *counts.entry(*v).or_insert(0i64) += 1;
        }
        let keys = ints(&t, 0);
        let cnts = ints(&t, 1);
        prop_assert_eq!(keys.len(), counts.len());
        for (k, c) in keys.iter().zip(&cnts) {
            prop_assert_eq!(counts[k], *c);
        }
        Ok(())
    });
}

#[test]
fn limit_truncates() {
    let strategy = (
        prop::vec_of(prop::i64_in(0..100), 0..50),
        prop::usize_in(0..60),
    );
    prop::check(cfg(), strategy, |(data, n)| {
        let db = engine_with(data);
        let t = db
            .execute(&format!("SELECT i FROM t LIMIT {n}"))
            .unwrap()
            .into_table()
            .unwrap();
        prop_assert_eq!(t.row_count(), (*n).min(data.len()));
        Ok(())
    });
}

#[test]
fn join_matches_manual_computation() {
    let strategy = (
        prop::vec_of(prop::i64_in(0..8), 0..25),
        prop::vec_of(prop::i64_in(0..8), 0..25),
    );
    prop::check(cfg(), strategy, |(left, right)| {
        let db = Engine::new();
        db.execute("CREATE TABLE l (k INTEGER)").unwrap();
        db.execute("CREATE TABLE r (k INTEGER)").unwrap();
        for (tbl, data) in [("l", left), ("r", right)] {
            if !data.is_empty() {
                let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
                db.execute(&format!("INSERT INTO {tbl} VALUES {}", values.join(", ")))
                    .unwrap();
            }
        }
        let t = db
            .execute("SELECT count(*) FROM l JOIN r ON l.k = r.k")
            .unwrap()
            .into_table()
            .unwrap();
        let expected: i64 = left
            .iter()
            .map(|lv| right.iter().filter(|rv| *rv == lv).count() as i64)
            .sum();
        prop_assert_eq!(t.row(0)[0].clone(), SqlValue::Int(expected));
        Ok(())
    });
}

#[test]
fn parser_never_panics() {
    prop::check(
        cfg(),
        prop::string_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '(),*.=<>+-",
            0..120,
        ),
        |sql| {
            let _ = monetlite::sql::parse_statement(sql);
            Ok(())
        },
    );
}

#[test]
fn delete_then_count_is_consistent() {
    let strategy = (
        prop::vec_of(prop::i64_in(-50..50), 0..40),
        prop::i64_in(-50..50),
    );
    prop::check(cfg(), strategy, |(data, cut)| {
        let db = engine_with(data);
        db.execute(&format!("DELETE FROM t WHERE i < {cut}"))
            .unwrap();
        let t = db
            .execute("SELECT count(*) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        let expected = data.iter().filter(|v| *v >= cut).count() as i64;
        prop_assert_eq!(t.row(0)[0].clone(), SqlValue::Int(expected));
        Ok(())
    });
}
