//! Property tests for the SQL engine.

use monetlite::{Engine, SqlValue};
use proptest::prelude::*;

fn engine_with(data: &[i64]) -> Engine {
    let db = Engine::new();
    db.execute("CREATE TABLE t (i INTEGER)").unwrap();
    if !data.is_empty() {
        let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    db
}

fn ints(t: &monetlite::Table, col: usize) -> Vec<i64> {
    (0..t.row_count())
        .map(|i| match t.row(i)[col] {
            SqlValue::Int(v) => v,
            ref other => panic!("{other:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn order_by_sorts(data in proptest::collection::vec(-1000i64..1000, 0..60)) {
        let db = engine_with(&data);
        let t = db.execute("SELECT i FROM t ORDER BY i").unwrap().into_table().unwrap();
        let got = ints(&t, 0);
        let mut expected = data.clone();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn where_filter_matches_rust(data in proptest::collection::vec(-100i64..100, 0..60), cut in -100i64..100) {
        let db = engine_with(&data);
        let t = db
            .execute(&format!("SELECT i FROM t WHERE i >= {cut}"))
            .unwrap()
            .into_table()
            .unwrap();
        let expected: Vec<i64> = data.iter().copied().filter(|v| *v >= cut).collect();
        prop_assert_eq!(ints(&t, 0), expected);
    }

    #[test]
    fn distinct_removes_duplicates(data in proptest::collection::vec(0i64..10, 0..60)) {
        let db = engine_with(&data);
        let t = db
            .execute("SELECT DISTINCT i FROM t ORDER BY i")
            .unwrap()
            .into_table()
            .unwrap();
        let mut expected: Vec<i64> = data.clone();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(ints(&t, 0), expected);
    }

    #[test]
    fn group_by_partitions_correctly(data in proptest::collection::vec(0i64..5, 1..60)) {
        let db = engine_with(&data);
        let t = db
            .execute("SELECT i, count(*) FROM t GROUP BY i ORDER BY i")
            .unwrap()
            .into_table()
            .unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for v in &data {
            *counts.entry(*v).or_insert(0i64) += 1;
        }
        let keys = ints(&t, 0);
        let cnts = ints(&t, 1);
        prop_assert_eq!(keys.len(), counts.len());
        for (k, c) in keys.iter().zip(&cnts) {
            prop_assert_eq!(counts[k], *c);
        }
    }

    #[test]
    fn limit_truncates(data in proptest::collection::vec(0i64..100, 0..50), n in 0usize..60) {
        let db = engine_with(&data);
        let t = db
            .execute(&format!("SELECT i FROM t LIMIT {n}"))
            .unwrap()
            .into_table()
            .unwrap();
        prop_assert_eq!(t.row_count(), n.min(data.len()));
    }

    #[test]
    fn join_matches_manual_computation(
        left in proptest::collection::vec(0i64..8, 0..25),
        right in proptest::collection::vec(0i64..8, 0..25),
    ) {
        let db = Engine::new();
        db.execute("CREATE TABLE l (k INTEGER)").unwrap();
        db.execute("CREATE TABLE r (k INTEGER)").unwrap();
        for (tbl, data) in [("l", &left), ("r", &right)] {
            if !data.is_empty() {
                let values: Vec<String> = data.iter().map(|v| format!("({v})")).collect();
                db.execute(&format!("INSERT INTO {tbl} VALUES {}", values.join(", ")))
                    .unwrap();
            }
        }
        let t = db
            .execute("SELECT count(*) FROM l JOIN r ON l.k = r.k")
            .unwrap()
            .into_table()
            .unwrap();
        let expected: i64 = left
            .iter()
            .map(|lv| right.iter().filter(|rv| *rv == lv).count() as i64)
            .sum();
        prop_assert_eq!(t.row(0)[0].clone(), SqlValue::Int(expected));
    }

    #[test]
    fn parser_never_panics(sql in "[a-zA-Z0-9 '(),*.=<>+-]{0,120}") {
        let _ = monetlite::sql::parse_statement(&sql);
    }

    #[test]
    fn delete_then_count_is_consistent(data in proptest::collection::vec(-50i64..50, 0..40), cut in -50i64..50) {
        let db = engine_with(&data);
        db.execute(&format!("DELETE FROM t WHERE i < {cut}")).unwrap();
        let t = db.execute("SELECT count(*) FROM t").unwrap().into_table().unwrap();
        let expected = data.iter().filter(|v| **v >= cut).count() as i64;
        prop_assert_eq!(t.row(0)[0].clone(), SqlValue::Int(expected));
    }
}
