//! `monetlite` — an in-memory columnar SQL engine with Python UDFs.
//!
//! This crate is the MonetDB stand-in of the devUDF reproduction. The paper's
//! plugin needs four things from its database, and `monetlite` implements all
//! of them for real:
//!
//! 1. **UDF storage in meta tables** — `CREATE FUNCTION … LANGUAGE PYTHON
//!    { body }` stores the *body source* in the catalog, queryable through
//!    `sys.functions` / `sys.args` exactly as paper Listing 1 shows.
//! 2. **Operator-at-a-time execution** — UDFs are invoked once with whole
//!    columns (pylite [`pylite::Array`] values), MonetDB's processing model
//!    (§2.4). A tuple-at-a-time mode (the Postgres model) is also provided
//!    for the paper's extension discussion and the C5 benchmark.
//! 3. **Loopback queries** — the `_conn` object passed to every UDF executes
//!    SQL against the hosting engine from inside the UDF (§2.3).
//! 4. **Input extraction** — [`engine::Engine::extract_inputs`] evaluates a
//!    query but intercepts the named UDF call and returns its input columns
//!    instead of executing it: the server half of the paper's "predefined
//!    extract function" (§2.2).
//!
//! # Quick example
//!
//! ```
//! use monetlite::Engine;
//!
//! let mut db = Engine::new();
//! db.execute("CREATE TABLE t (i INTEGER)").unwrap();
//! db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
//! db.execute(
//!     "CREATE FUNCTION triple(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 3 }",
//! )
//! .unwrap();
//! let result = db.execute("SELECT triple(i) FROM t").unwrap();
//! let table = result.table().unwrap();
//! assert_eq!(table.column(0).unwrap().len(), 3);
//! ```

pub mod catalog;
pub mod classify;
pub mod engine;
pub mod error;
pub mod exec;
pub mod inline;
pub mod snapshot;
pub mod sql;
pub mod storage;
pub mod table;
pub mod types;
pub mod udf;

pub use catalog::{
    Catalog, FunctionDef, FunctionReturn, SessionProvider, SessionRow, SessionSource,
};
pub use classify::{classify_extract, classify_sql, classify_statement, CommandClass};
pub use engine::{Engine, ExecutionModel, QueryResult};
pub use error::{DbError, ErrorCode};
pub use snapshot::EngineSnapshot;
pub use storage::{FsyncPolicy, StorageOptions, StorageStats};
pub use table::Table;
pub use types::{Column, ColumnData, SqlType, SqlValue};
