//! Bridge between the SQL engine and the pylite interpreter.
//!
//! Mirrors MonetDB/Python's execution contract (paper §2.2/§2.4):
//!
//! * **operator-at-a-time** — the stored body is executed *once*, with each
//!   parameter bound to a whole column (a [`pylite::Array`]) in the global
//!   namespace, plus the loopback `_conn` object;
//! * **tuple-at-a-time** — the Postgres-style model: the body runs once per
//!   row with scalar parameters (provided for §2.4's extension discussion
//!   and benchmark C5).
//!
//! The body is interpreted exactly as stored — no `def` wrapping — so error
//! line numbers map 1:1 onto the source in `sys.functions`, which is what
//! lets devUDF place breakpoints meaningfully.

use std::rc::Rc;

#[cfg(test)]
use pylite::value::Dict;
use pylite::value::NativeObject;
use pylite::{Array, Interp, PyError, Value};

use crate::catalog::{FunctionDef, FunctionReturn};
use crate::engine::Engine;
use crate::error::DbError;
use crate::table::Table;
use crate::types::{Column, ColumnData, SqlType, SqlValue};

/// A UDF input: a whole column or a scalar.
#[derive(Debug, Clone)]
pub enum UdfInput {
    Column(Column),
    Scalar(SqlValue),
}

impl UdfInput {
    /// Convert to the interpreter value handed to the UDF
    /// (operator-at-a-time shape).
    pub fn to_py(&self) -> Result<Value, DbError> {
        match self {
            UdfInput::Scalar(v) => scalar_to_py(v),
            UdfInput::Column(c) => column_to_py(c),
        }
    }

    /// Scalar value for row `i` (tuple-at-a-time shape).
    pub fn row_py(&self, i: usize) -> Result<Value, DbError> {
        match self {
            UdfInput::Scalar(v) => scalar_to_py(v),
            UdfInput::Column(c) => scalar_to_py(&c.get(i)),
        }
    }
}

/// Convert a SQL scalar to an interpreter value.
pub fn scalar_to_py(v: &SqlValue) -> Result<Value, DbError> {
    Ok(match v {
        SqlValue::Null => Value::None,
        SqlValue::Int(i) => Value::Int(*i),
        SqlValue::Double(d) => Value::Float(*d),
        SqlValue::Str(s) => Value::str(s.clone()),
        SqlValue::Bool(b) => Value::Bool(*b),
        SqlValue::Blob(b) => Value::bytes(b.clone()),
    })
}

/// Convert a column to the interpreter value a UDF receives.
///
/// Numeric/string/bool columns become vectorized [`Array`]s; blob columns
/// become a single `bytes` when they hold one row (the common
/// pickled-classifier case) or a list of `bytes` otherwise.
pub fn column_to_py(c: &Column) -> Result<Value, DbError> {
    if c.has_nulls() {
        return Err(DbError::type_err(format!(
            "column '{}' contains NULLs; Python UDFs require non-NULL input",
            c.name
        )));
    }
    Ok(match &c.data {
        ColumnData::Int(v) => Value::array(Array::Int(v.clone())),
        ColumnData::Double(v) => Value::array(Array::Float(v.clone())),
        ColumnData::Bool(v) => Value::array(Array::Bool(v.clone())),
        ColumnData::Str(v) => Value::array(Array::Str(v.clone())),
        ColumnData::Blob(v) => {
            if v.len() == 1 {
                Value::bytes(v[0].clone())
            } else {
                Value::list(v.iter().map(|b| Value::bytes(b.clone())).collect())
            }
        }
    })
}

/// Convert an interpreter value back into a SQL scalar.
pub fn py_to_scalar(v: &Value) -> Result<SqlValue, DbError> {
    Ok(match v {
        Value::None => SqlValue::Null,
        Value::Bool(b) => SqlValue::Bool(*b),
        Value::Int(i) => SqlValue::Int(*i),
        Value::Float(f) => SqlValue::Double(*f),
        Value::Str(s) => SqlValue::Str(s.to_string()),
        Value::Bytes(b) => SqlValue::Blob(b.to_vec()),
        other => {
            return Err(DbError::type_err(format!(
                "UDF returned a '{}' where a scalar was expected",
                other.type_name()
            )))
        }
    })
}

/// Convert an interpreter value into a result column.
pub fn py_to_column(name: &str, v: &Value) -> Result<Column, DbError> {
    match v {
        Value::Array(a) => {
            let data = match a.as_ref() {
                Array::Int(v) => ColumnData::Int(v.clone()),
                Array::Float(v) => ColumnData::Double(v.clone()),
                Array::Bool(v) => ColumnData::Bool(v.clone()),
                Array::Str(v) => ColumnData::Str(v.clone()),
            };
            Ok(Column::new(name, data))
        }
        Value::List(items) => {
            let values: Result<Vec<SqlValue>, DbError> =
                items.borrow().iter().map(py_to_scalar).collect();
            Column::from_values(name, &values?)
        }
        Value::Tuple(items) => {
            let values: Result<Vec<SqlValue>, DbError> = items.iter().map(py_to_scalar).collect();
            Column::from_values(name, &values?)
        }
        scalar => Column::from_values(name, &[py_to_scalar(scalar)?]),
    }
}

/// The result of running a UDF body once.
pub struct UdfOutput {
    pub value: Value,
    /// Captured `print` output (surfaced to the client for the paper's
    /// "print debugging" comparison scenario).
    pub stdout: String,
}

/// The loopback connection object (`_conn`) passed to every UDF (§2.3).
pub struct LoopbackConn {
    engine: Engine,
}

impl LoopbackConn {
    pub fn new(engine: Engine) -> Self {
        LoopbackConn { engine }
    }
}

impl NativeObject for LoopbackConn {
    fn type_name(&self) -> &'static str {
        "monetdb_connection"
    }

    fn repr(&self) -> String {
        "<loopback connection>".to_string()
    }

    fn call_method(
        &self,
        name: &str,
        _interp: &mut Interp,
        args: &[Value],
        _kwargs: &[(String, Value)],
    ) -> Result<Value, PyError> {
        match name {
            "execute" => {
                let Some(Value::Str(sql)) = args.first() else {
                    return Err(PyError::new(
                        pylite::ErrorKind::Type,
                        "_conn.execute() takes a SQL string",
                    ));
                };
                let result = self
                    .engine
                    .execute(sql)
                    .map_err(|e| PyError::new(pylite::ErrorKind::Value, e.to_string()))?;
                let table = result
                    .into_table()
                    .map_err(|e| PyError::new(pylite::ErrorKind::Value, e.to_string()))?;
                Ok(result_set_value(&table))
            }
            other => Err(PyError::new(
                pylite::ErrorKind::Attribute,
                format!("'monetdb_connection' object has no method '{other}'"),
            )),
        }
    }
}

/// Wrap a query result table for UDF consumption.
///
/// MonetDB/Python returns a dict of column name → numpy array. The paper's
/// Listing 3 both tuple-unpacks the result *and* subscripts it by column
/// name, so we return a [`ResultSet`] native that supports both: iteration
/// yields column values in order; subscripting accepts a column name.
/// Single-row columns collapse to scalars, matching how Listing 3 consumes
/// `res['clf']` directly.
pub fn result_set_value(table: &Table) -> Value {
    Value::Native(Rc::new(ResultSet {
        table: table.clone(),
    }))
}

/// Query-result wrapper exposed to UDFs.
pub struct ResultSet {
    table: Table,
}

impl ResultSet {
    fn column_value(&self, c: &Column) -> Value {
        if c.len() == 1 {
            scalar_to_py(&c.get(0)).unwrap_or(Value::None)
        } else {
            column_to_py(c).unwrap_or(Value::None)
        }
    }
}

impl NativeObject for ResultSet {
    fn type_name(&self) -> &'static str {
        "result_set"
    }

    fn repr(&self) -> String {
        format!(
            "<result_set {} column(s) x {} row(s)>",
            self.table.column_count(),
            self.table.row_count()
        )
    }

    fn iterate(&self) -> Option<Vec<Value>> {
        Some(
            self.table
                .columns
                .iter()
                .map(|c| self.column_value(c))
                .collect(),
        )
    }

    fn call_method(
        &self,
        name: &str,
        _interp: &mut Interp,
        args: &[Value],
        _kwargs: &[(String, Value)],
    ) -> Result<Value, PyError> {
        match name {
            "__getitem__" => {
                let Some(Value::Str(col)) = args.first() else {
                    return Err(PyError::new(
                        pylite::ErrorKind::Type,
                        "result_set indices must be column-name strings",
                    ));
                };
                let c = self.table.column_by_name(col).ok_or_else(|| {
                    PyError::new(
                        pylite::ErrorKind::Key,
                        format!("no column '{col}' in result set"),
                    )
                })?;
                Ok(self.column_value(c))
            }
            "keys" => Ok(Value::list(
                self.table
                    .columns
                    .iter()
                    .map(|c| Value::str(c.name.clone()))
                    .collect(),
            )),
            other => Err(PyError::new(
                pylite::ErrorKind::Attribute,
                format!("'result_set' object has no method '{other}'"),
            )),
        }
    }
}

/// Times one successful UDF run into the aggregate `monet.udf.latency`
/// histogram plus a per-UDF `monet.udf.latency.<name>` histogram (the
/// dynamic registry lookup is negligible next to an interpreter run).
struct UdfTimer<'a> {
    name: &'a str,
    started: Option<std::time::Instant>,
}

impl<'a> UdfTimer<'a> {
    fn start(name: &'a str) -> UdfTimer<'a> {
        obs::counter!("monet.udf.invocations").inc();
        UdfTimer {
            name,
            started: obs::enabled().then(std::time::Instant::now),
        }
    }

    fn finish(self) {
        if let Some(started) = self.started {
            let elapsed = started.elapsed();
            obs::histogram!("monet.udf.latency").record_duration(elapsed);
            obs::metrics::registry()
                .histogram(&format!(
                    "monet.udf.latency.{}",
                    self.name.to_ascii_lowercase()
                ))
                .record_duration(elapsed);
        }
    }
}

/// Build the interpreter for one UDF invocation.
fn build_interp(engine: &Engine) -> Interp {
    let mut interp = Interp::with_fs(engine.fs());
    interp.rng_seed = engine.rng_seed();
    interp.set_step_budget(engine.udf_step_budget());
    interp.set_exec_mode(engine.exec_mode());
    interp
}

/// Run a UDF operator-at-a-time: one execution, columns bound as globals.
pub fn run_operator_at_a_time(
    engine: &Engine,
    def: &FunctionDef,
    inputs: &[(String, UdfInput)],
) -> Result<UdfOutput, DbError> {
    let _depth = engine.enter_udf()?;
    let mut span = obs::trace::span_active("monet.udf.run");
    span.field("udf", &def.name);
    let timer = UdfTimer::start(&def.name);
    let mut interp = build_interp(engine);
    for (name, input) in inputs {
        interp.set_global(name, input.to_py()?);
    }
    interp.set_global(
        "_conn",
        Value::Native(Rc::new(LoopbackConn::new(engine.clone()))),
    );
    let value = interp
        .eval_module(&def.body)
        .map_err(|e| DbError::udf(&e))?;
    timer.finish();
    Ok(UdfOutput {
        value,
        stdout: interp.take_stdout(),
    })
}

/// Run a UDF tuple-at-a-time: once per row with scalar globals.
///
/// Returns one output value per row.
pub fn run_tuple_at_a_time(
    engine: &Engine,
    def: &FunctionDef,
    inputs: &[(String, UdfInput)],
    rows: usize,
) -> Result<(Vec<Value>, String), DbError> {
    let _depth = engine.enter_udf()?;
    let mut span = obs::trace::span_active("monet.udf.run");
    span.field("udf", &def.name);
    let timer = UdfTimer::start(&def.name);
    let module = pylite::parse_module(&def.body).map_err(|e| DbError::udf(&e))?;
    let mut interp = build_interp(engine);
    // Tuple-at-a-time reruns the same body once per row: compile it once up
    // front so the per-row cost is pure bytecode execution.
    let code = match interp.exec_mode() {
        pylite::ExecMode::Bytecode => Some(pylite::compile_module(&module)),
        pylite::ExecMode::Ast => None,
    };
    let conn = Value::Native(Rc::new(LoopbackConn::new(engine.clone())));
    let mut outputs = Vec::with_capacity(rows);
    let mut stdout = String::new();
    for row in 0..rows {
        interp.reset();
        for (name, input) in inputs {
            interp.set_global(name, input.row_py(row)?);
        }
        interp.set_global("_conn", conn.clone());
        let v = match &code {
            Some(code) => interp.run_code(code),
            None => interp.run_module(&module),
        }
        .map_err(|e| DbError::udf(&e))?;
        stdout.push_str(&interp.take_stdout());
        outputs.push(v);
    }
    timer.finish();
    Ok((outputs, stdout))
}

/// Convert a UDF's output value into a result table according to its
/// declared return shape.
pub fn output_to_table(def: &FunctionDef, value: &Value) -> Result<Table, DbError> {
    match &def.returns {
        FunctionReturn::Table(cols) => match value {
            Value::Dict(d) => {
                let d = d.borrow();
                let mut columns = Vec::with_capacity(cols.len());
                for (cname, ctype) in cols {
                    let v = d
                        .get(&Value::str(cname.clone()))
                        .map_err(|e| DbError::udf(&e))?
                        .ok_or_else(|| {
                            DbError::type_err(format!(
                                "UDF '{}' result dict is missing column '{cname}'",
                                def.name
                            ))
                        })?;
                    columns.push(coerce_column(py_to_column(cname, &v)?, *ctype)?);
                }
                broadcast_columns(&def.name, columns)
            }
            other => {
                // A table function may return a bare list/array when it
                // declares a single column.
                if cols.len() == 1 {
                    let col = py_to_column(&cols[0].0, other)?;
                    let col = coerce_column(col, cols[0].1)?;
                    Table::from_columns(def.name.clone(), vec![col])
                } else {
                    Err(DbError::type_err(format!(
                        "UDF '{}' must return a dict with columns {:?}",
                        def.name,
                        cols.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
                    )))
                }
            }
        },
        FunctionReturn::Scalar(t) => {
            let col = py_to_column(&def.name, value)?;
            let col = coerce_column(col, *t)?;
            Table::from_columns(def.name.clone(), vec![col])
        }
    }
}

/// Broadcast 1-row columns to the longest column's length so dicts mixing
/// scalars and arrays (paper Listing 1 returns `{'clf': blob,
/// 'estimators': n}`) form a rectangular table.
fn broadcast_columns(name: &str, columns: Vec<Column>) -> Result<Table, DbError> {
    let target = columns.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(columns.len());
    for c in columns {
        if c.len() == target {
            out.push(c);
        } else if c.len() == 1 {
            let v = c.get(0);
            let mut grown = Column::empty(c.name.clone(), c.sql_type());
            for _ in 0..target {
                grown.push(&v)?;
            }
            out.push(grown);
        } else {
            return Err(DbError::exec(format!(
                "UDF '{name}' returned columns of incompatible lengths ({} vs {target})",
                c.len()
            )));
        }
    }
    Table::from_columns(name.to_string(), out)
}

/// Coerce a produced column to its declared SQL type.
fn coerce_column(col: Column, target: SqlType) -> Result<Column, DbError> {
    if col.sql_type() == target {
        return Ok(col);
    }
    let mut out = Column::empty(col.name.clone(), target);
    for i in 0..col.len() {
        out.push(&col.get(i))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions_round_trip() {
        for v in [
            SqlValue::Null,
            SqlValue::Int(42),
            SqlValue::Double(2.5),
            SqlValue::Str("hi".into()),
            SqlValue::Bool(true),
            SqlValue::Blob(vec![1, 2]),
        ] {
            let py = scalar_to_py(&v).unwrap();
            assert_eq!(py_to_scalar(&py).unwrap(), v);
        }
    }

    #[test]
    fn column_to_py_is_vectorized() {
        let c = Column::new("i", ColumnData::Int(vec![1, 2, 3]));
        match column_to_py(&c).unwrap() {
            Value::Array(a) => assert_eq!(a.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn null_column_rejected_for_udf() {
        let c = Column::from_values("i", &[SqlValue::Int(1), SqlValue::Null]).unwrap();
        assert!(column_to_py(&c).is_err());
    }

    #[test]
    fn py_to_column_shapes() {
        let col = py_to_column("r", &Value::array(Array::Float(vec![1.0, 2.0]))).unwrap();
        assert_eq!(col.sql_type(), SqlType::Double);
        assert_eq!(col.len(), 2);
        let col = py_to_column("r", &Value::Int(7)).unwrap();
        assert_eq!(col.len(), 1);
        let col = py_to_column("r", &Value::list(vec![Value::Int(1), Value::Float(2.5)])).unwrap();
        assert_eq!(col.sql_type(), SqlType::Double);
    }

    #[test]
    fn single_blob_column_collapses_to_bytes() {
        let c = Column::new("clf", ColumnData::Blob(vec![vec![9, 9]]));
        match column_to_py(&c).unwrap() {
            Value::Bytes(b) => assert_eq!(b.to_vec(), vec![9, 9]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn result_set_supports_both_listing3_access_patterns() {
        let table = Table::from_columns(
            "r",
            vec![
                Column::new("data", ColumnData::Int(vec![1, 2, 3])),
                Column::new("labels", ColumnData::Int(vec![0, 1, 0])),
            ],
        )
        .unwrap();
        let rs = result_set_value(&table);
        let mut interp = Interp::new();
        interp.set_global("res", rs);
        interp
            .eval_module(
                "(tdata, tlabels) = res\nby_name = res['labels']\nn = len(tdata)\nsame = sum(by_name == tlabels) == 3\n",
            )
            .unwrap();
        assert_eq!(interp.get_global("n").unwrap(), Value::Int(3));
        assert_eq!(interp.get_global("same").unwrap(), Value::Bool(true));
    }

    #[test]
    fn output_to_table_broadcasts_listing1_dict() {
        let def = FunctionDef {
            name: "train".into(),
            params: vec![],
            returns: FunctionReturn::Table(vec![
                ("clf".into(), SqlType::Blob),
                ("estimators".into(), SqlType::Integer),
            ]),
            language: "PYTHON".into(),
            body: String::new(),
        };
        let mut d = Dict::new();
        d.insert(Value::str("clf"), Value::bytes(vec![1, 2, 3]))
            .unwrap();
        d.insert(Value::str("estimators"), Value::Int(10)).unwrap();
        let t = output_to_table(&def, &Value::dict(d)).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(
            t.column_by_name("estimators").unwrap().get(0),
            SqlValue::Int(10)
        );
    }

    #[test]
    fn output_to_table_missing_column_errors() {
        let def = FunctionDef {
            name: "f".into(),
            params: vec![],
            returns: FunctionReturn::Table(vec![("a".into(), SqlType::Integer)]),
            language: "PYTHON".into(),
            body: String::new(),
        };
        let d = Dict::new();
        assert!(output_to_table(&def, &Value::dict(d)).is_err());
    }
}
