//! SQL lexer.
//!
//! One non-standard feature: a `{`-balanced block is captured as a single
//! [`SqlTok::Body`] token — the Python UDF body of `CREATE FUNCTION …
//! LANGUAGE PYTHON { … }`. Brace matching skips string literals and `#`
//! comments inside the body so dict displays like `{'clf': …}` nest safely
//! (paper Listing 1).

use crate::error::DbError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlTok {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `{ … }` function body, braces stripped.
    Body(String),
    // Symbols.
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
    Eof,
}

impl SqlTok {
    /// True if this token is the keyword `kw` (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, SqlTok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn describe(&self) -> String {
        match self {
            SqlTok::Ident(s) => format!("'{s}'"),
            SqlTok::Int(v) => format!("{v}"),
            SqlTok::Float(v) => format!("{v}"),
            SqlTok::Str(_) => "string literal".to_string(),
            SqlTok::Body(_) => "function body".to_string(),
            SqlTok::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<SqlTok>, DbError> {
    let bytes = sql.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // SQL line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                out.push(SqlTok::LParen);
                pos += 1;
            }
            b')' => {
                out.push(SqlTok::RParen);
                pos += 1;
            }
            b',' => {
                out.push(SqlTok::Comma);
                pos += 1;
            }
            b'.' if !matches!(bytes.get(pos + 1), Some(b'0'..=b'9')) => {
                out.push(SqlTok::Dot);
                pos += 1;
            }
            b'*' => {
                out.push(SqlTok::Star);
                pos += 1;
            }
            b'+' => {
                out.push(SqlTok::Plus);
                pos += 1;
            }
            b'-' => {
                out.push(SqlTok::Minus);
                pos += 1;
            }
            b'/' => {
                out.push(SqlTok::Slash);
                pos += 1;
            }
            b'%' => {
                out.push(SqlTok::Percent);
                pos += 1;
            }
            b';' => {
                out.push(SqlTok::Semicolon);
                pos += 1;
            }
            b'=' => {
                out.push(SqlTok::Eq);
                pos += 1;
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    out.push(SqlTok::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    out.push(SqlTok::NotEq);
                    pos += 2;
                }
                _ => {
                    out.push(SqlTok::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(SqlTok::Ge);
                    pos += 2;
                } else {
                    out.push(SqlTok::Gt);
                    pos += 1;
                }
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push(SqlTok::NotEq);
                pos += 2;
            }
            b'\'' => {
                let (s, next) = lex_sql_string(sql, pos)?;
                out.push(SqlTok::Str(s));
                pos = next;
            }
            b'{' => {
                let (body, next) = capture_body(sql, pos)?;
                out.push(SqlTok::Body(body));
                pos = next;
            }
            b'0'..=b'9' | b'.' => {
                let start = pos;
                let mut is_float = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'0'..=b'9' => pos += 1,
                        b'.' if !is_float => {
                            is_float = true;
                            pos += 1;
                        }
                        b'e' | b'E'
                            if matches!(bytes.get(pos + 1), Some(b'0'..=b'9'))
                                || (matches!(bytes.get(pos + 1), Some(b'+') | Some(b'-'))
                                    && matches!(bytes.get(pos + 2), Some(b'0'..=b'9'))) =>
                        {
                            is_float = true;
                            pos += 2;
                            while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                                pos += 1;
                            }
                            break;
                        }
                        _ => break,
                    }
                }
                let text = &sql[start..pos];
                if is_float {
                    out.push(SqlTok::Float(text.parse().map_err(|_| {
                        DbError::parse(format!("bad numeric literal '{text}'"))
                    })?));
                } else {
                    out.push(SqlTok::Int(text.parse().map_err(|_| {
                        DbError::parse(format!("integer literal '{text}' out of range"))
                    })?));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'"' => {
                if c == b'"' {
                    // Quoted identifier.
                    let end = sql[pos + 1..]
                        .find('"')
                        .ok_or_else(|| DbError::parse("unterminated quoted identifier"))?;
                    out.push(SqlTok::Ident(sql[pos + 1..pos + 1 + end].to_string()));
                    pos += end + 2;
                } else {
                    let start = pos;
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                    {
                        pos += 1;
                    }
                    out.push(SqlTok::Ident(sql[start..pos].to_string()));
                }
            }
            other => {
                return Err(DbError::parse(format!(
                    "unexpected character '{}' in SQL",
                    other as char
                )))
            }
        }
    }
    out.push(SqlTok::Eof);
    Ok(out)
}

/// Lex a single-quoted SQL string with `''` escaping. Returns (value,
/// position-after-closing-quote).
fn lex_sql_string(sql: &str, start: usize) -> Result<(String, usize), DbError> {
    let bytes = sql.as_bytes();
    let mut pos = start + 1;
    let mut out = String::new();
    while pos < bytes.len() {
        match bytes[pos] {
            b'\'' if bytes.get(pos + 1) == Some(&b'\'') => {
                out.push('\'');
                pos += 2;
            }
            b'\'' => return Ok((out, pos + 1)),
            _ => {
                let ch_start = pos;
                pos += 1;
                while pos < bytes.len() && (bytes[pos] & 0xc0) == 0x80 {
                    pos += 1;
                }
                out.push_str(&sql[ch_start..pos]);
            }
        }
    }
    Err(DbError::parse("unterminated string literal"))
}

/// Capture a `{ … }` block with balanced braces, skipping Python string
/// literals (single, double and triple quotes) and `#` comments.
fn capture_body(sql: &str, start: usize) -> Result<(String, usize), DbError> {
    let bytes = sql.as_bytes();
    debug_assert_eq!(bytes[start], b'{');
    let mut pos = start + 1;
    let mut depth = 1usize;
    while pos < bytes.len() {
        match bytes[pos] {
            b'{' => {
                depth += 1;
                pos += 1;
            }
            b'}' => {
                depth -= 1;
                pos += 1;
                if depth == 0 {
                    let body = sql[start + 1..pos - 1].to_string();
                    return Ok((body, pos));
                }
            }
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            quote @ (b'\'' | b'"') => {
                let triple =
                    bytes.get(pos + 1) == Some(&quote) && bytes.get(pos + 2) == Some(&quote);
                if triple {
                    pos += 3;
                    loop {
                        if pos + 2 > bytes.len() && pos >= bytes.len() {
                            return Err(DbError::parse(
                                "unterminated triple-quoted string in function body",
                            ));
                        }
                        if pos + 2 < bytes.len()
                            && bytes[pos] == quote
                            && bytes[pos + 1] == quote
                            && bytes[pos + 2] == quote
                        {
                            pos += 3;
                            break;
                        }
                        if pos >= bytes.len() {
                            return Err(DbError::parse(
                                "unterminated triple-quoted string in function body",
                            ));
                        }
                        pos += 1;
                    }
                } else {
                    pos += 1;
                    while pos < bytes.len() && bytes[pos] != quote {
                        if bytes[pos] == b'\\' {
                            pos += 1;
                        }
                        if bytes[pos] == b'\n' {
                            // Python single-quoted strings do not span lines,
                            // but be permissive: stop scanning at newline.
                            break;
                        }
                        pos += 1;
                    }
                    pos += 1; // closing quote (or char after newline)
                }
            }
            _ => pos += 1,
        }
    }
    Err(DbError::parse("unterminated '{' function body"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = tokenize("SELECT i, s FROM t WHERE i >= 10;").unwrap();
        assert!(toks.iter().any(|t| t.is_kw("select")));
        assert!(toks.contains(&SqlTok::Ge));
        assert!(toks.contains(&SqlTok::Int(10)));
        assert_eq!(*toks.last().unwrap(), SqlTok::Eof);
    }

    #[test]
    fn string_literal_with_escaped_quote() {
        let toks = tokenize("SELECT 'it''s'").unwrap();
        assert!(toks.contains(&SqlTok::Str("it's".to_string())));
    }

    #[test]
    fn numbers() {
        let toks = tokenize("SELECT 1, 2.5, 1e3").unwrap();
        assert!(toks.contains(&SqlTok::Int(1)));
        assert!(toks.contains(&SqlTok::Float(2.5)));
        assert!(toks.contains(&SqlTok::Float(1000.0)));
    }

    #[test]
    fn body_capture_with_nested_dict() {
        let sql =
            "CREATE FUNCTION f(i INT) RETURNS INT LANGUAGE PYTHON {\nreturn {'a': 1}['a'] + i\n}";
        let toks = tokenize(sql).unwrap();
        let body = toks
            .iter()
            .find_map(|t| match t {
                SqlTok::Body(b) => Some(b.clone()),
                _ => None,
            })
            .unwrap();
        assert!(body.contains("{'a': 1}['a']"));
    }

    #[test]
    fn body_capture_skips_braces_in_strings_and_comments() {
        let sql = "LANGUAGE PYTHON { s = '}'  # also } here\nreturn s }";
        let toks = tokenize(sql).unwrap();
        let body = toks
            .iter()
            .find_map(|t| match t {
                SqlTok::Body(b) => Some(b.clone()),
                _ => None,
            })
            .unwrap();
        assert!(body.contains("return s"));
    }

    #[test]
    fn body_capture_handles_triple_quotes() {
        let sql = "LANGUAGE PYTHON { q = \"\"\"SELECT { nope\"\"\"\nreturn q }";
        let toks = tokenize(sql).unwrap();
        assert!(toks.iter().any(|t| matches!(t, SqlTok::Body(_))));
    }

    #[test]
    fn unterminated_body_is_error() {
        assert!(tokenize("LANGUAGE PYTHON { return 1").is_err());
    }

    #[test]
    fn comments_stripped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert!(toks.contains(&SqlTok::Int(2)));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"Weird Name\" FROM t").unwrap();
        assert!(toks.contains(&SqlTok::Ident("Weird Name".to_string())));
    }

    #[test]
    fn dotted_names() {
        let toks = tokenize("SELECT * FROM sys.functions").unwrap();
        let dot_pos = toks.iter().position(|t| *t == SqlTok::Dot).unwrap();
        assert!(matches!(&toks[dot_pos - 1], SqlTok::Ident(s) if s == "sys"));
        assert!(matches!(&toks[dot_pos + 1], SqlTok::Ident(s) if s == "functions"));
    }
}
