//! SQL front-end: lexer, AST and parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{FromClause, SelectItem, SelectStmt, SqlExpr, Statement, TableFuncArg};
pub use parser::parse_statement;
