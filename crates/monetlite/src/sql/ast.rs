//! SQL abstract syntax tree.

use crate::types::{SqlType, SqlValue};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<(String, SqlType)>,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        /// Explicit column list, or None for positional inserts.
        columns: Option<Vec<String>>,
        rows: Vec<Vec<SqlExpr>>,
    },
    Delete {
        table: String,
        predicate: Option<SqlExpr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, SqlExpr)>,
        predicate: Option<SqlExpr>,
    },
    CreateFunction {
        or_replace: bool,
        name: String,
        params: Vec<(String, SqlType)>,
        returns: FunctionReturnAst,
        language: String,
        body: String,
    },
    DropFunction {
        name: String,
        if_exists: bool,
    },
    Select(SelectStmt),
    /// `EXPLAIN <statement>` — renders the execution plan, including the
    /// Inlined/Interpreted decision for every stored UDF the query calls.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <statement>` — executes the statement for real
    /// and renders per-operator wall time, row counts and per-UDF
    /// dispositions instead of the statement's own result (DESIGN §15).
    ExplainAnalyze(Box<Statement>),
    /// `COPY INTO t FROM 'path'` — CSV ingestion.
    CopyInto {
        table: String,
        path: String,
        delimiter: char,
    },
}

/// Return clause of CREATE FUNCTION.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionReturnAst {
    Scalar(SqlType),
    Table(Vec<(String, SqlType)>),
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<FromClause>,
    pub predicate: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<(SqlExpr, bool)>,
    pub limit: Option<usize>,
}

/// One entry of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Star,
    Expr {
        expr: SqlExpr,
        alias: Option<String>,
    },
}

/// FROM clause shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum FromClause {
    /// Plain (possibly dotted) table name.
    Table(String),
    /// Table-returning function call: `FROM train_rnforest((SELECT …), 10)`.
    TableFunction {
        name: String,
        args: Vec<TableFuncArg>,
    },
    /// Derived table.
    Subquery(Box<SelectStmt>),
    /// Two-way join (left-deep chains nest in `left`).
    Join {
        left: Box<FromClause>,
        right: Box<FromClause>,
        on: SqlExpr,
        kind: JoinKind,
        /// Aliases for qualifying output column names: (left, right); a
        /// side without an explicit alias uses its table name, or a
        /// positional `_t<n>` for anonymous subqueries.
        aliases: (String, String),
    },
}

/// Join flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// Left outer: unmatched left rows padded with NULLs.
    Left,
}

/// Argument of a table function.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFuncArg {
    /// `(SELECT …)` — contributes its output columns positionally.
    Query(Box<SelectStmt>),
    /// Scalar expression.
    Expr(SqlExpr),
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Literal(SqlValue),
    /// Possibly qualified column reference (qualifier discarded at binding).
    Column(String),
    /// `*` inside `count(*)`.
    Star,
    Unary {
        op: UnaryOp,
        expr: Box<SqlExpr>,
    },
    Binary {
        left: Box<SqlExpr>,
        op: BinaryOp,
        right: Box<SqlExpr>,
    },
    /// Function call: builtin scalar, aggregate, or stored UDF.
    Call {
        name: String,
        args: Vec<SqlExpr>,
    },
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
    Like {
        expr: Box<SqlExpr>,
        pattern: Box<SqlExpr>,
        negated: bool,
    },
    InList {
        expr: Box<SqlExpr>,
        list: Vec<SqlExpr>,
        negated: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        expr: Box<SqlExpr>,
        target: SqlType,
    },
    /// `CASE WHEN cond THEN value [WHEN …] ELSE value END`. Branch values
    /// are evaluated lazily: only for the rows a branch actually selects.
    /// Also the lowering target for inlined UDF `if/elif/else` chains.
    Case {
        branches: Vec<(SqlExpr, SqlExpr)>,
        else_: Box<SqlExpr>,
    },
}

/// Unary SQL operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary SQL operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    /// Python-semantics floor division (`//`): rounds toward negative
    /// infinity, unlike SQL `/` which truncates. Produced by the UDF
    /// inlining pass; not reachable from the SQL grammar.
    FloorDiv,
    /// Python-semantics modulo: result takes the divisor's sign
    /// (`-7 %% 3 = 2`). Produced by the UDF inlining pass.
    FloorMod,
    /// Exponentiation (`**`). Produced by the UDF inlining pass.
    Pow,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::FloorDiv => "//",
            BinaryOp::FloorMod => "%%",
            BinaryOp::Pow => "**",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}
