//! Recursive-descent SQL parser.

use crate::error::DbError;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, SqlTok};
use crate::types::{SqlType, SqlValue};

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semi();
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<SqlTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SqlTok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &SqlTok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> SqlTok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::parse(format!(
                "expected {}, found {}",
                kw.to_uppercase(),
                self.peek().describe()
            )))
        }
    }

    fn eat(&mut self, tok: &SqlTok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &SqlTok) -> Result<(), DbError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(DbError::parse(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().describe()
            )))
        }
    }

    fn eat_semi(&mut self) {
        while self.eat(&SqlTok::Semicolon) {}
    }

    fn expect_eof(&mut self) -> Result<(), DbError> {
        if matches!(self.peek(), SqlTok::Eof) {
            Ok(())
        } else {
            Err(DbError::parse(format!(
                "unexpected trailing input: {}",
                self.peek().describe()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.bump() {
            SqlTok::Ident(s) => Ok(s),
            other => Err(DbError::parse(format!(
                "expected identifier, found {}",
                other.describe()
            ))),
        }
    }

    /// Possibly dotted name (`sys.functions`).
    fn dotted_name(&mut self) -> Result<String, DbError> {
        let mut name = self.ident()?;
        while self.eat(&SqlTok::Dot) {
            name.push('.');
            name.push_str(&self.ident()?);
        }
        Ok(name)
    }

    fn sql_type(&mut self) -> Result<SqlType, DbError> {
        let name = self.ident()?;
        let t = SqlType::parse(&name)
            .ok_or_else(|| DbError::parse(format!("unknown type '{name}'")))?;
        // Swallow optional length parameters: VARCHAR(32).
        if self.eat(&SqlTok::LParen) {
            while !matches!(self.peek(), SqlTok::RParen | SqlTok::Eof) {
                self.bump();
            }
            self.expect(&SqlTok::RParen)?;
        }
        Ok(t)
    }

    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.eat_kw("explain") {
            if self.eat_kw("analyze") {
                return Ok(Statement::ExplainAnalyze(Box::new(self.statement()?)));
            }
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.peek().is_kw("create") {
            return self.create();
        }
        if self.peek().is_kw("drop") {
            return self.drop();
        }
        if self.peek().is_kw("insert") {
            return self.insert();
        }
        if self.peek().is_kw("delete") {
            return self.delete();
        }
        if self.peek().is_kw("update") {
            return self.update();
        }
        if self.peek().is_kw("select") || matches!(self.peek(), SqlTok::LParen) {
            return Ok(Statement::Select(self.select()?));
        }
        if self.peek().is_kw("copy") {
            return self.copy_into();
        }
        Err(DbError::parse(format!(
            "unexpected {} at start of statement",
            self.peek().describe()
        )))
    }

    fn create(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("create")?;
        let or_replace = if self.eat_kw("or") {
            self.expect_kw("replace")?;
            true
        } else {
            false
        };
        if self.eat_kw("table") {
            if or_replace {
                return Err(DbError::parse("OR REPLACE is not supported for tables"));
            }
            let name = self.dotted_name()?;
            self.expect(&SqlTok::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let t = self.sql_type()?;
                columns.push((col, t));
                if !self.eat(&SqlTok::Comma) {
                    break;
                }
            }
            self.expect(&SqlTok::RParen)?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.eat_kw("function") {
            let name = self.dotted_name()?;
            self.expect(&SqlTok::LParen)?;
            let mut params = Vec::new();
            if !matches!(self.peek(), SqlTok::RParen) {
                loop {
                    let pname = self.ident()?;
                    let ptype = self.sql_type()?;
                    params.push((pname, ptype));
                    if !self.eat(&SqlTok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&SqlTok::RParen)?;
            self.expect_kw("returns")?;
            let returns = if self.eat_kw("table") {
                self.expect(&SqlTok::LParen)?;
                let mut cols = Vec::new();
                loop {
                    let cname = self.ident()?;
                    let ctype = self.sql_type()?;
                    cols.push((cname, ctype));
                    if !self.eat(&SqlTok::Comma) {
                        break;
                    }
                }
                self.expect(&SqlTok::RParen)?;
                FunctionReturnAst::Table(cols)
            } else {
                FunctionReturnAst::Scalar(self.sql_type()?)
            };
            self.expect_kw("language")?;
            let language = self.ident()?.to_uppercase();
            let body = match self.bump() {
                SqlTok::Body(b) => b,
                other => {
                    return Err(DbError::parse(format!(
                        "expected '{{ function body }}', found {}",
                        other.describe()
                    )))
                }
            };
            return Ok(Statement::CreateFunction {
                or_replace,
                name,
                params,
                returns,
                language,
                body,
            });
        }
        Err(DbError::parse("expected TABLE or FUNCTION after CREATE"))
    }

    fn drop(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("drop")?;
        let is_table = if self.eat_kw("table") {
            true
        } else if self.eat_kw("function") {
            false
        } else {
            return Err(DbError::parse("expected TABLE or FUNCTION after DROP"));
        };
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.dotted_name()?;
        Ok(if is_table {
            Statement::DropTable { name, if_exists }
        } else {
            Statement::DropFunction { name, if_exists }
        })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.dotted_name()?;
        let columns = if matches!(self.peek(), SqlTok::LParen) {
            self.bump();
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat(&SqlTok::Comma) {
                    break;
                }
            }
            self.expect(&SqlTok::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&SqlTok::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&SqlTok::Comma) {
                    break;
                }
            }
            self.expect(&SqlTok::RParen)?;
            rows.push(row);
            if !self.eat(&SqlTok::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn delete(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.dotted_name()?;
        let predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn update(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("update")?;
        let table = self.dotted_name()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&SqlTok::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat(&SqlTok::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn copy_into(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("copy")?;
        self.expect_kw("into")?;
        let table = self.dotted_name()?;
        self.expect_kw("from")?;
        let path = match self.bump() {
            SqlTok::Str(s) => s,
            other => {
                return Err(DbError::parse(format!(
                    "expected file path string, found {}",
                    other.describe()
                )))
            }
        };
        let mut delimiter = ',';
        if self.eat_kw("delimiters") || self.eat_kw("delimiter") {
            match self.bump() {
                SqlTok::Str(s) if s.chars().count() == 1 => {
                    delimiter = s.chars().next().expect("one char");
                }
                other => {
                    return Err(DbError::parse(format!(
                        "expected one-character delimiter string, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(Statement::CopyInto {
            table,
            path,
            delimiter,
        })
    }

    /// Parse a SELECT statement (assumes caller verified the leading token).
    fn select(&mut self) -> Result<SelectStmt, DbError> {
        // Parenthesised select: `(SELECT …)`.
        if self.eat(&SqlTok::LParen) {
            let inner = self.select()?;
            self.expect(&SqlTok::RParen)?;
            return Ok(inner);
        }
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat(&SqlTok::Star) {
                items.push(SelectItem::Star);
            } else if matches!(self.peek(), SqlTok::Ident(s) if is_clause_keyword(s)) {
                return Err(DbError::parse(format!(
                    "expected a select item, found {}",
                    self.peek().describe()
                )));
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    // Bare alias: SELECT a b FROM…  (only if next is an ident
                    // that is not a clause keyword).
                    match self.peek() {
                        SqlTok::Ident(s) if !is_clause_keyword(s) => Some(self.ident()?),
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&SqlTok::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("from") {
            Some(self.from_clause()?)
        } else {
            None
        };
        let predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&SqlTok::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            if group_by.is_empty() {
                return Err(DbError::parse("HAVING requires GROUP BY"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&SqlTok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                SqlTok::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(DbError::parse(format!(
                        "expected non-negative LIMIT, found {}",
                        other.describe()
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            predicate,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    #[allow(clippy::wrong_self_convention)] // parses the SQL FROM clause
    fn from_clause(&mut self) -> Result<FromClause, DbError> {
        let (mut left, mut left_alias) = self.from_source(0)?;
        let mut n = 1usize;
        loop {
            let kind = if self.eat_kw("join") {
                JoinKind::Inner
            } else if self.peek().is_kw("inner") && self.peek2().is_kw("join") {
                self.bump();
                self.bump();
                JoinKind::Inner
            } else if self.peek().is_kw("left") {
                self.bump();
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else {
                break;
            };
            let (right, right_alias) = self.from_source(n)?;
            n += 1;
            self.expect_kw("on")?;
            let on = self.expr()?;
            left = FromClause::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
                kind,
                aliases: (left_alias.clone(), right_alias.clone()),
            };
            // Chained joins qualify against the accumulated left side; keep
            // the most recent alias for error messages only.
            left_alias = format!("_j{n}");
        }
        Ok(left)
    }

    /// One FROM source (table, table function, or derived table) plus its
    /// alias (explicit, or derived from the table name / position).
    #[allow(clippy::wrong_self_convention)] // parses one FROM-clause source
    fn from_source(&mut self, position: usize) -> Result<(FromClause, String), DbError> {
        if self.eat(&SqlTok::LParen) {
            // Derived table: FROM (SELECT …)
            let sub = self.select_after_lparen()?;
            let alias = self.optional_alias().unwrap_or(format!("_t{position}"));
            return Ok((FromClause::Subquery(Box::new(sub)), alias));
        }
        let name = self.dotted_name()?;
        if matches!(self.peek(), SqlTok::LParen) {
            // Table function.
            self.bump();
            let mut args = Vec::new();
            if !matches!(self.peek(), SqlTok::RParen) {
                loop {
                    args.push(self.table_func_arg()?);
                    if !self.eat(&SqlTok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&SqlTok::RParen)?;
            let alias = self.optional_alias().unwrap_or_else(|| name.clone());
            return Ok((FromClause::TableFunction { name, args }, alias));
        }
        let leaf = name.rsplit('.').next().unwrap_or(&name).to_string();
        let alias = self.optional_alias().unwrap_or(leaf);
        Ok((FromClause::Table(name), alias))
    }

    /// `AS alias` or a bare non-keyword identifier.
    fn optional_alias(&mut self) -> Option<String> {
        if self.eat_kw("as") {
            return self.ident().ok();
        }
        if let SqlTok::Ident(s) = self.peek() {
            if !is_clause_keyword(s)
                && !s.eq_ignore_ascii_case("join")
                && !s.eq_ignore_ascii_case("inner")
                && !s.eq_ignore_ascii_case("left")
                && !s.eq_ignore_ascii_case("outer")
            {
                let s = s.clone();
                self.bump();
                return Some(s);
            }
        }
        None
    }

    /// Parse a SELECT when the opening `(` was already consumed.
    fn select_after_lparen(&mut self) -> Result<SelectStmt, DbError> {
        let sub = self.select()?;
        self.expect(&SqlTok::RParen)?;
        Ok(sub)
    }

    fn table_func_arg(&mut self) -> Result<TableFuncArg, DbError> {
        if matches!(self.peek(), SqlTok::LParen) && self.peek2().is_kw("select") {
            self.bump();
            let sub = self.select_after_lparen()?;
            return Ok(TableFuncArg::Query(Box::new(sub)));
        }
        Ok(TableFuncArg::Expr(self.expr()?))
    }

    // ------------------------------------------------------------------
    // Expressions (precedence: OR < AND < NOT < cmp < add < mul < unary)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<SqlExpr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlExpr, DbError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.peek().is_kw("is") {
            self.bump();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] LIKE / IN
        let negated = if self.peek().is_kw("not")
            && (self.peek2().is_kw("like")
                || self.peek2().is_kw("in")
                || self.peek2().is_kw("between"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            // Desugar: x BETWEEN a AND b  ⇒  x >= a AND x <= b.
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            let ge = SqlExpr::Binary {
                left: Box::new(left.clone()),
                op: BinaryOp::Ge,
                right: Box::new(low),
            };
            let le = SqlExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::Le,
                right: Box::new(high),
            };
            let both = SqlExpr::Binary {
                left: Box::new(ge),
                op: BinaryOp::And,
                right: Box::new(le),
            };
            return Ok(if negated {
                SqlExpr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(both),
                }
            } else {
                both
            });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(SqlExpr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect(&SqlTok::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&SqlTok::Comma) {
                    break;
                }
            }
            self.expect(&SqlTok::RParen)?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(DbError::parse("expected LIKE or IN after NOT"));
        }
        let op = match self.peek() {
            SqlTok::Eq => BinaryOp::Eq,
            SqlTok::NotEq => BinaryOp::NotEq,
            SqlTok::Lt => BinaryOp::Lt,
            SqlTok::Le => BinaryOp::Le,
            SqlTok::Gt => BinaryOp::Gt,
            SqlTok::Ge => BinaryOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(SqlExpr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                SqlTok::Plus => BinaryOp::Add,
                SqlTok::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr, DbError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                SqlTok::Star => BinaryOp::Mul,
                SqlTok::Slash => BinaryOp::Div,
                SqlTok::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat(&SqlTok::Minus) {
            let inner = self.unary()?;
            return Ok(SqlExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&SqlTok::Plus) {
            return self.unary();
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<SqlExpr, DbError> {
        match self.bump() {
            SqlTok::Int(v) => Ok(SqlExpr::Literal(SqlValue::Int(v))),
            SqlTok::Float(v) => Ok(SqlExpr::Literal(SqlValue::Double(v))),
            SqlTok::Str(s) => Ok(SqlExpr::Literal(SqlValue::Str(s))),
            SqlTok::LParen => {
                let inner = self.expr()?;
                self.expect(&SqlTok::RParen)?;
                Ok(inner)
            }
            SqlTok::Ident(name) => {
                if name.eq_ignore_ascii_case("null") {
                    return Ok(SqlExpr::Literal(SqlValue::Null));
                }
                if name.eq_ignore_ascii_case("true") {
                    return Ok(SqlExpr::Literal(SqlValue::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(SqlExpr::Literal(SqlValue::Bool(false)));
                }
                if name.eq_ignore_ascii_case("case") {
                    let mut branches = Vec::new();
                    while self.eat_kw("when") {
                        let cond = self.expr()?;
                        self.expect_kw("then")?;
                        let value = self.expr()?;
                        branches.push((cond, value));
                    }
                    if branches.is_empty() {
                        return Err(DbError::parse("CASE requires at least one WHEN branch"));
                    }
                    let else_ = if self.eat_kw("else") {
                        self.expr()?
                    } else {
                        SqlExpr::Literal(SqlValue::Null)
                    };
                    self.expect_kw("end")?;
                    return Ok(SqlExpr::Case {
                        branches,
                        else_: Box::new(else_),
                    });
                }
                if name.eq_ignore_ascii_case("cast") && matches!(self.peek(), SqlTok::LParen) {
                    self.bump();
                    let inner = self.expr()?;
                    self.expect_kw("as")?;
                    let target = self.sql_type()?;
                    self.expect(&SqlTok::RParen)?;
                    return Ok(SqlExpr::Cast {
                        expr: Box::new(inner),
                        target,
                    });
                }
                if matches!(self.peek(), SqlTok::LParen) {
                    // Function call.
                    self.bump();
                    let mut args = Vec::new();
                    if self.eat(&SqlTok::Star) {
                        args.push(SqlExpr::Star);
                    } else if !matches!(self.peek(), SqlTok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&SqlTok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&SqlTok::RParen)?;
                    return Ok(SqlExpr::Call { name, args });
                }
                // Qualified column `t.col` — keep the qualifier; binding
                // resolves qualified and bare names against the source.
                let mut full = name;
                while self.eat(&SqlTok::Dot) {
                    full.push('.');
                    full.push_str(&self.ident()?);
                }
                Ok(SqlExpr::Column(full))
            }
            other => Err(DbError::parse(format!(
                "unexpected {} in expression",
                other.describe()
            ))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "from"
            | "where"
            | "group"
            | "order"
            | "limit"
            | "as"
            | "and"
            | "or"
            | "not"
            | "like"
            | "in"
            | "is"
            | "asc"
            | "desc"
            | "values"
            | "set"
            | "on"
            | "union"
            | "join"
            | "having"
            | "distinct"
            | "between"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse_statement("CREATE TABLE t (i INTEGER, s STRING, d DOUBLE)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2].1, SqlType::Double);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_multiple_rows() {
        let s = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b');").unwrap();
        match s {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert!(columns.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_with_columns() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)").unwrap();
        match s {
            Statement::Insert { columns, .. } => {
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_select_with_all_clauses() {
        let s = parse_statement(
            "SELECT i, i * 2 AS doubled FROM t WHERE i > 1 AND i < 10 GROUP BY i ORDER BY i DESC LIMIT 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert!(sel.predicate.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].1, "DESC");
                assert_eq!(sel.limit, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_function_listing1_style() {
        let sql = "CREATE FUNCTION train_rnforest(data INTEGER, classes INTEGER, n INTEGER) \
RETURNS TABLE(clf BLOB, estimators INTEGER) LANGUAGE PYTHON {\n\
import pickle\n\
from sklearn.ensemble import RandomForestClassifier\n\
clf = RandomForestClassifier(n)\n\
clf.fit(data, classes)\n\
return {'clf': pickle.dumps(clf), 'estimators': n}\n\
};";
        let s = parse_statement(sql).unwrap();
        match s {
            Statement::CreateFunction {
                name,
                params,
                returns,
                language,
                body,
                or_replace,
            } => {
                assert_eq!(name, "train_rnforest");
                assert_eq!(params.len(), 3);
                assert!(matches!(returns, FunctionReturnAst::Table(ref c) if c.len() == 2));
                assert_eq!(language, "PYTHON");
                assert!(body.contains("RandomForestClassifier(n)"));
                assert!(!or_replace);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_or_replace_function() {
        let s = parse_statement(
            "CREATE OR REPLACE FUNCTION f(i INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return i }",
        )
        .unwrap();
        match s {
            Statement::CreateFunction { or_replace, .. } => assert!(or_replace),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_table_function_in_from_listing3_style() {
        let sql = "SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), 10);";
        let s = parse_statement(sql).unwrap();
        match s {
            Statement::Select(sel) => match sel.from.unwrap() {
                FromClause::TableFunction { name, args } => {
                    assert_eq!(name, "train_rnforest");
                    assert_eq!(args.len(), 2);
                    assert!(matches!(args[0], TableFuncArg::Query(_)));
                    assert!(matches!(args[1], TableFuncArg::Expr(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_scalar_udf_call_in_select_list() {
        let s = parse_statement("SELECT mean_deviation(i) FROM numbers").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr, .. } => {
                    assert!(matches!(expr, SqlExpr::Call { name, .. } if name == "mean_deviation"));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_meta_table_query() {
        let s = parse_statement("SELECT name, func FROM sys.functions WHERE language = 'PYTHON'")
            .unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(sel.from, Some(FromClause::Table(ref n)) if n == "sys.functions"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_like_and_in() {
        let s =
            parse_statement("SELECT * FROM t WHERE name LIKE 'mean%' AND i IN (1, 2, 3)").unwrap();
        match s {
            Statement::Select(sel) => {
                let p = sel.predicate.unwrap();
                assert!(matches!(
                    p,
                    SqlExpr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_not_like() {
        let s = parse_statement("SELECT * FROM t WHERE name NOT LIKE 'x%'").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.predicate.unwrap(),
                    SqlExpr::Like { negated: true, .. }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_is_null() {
        let s = parse_statement("SELECT * FROM t WHERE x IS NOT NULL").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.predicate.unwrap(),
                    SqlExpr::IsNull { negated: true, .. }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_count_star_and_aggregates() {
        let s = parse_statement("SELECT count(*), sum(i), avg(i) FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 3);
                match &sel.items[0] {
                    SelectItem::Expr {
                        expr: SqlExpr::Call { args, .. },
                        ..
                    } => {
                        assert_eq!(args[0], SqlExpr::Star);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_copy_into() {
        let s = parse_statement("COPY INTO numbers FROM 'data/file.csv' DELIMITERS ';'").unwrap();
        match s {
            Statement::CopyInto {
                table,
                path,
                delimiter,
            } => {
                assert_eq!(table, "numbers");
                assert_eq!(path, "data/file.csv");
                assert_eq!(delimiter, ';');
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_delete_and_update() {
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE i = 1").unwrap(),
            Statement::Delete { .. }
        ));
        let s = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c > 0").unwrap();
        match s {
            Statement::Update { assignments, .. } => assert_eq!(assignments.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_subquery_in_from() {
        let s = parse_statement("SELECT x FROM (SELECT i AS x FROM t)").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(sel.from, Some(FromClause::Subquery(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("FLARB THE WUG").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("CREATE TABLE t (x NOTATYPE)").is_err());
        assert!(parse_statement("SELECT 1 extra garbage beyond(").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT 1; SELECT 2").is_err());
    }

    #[test]
    fn qualified_column_keeps_qualifier() {
        let s = parse_statement("SELECT t.i FROM t").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr, .. } => {
                    assert_eq!(*expr, SqlExpr::Column("t.i".to_string()));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_joins() {
        let s = parse_statement(
            "SELECT o.id, c.name FROM orders o JOIN customers AS c ON o.cust = c.id",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => match sel.from.unwrap() {
                FromClause::Join { kind, aliases, .. } => {
                    assert_eq!(kind, JoinKind::Inner);
                    assert_eq!(aliases, ("o".to_string(), "c".to_string()));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("SELECT * FROM a LEFT JOIN b ON a.x = b.x").unwrap(),
            Statement::Select(SelectStmt {
                from: Some(FromClause::Join {
                    kind: JoinKind::Left,
                    ..
                }),
                ..
            })
        ));
        assert!(matches!(
            parse_statement("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x").unwrap(),
            Statement::Select(SelectStmt {
                from: Some(FromClause::Join {
                    kind: JoinKind::Left,
                    ..
                }),
                ..
            })
        ));
        // Chained joins nest left-deep.
        let s = parse_statement("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y").unwrap();
        match s {
            Statement::Select(sel) => match sel.from.unwrap() {
                FromClause::Join { left, .. } => assert!(matches!(*left, FromClause::Join { .. })),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_between_and_cast() {
        let s = parse_statement("SELECT * FROM t WHERE i BETWEEN 2 AND 5").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.predicate.unwrap(),
                    SqlExpr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        let s = parse_statement("SELECT * FROM t WHERE i NOT BETWEEN 2 AND 5").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(sel.predicate.unwrap(), SqlExpr::Unary { .. }));
            }
            other => panic!("{other:?}"),
        }
        let s = parse_statement("SELECT CAST(i AS DOUBLE) FROM t").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr, .. } => {
                    assert!(matches!(
                        expr,
                        SqlExpr::Cast {
                            target: SqlType::Double,
                            ..
                        }
                    ));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_distinct_and_having() {
        let s = parse_statement("SELECT DISTINCT g FROM t").unwrap();
        assert!(matches!(
            s,
            Statement::Select(SelectStmt { distinct: true, .. })
        ));
        let s = parse_statement("SELECT g, sum(v) FROM t GROUP BY g HAVING sum(v) > 10").unwrap();
        match s {
            Statement::Select(sel) => assert!(sel.having.is_some()),
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("SELECT g FROM t HAVING g > 1").is_err());
    }

    #[test]
    fn parses_explain_and_explain_analyze() {
        let s = parse_statement("EXPLAIN SELECT 1").unwrap();
        assert!(matches!(s, Statement::Explain(inner) if matches!(*inner, Statement::Select(_))));
        let s = parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap();
        assert!(matches!(
            s,
            Statement::ExplainAnalyze(inner) if matches!(*inner, Statement::Select(_))
        ));
    }
}
