//! Database error type.

use std::fmt;

/// Category of a database error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// SQL text could not be parsed.
    Parse,
    /// Unknown table/column/function, duplicate creation, …
    Catalog,
    /// Type mismatch in expressions or inserts.
    Type,
    /// Runtime execution failure (division by zero, bad cast, …).
    Exec,
    /// A Python UDF raised; the message carries the rendered traceback.
    Udf,
    /// CSV/data loading problem.
    Load,
    /// Persistence failure: WAL append, snapshot IO, or corrupt storage
    /// files that torn-tail recovery cannot repair.
    Storage,
}

impl ErrorCode {
    pub fn name(&self) -> &'static str {
        match self {
            ErrorCode::Parse => "ParseError",
            ErrorCode::Catalog => "CatalogError",
            ErrorCode::Type => "TypeError",
            ErrorCode::Exec => "ExecError",
            ErrorCode::Udf => "UdfError",
            ErrorCode::Load => "LoadError",
            ErrorCode::Storage => "StorageError",
        }
    }
}

/// An error raised by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DbError {
    pub code: ErrorCode,
    pub message: String,
    /// For UDF errors: the Python-style traceback, line numbers relative to
    /// the stored function body (the devUDF plugin maps these onto the
    /// project files it generated).
    pub traceback: Option<String>,
}

impl DbError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        DbError {
            code,
            message: message.into(),
            traceback: None,
        }
    }

    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Parse, message)
    }

    pub fn catalog(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Catalog, message)
    }

    pub fn type_err(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Type, message)
    }

    pub fn exec(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Exec, message)
    }

    pub fn udf(err: &pylite::PyError) -> Self {
        DbError {
            code: ErrorCode::Udf,
            message: err.to_string(),
            traceback: Some(err.render()),
        }
    }

    pub fn load(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Load, message)
    }

    pub fn storage(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Storage, message)
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code() {
        let e = DbError::parse("unexpected token");
        assert_eq!(e.to_string(), "ParseError: unexpected token");
    }

    #[test]
    fn udf_error_carries_traceback() {
        let mut py = pylite::PyError::new(pylite::ErrorKind::ZeroDivision, "division by zero");
        py.push_frame("mean_deviation", 6);
        let e = DbError::udf(&py);
        assert_eq!(e.code, ErrorCode::Udf);
        assert!(e.traceback.unwrap().contains("line 6"));
    }
}
