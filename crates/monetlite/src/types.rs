//! SQL types, scalar values and typed columns.

use std::fmt;

use crate::error::DbError;

/// SQL column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    Integer,
    Double,
    String,
    Boolean,
    Blob,
}

impl SqlType {
    /// Parse a type name as written in DDL (several aliases per type, like
    /// real SQL dialects).
    pub fn parse(name: &str) -> Option<SqlType> {
        Some(match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => SqlType::Integer,
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => SqlType::Double,
            "STRING" | "TEXT" | "VARCHAR" | "CHAR" | "CLOB" => SqlType::String,
            "BOOLEAN" | "BOOL" => SqlType::Boolean,
            "BLOB" | "BYTEA" | "BINARY" => SqlType::Blob,
            _ => return None,
        })
    }

    /// Canonical SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            SqlType::Integer => "INTEGER",
            SqlType::Double => "DOUBLE",
            SqlType::String => "STRING",
            SqlType::Boolean => "BOOLEAN",
            SqlType::Blob => "BLOB",
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar SQL value (nullable).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    Null,
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
    Blob(Vec<u8>),
}

impl SqlValue {
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// The most natural type of this value (`None` for NULL).
    pub fn sql_type(&self) -> Option<SqlType> {
        Some(match self {
            SqlValue::Null => return None,
            SqlValue::Int(_) => SqlType::Integer,
            SqlValue::Double(_) => SqlType::Double,
            SqlValue::Str(_) => SqlType::String,
            SqlValue::Bool(_) => SqlType::Boolean,
            SqlValue::Blob(_) => SqlType::Blob,
        })
    }

    /// Coerce to `target`, following permissive SQL casting rules
    /// (int↔double, bool→int, anything→string).
    pub fn coerce(&self, target: SqlType) -> Result<SqlValue, DbError> {
        if self.is_null() {
            return Ok(SqlValue::Null);
        }
        Ok(match (self, target) {
            (SqlValue::Int(i), SqlType::Integer) => SqlValue::Int(*i),
            (SqlValue::Int(i), SqlType::Double) => SqlValue::Double(*i as f64),
            (SqlValue::Int(i), SqlType::Boolean) => SqlValue::Bool(*i != 0),
            (SqlValue::Double(d), SqlType::Double) => SqlValue::Double(*d),
            (SqlValue::Double(d), SqlType::Integer) => SqlValue::Int(d.trunc() as i64),
            (SqlValue::Bool(b), SqlType::Boolean) => SqlValue::Bool(*b),
            (SqlValue::Bool(b), SqlType::Integer) => SqlValue::Int(*b as i64),
            (SqlValue::Bool(b), SqlType::Double) => SqlValue::Double(*b as i64 as f64),
            (SqlValue::Str(s), SqlType::String) => SqlValue::Str(s.clone()),
            (SqlValue::Str(s), SqlType::Integer) => SqlValue::Int(
                s.trim()
                    .parse()
                    .map_err(|_| DbError::type_err(format!("cannot cast '{s}' to INTEGER")))?,
            ),
            (SqlValue::Str(s), SqlType::Double) => SqlValue::Double(
                s.trim()
                    .parse()
                    .map_err(|_| DbError::type_err(format!("cannot cast '{s}' to DOUBLE")))?,
            ),
            (SqlValue::Blob(b), SqlType::Blob) => SqlValue::Blob(b.clone()),
            (v, SqlType::String) => SqlValue::Str(v.render()),
            (v, t) => {
                return Err(DbError::type_err(format!(
                    "cannot cast {} to {t}",
                    v.sql_type().map(|t| t.name()).unwrap_or("NULL")
                )))
            }
        })
    }

    /// Human-readable rendering (used by the CLI table printer).
    pub fn render(&self) -> String {
        match self {
            SqlValue::Null => "NULL".to_string(),
            SqlValue::Int(i) => i.to_string(),
            SqlValue::Double(d) => {
                if d.fract() == 0.0 && d.is_finite() && d.abs() < 1e15 {
                    format!("{d:.1}")
                } else {
                    format!("{d}")
                }
            }
            SqlValue::Str(s) => s.clone(),
            SqlValue::Bool(b) => if *b { "true" } else { "false" }.to_string(),
            SqlValue::Blob(b) => format!("<blob {} bytes>", b.len()),
        }
    }
}

/// Physical column storage: one typed vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
    Blob(Vec<Vec<u8>>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Blob(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn sql_type(&self) -> SqlType {
        match self {
            ColumnData::Int(_) => SqlType::Integer,
            ColumnData::Double(_) => SqlType::Double,
            ColumnData::Str(_) => SqlType::String,
            ColumnData::Bool(_) => SqlType::Boolean,
            ColumnData::Blob(_) => SqlType::Blob,
        }
    }

    /// Empty storage of the given type.
    pub fn empty(t: SqlType) -> ColumnData {
        match t {
            SqlType::Integer => ColumnData::Int(Vec::new()),
            SqlType::Double => ColumnData::Double(Vec::new()),
            SqlType::String => ColumnData::Str(Vec::new()),
            SqlType::Boolean => ColumnData::Bool(Vec::new()),
            SqlType::Blob => ColumnData::Blob(Vec::new()),
        }
    }
}

/// A named, nullable column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub data: ColumnData,
    /// `nulls[i]` is true when row `i` is NULL. Empty vec = no nulls.
    pub nulls: Vec<bool>,
}

impl Column {
    /// Column with no nulls.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
            nulls: Vec::new(),
        }
    }

    /// Empty column of a declared type.
    pub fn empty(name: impl Into<String>, t: SqlType) -> Self {
        Column::new(name, ColumnData::empty(t))
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn sql_type(&self) -> SqlType {
        self.data.sql_type()
    }

    pub fn is_null(&self, row: usize) -> bool {
        self.nulls.get(row).copied().unwrap_or(false)
    }

    pub fn has_nulls(&self) -> bool {
        self.nulls.iter().any(|n| *n)
    }

    /// Fetch a scalar value (NULL-aware). Caller bounds-checks.
    pub fn get(&self, row: usize) -> SqlValue {
        if self.is_null(row) {
            return SqlValue::Null;
        }
        match &self.data {
            ColumnData::Int(v) => SqlValue::Int(v[row]),
            ColumnData::Double(v) => SqlValue::Double(v[row]),
            ColumnData::Str(v) => SqlValue::Str(v[row].clone()),
            ColumnData::Bool(v) => SqlValue::Bool(v[row]),
            ColumnData::Blob(v) => SqlValue::Blob(v[row].clone()),
        }
    }

    /// Append a value, coercing to the column's type; NULL extends the mask.
    pub fn push(&mut self, value: &SqlValue) -> Result<(), DbError> {
        let len_before = self.len();
        if value.is_null() {
            // Materialize the mask lazily.
            if self.nulls.len() < len_before {
                self.nulls.resize(len_before, false);
            }
            self.nulls.push(true);
            match &mut self.data {
                ColumnData::Int(v) => v.push(0),
                ColumnData::Double(v) => v.push(0.0),
                ColumnData::Str(v) => v.push(String::new()),
                ColumnData::Bool(v) => v.push(false),
                ColumnData::Blob(v) => v.push(Vec::new()),
            }
            return Ok(());
        }
        let coerced = value.coerce(self.sql_type())?;
        if !self.nulls.is_empty() {
            if self.nulls.len() < len_before {
                self.nulls.resize(len_before, false);
            }
            self.nulls.push(false);
        }
        match (&mut self.data, coerced) {
            (ColumnData::Int(v), SqlValue::Int(x)) => v.push(x),
            (ColumnData::Double(v), SqlValue::Double(x)) => v.push(x),
            (ColumnData::Str(v), SqlValue::Str(x)) => v.push(x),
            (ColumnData::Bool(v), SqlValue::Bool(x)) => v.push(x),
            (ColumnData::Blob(v), SqlValue::Blob(x)) => v.push(x),
            _ => unreachable!("coerce() returned a matching variant"),
        }
        Ok(())
    }

    /// Build a column from scalar values, inferring the type from the first
    /// non-null value (NULL-only columns default to INTEGER).
    pub fn from_values(name: impl Into<String>, values: &[SqlValue]) -> Result<Column, DbError> {
        let inferred = values
            .iter()
            .find_map(|v| v.sql_type())
            .unwrap_or(SqlType::Integer);
        // Promote to DOUBLE if any value is a double among ints.
        let target = if inferred == SqlType::Integer
            && values.iter().any(|v| matches!(v, SqlValue::Double(_)))
        {
            SqlType::Double
        } else {
            inferred
        };
        let mut col = Column::empty(name, target);
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Keep only rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        fn pick<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|(_, m)| **m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(pick(v, mask)),
            ColumnData::Double(v) => ColumnData::Double(pick(v, mask)),
            ColumnData::Str(v) => ColumnData::Str(pick(v, mask)),
            ColumnData::Bool(v) => ColumnData::Bool(pick(v, mask)),
            ColumnData::Blob(v) => ColumnData::Blob(pick(v, mask)),
        };
        let nulls = if self.nulls.is_empty() {
            Vec::new()
        } else {
            pick(&self.nulls, mask)
        };
        Column {
            name: self.name.clone(),
            data,
            nulls,
        }
    }

    /// Reorder rows by `perm` (row `i` of the result is old row `perm[i]`).
    pub fn permute(&self, perm: &[usize]) -> Column {
        fn pick<T: Clone>(v: &[T], perm: &[usize]) -> Vec<T> {
            perm.iter().map(|&i| v[i].clone()).collect()
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(pick(v, perm)),
            ColumnData::Double(v) => ColumnData::Double(pick(v, perm)),
            ColumnData::Str(v) => ColumnData::Str(pick(v, perm)),
            ColumnData::Bool(v) => ColumnData::Bool(pick(v, perm)),
            ColumnData::Blob(v) => ColumnData::Blob(pick(v, perm)),
        };
        let nulls = if self.nulls.is_empty() {
            Vec::new()
        } else {
            pick(&self.nulls, perm)
        };
        Column {
            name: self.name.clone(),
            data,
            nulls,
        }
    }

    /// First `n` rows.
    pub fn take(&self, n: usize) -> Column {
        let n = n.min(self.len());
        let perm: Vec<usize> = (0..n).collect();
        self.permute(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing_aliases() {
        assert_eq!(SqlType::parse("int"), Some(SqlType::Integer));
        assert_eq!(SqlType::parse("VARCHAR"), Some(SqlType::String));
        assert_eq!(SqlType::parse("real"), Some(SqlType::Double));
        assert_eq!(SqlType::parse("bool"), Some(SqlType::Boolean));
        assert_eq!(SqlType::parse("bytea"), Some(SqlType::Blob));
        assert_eq!(SqlType::parse("gibberish"), None);
    }

    #[test]
    fn coercions() {
        assert_eq!(
            SqlValue::Int(3).coerce(SqlType::Double).unwrap(),
            SqlValue::Double(3.0)
        );
        assert_eq!(
            SqlValue::Str("42".into()).coerce(SqlType::Integer).unwrap(),
            SqlValue::Int(42)
        );
        assert_eq!(
            SqlValue::Bool(true).coerce(SqlType::Integer).unwrap(),
            SqlValue::Int(1)
        );
        assert_eq!(
            SqlValue::Int(7).coerce(SqlType::String).unwrap(),
            SqlValue::Str("7".into())
        );
        assert!(SqlValue::Str("abc".into())
            .coerce(SqlType::Integer)
            .is_err());
        assert!(SqlValue::Blob(vec![1]).coerce(SqlType::Integer).is_err());
        assert_eq!(
            SqlValue::Null.coerce(SqlType::Integer).unwrap(),
            SqlValue::Null
        );
    }

    #[test]
    fn column_push_and_get() {
        let mut c = Column::empty("x", SqlType::Integer);
        c.push(&SqlValue::Int(1)).unwrap();
        c.push(&SqlValue::Null).unwrap();
        c.push(&SqlValue::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), SqlValue::Int(1));
        assert_eq!(c.get(1), SqlValue::Null);
        assert_eq!(c.get(2), SqlValue::Int(3));
        assert!(c.has_nulls());
    }

    #[test]
    fn push_coerces() {
        let mut c = Column::empty("d", SqlType::Double);
        c.push(&SqlValue::Int(2)).unwrap();
        assert_eq!(c.get(0), SqlValue::Double(2.0));
        let mut c = Column::empty("i", SqlType::Integer);
        assert!(c.push(&SqlValue::Str("nope".into())).is_err());
    }

    #[test]
    fn from_values_promotes_int_to_double() {
        let c = Column::from_values("v", &[SqlValue::Int(1), SqlValue::Double(2.5)]).unwrap();
        assert_eq!(c.sql_type(), SqlType::Double);
        assert_eq!(c.get(0), SqlValue::Double(1.0));
    }

    #[test]
    fn from_values_null_handling() {
        let c = Column::from_values("v", &[SqlValue::Null, SqlValue::Int(2)]).unwrap();
        assert!(c.is_null(0));
        assert_eq!(c.get(1), SqlValue::Int(2));
        let all_null = Column::from_values("v", &[SqlValue::Null]).unwrap();
        assert_eq!(all_null.sql_type(), SqlType::Integer);
        assert!(all_null.is_null(0));
    }

    #[test]
    fn filter_and_permute_preserve_nulls() {
        let c = Column::from_values(
            "v",
            &[
                SqlValue::Int(0),
                SqlValue::Null,
                SqlValue::Int(2),
                SqlValue::Int(3),
            ],
        )
        .unwrap();
        let f = c.filter(&[false, true, true, false]);
        assert_eq!(f.len(), 2);
        assert!(f.is_null(0));
        assert_eq!(f.get(1), SqlValue::Int(2));
        let p = c.permute(&[3, 0]);
        assert_eq!(p.get(0), SqlValue::Int(3));
        assert_eq!(p.get(1), SqlValue::Int(0));
    }

    #[test]
    fn render_values() {
        assert_eq!(SqlValue::Double(2.0).render(), "2.0");
        assert_eq!(SqlValue::Double(2.5).render(), "2.5");
        assert_eq!(SqlValue::Null.render(), "NULL");
        assert_eq!(SqlValue::Bool(true).render(), "true");
        assert_eq!(SqlValue::Blob(vec![1, 2]).render(), "<blob 2 bytes>");
    }
}
