//! Tables: named collections of equal-length columns.

use std::sync::Arc;

use crate::error::DbError;
use crate::types::{Column, SqlType, SqlValue};

/// A materialized table (also used for query results).
///
/// Column storage is behind an `Arc` so cloning a table — and therefore
/// snapshotting a whole catalog — is O(1) per table, no data copy. Mutation
/// goes through [`Table::columns_mut`], which copies the column vector only
/// when a published snapshot still holds the previous version (copy-on-write).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    pub name: String,
    pub columns: Arc<Vec<Column>>,
}

impl Table {
    /// Empty table with a declared schema.
    pub fn new(name: impl Into<String>, schema: &[(String, SqlType)]) -> Table {
        Table {
            name: name.into(),
            columns: Arc::new(
                schema
                    .iter()
                    .map(|(n, t)| Column::empty(n.clone(), *t))
                    .collect(),
            ),
        }
    }

    /// Build a result table directly from columns, validating lengths.
    pub fn from_columns(name: impl Into<String>, columns: Vec<Column>) -> Result<Table, DbError> {
        if let Some(first) = columns.first() {
            let n = first.len();
            if let Some(bad) = columns.iter().find(|c| c.len() != n) {
                return Err(DbError::exec(format!(
                    "column '{}' has {} rows, expected {}",
                    bad.name,
                    bad.len(),
                    n
                )));
            }
        }
        Ok(Table {
            name: name.into(),
            columns: Arc::new(columns),
        })
    }

    /// Mutable access to the column vector (copy-on-write: clones the storage
    /// only if a snapshot still shares it).
    pub fn columns_mut(&mut self) -> &mut Vec<Column> {
        Arc::make_mut(&mut self.columns)
    }

    /// Take ownership of the column vector, cloning only if shared.
    pub fn into_columns(self) -> Vec<Column> {
        Arc::try_unwrap(self.columns).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Replace the column vector wholesale (bulk rewrites like UPDATE).
    pub fn set_columns(&mut self, columns: Vec<Column>) {
        self.columns = Arc::new(columns);
    }

    /// Number of rows (0 for a table with no columns).
    pub fn row_count(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Column by (case-insensitive) name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Append one row of values (positionally).
    pub fn push_row(&mut self, row: &[SqlValue]) -> Result<(), DbError> {
        if row.len() != self.columns.len() {
            return Err(DbError::exec(format!(
                "row has {} values, table '{}' has {} columns",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        for (col, v) in self.columns_mut().iter_mut().zip(row) {
            col.push(v)?;
        }
        Ok(())
    }

    /// Fetch one row as scalar values.
    pub fn row(&self, idx: usize) -> Vec<SqlValue> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// All rows (for tests and small results).
    pub fn rows(&self) -> Vec<Vec<SqlValue>> {
        (0..self.row_count()).map(|i| self.row(i)).collect()
    }

    /// Keep rows where mask is true.
    pub fn filter(&self, mask: &[bool]) -> Table {
        Table {
            name: self.name.clone(),
            columns: Arc::new(self.columns.iter().map(|c| c.filter(mask)).collect()),
        }
    }

    /// Reorder rows.
    pub fn permute(&self, perm: &[usize]) -> Table {
        Table {
            name: self.name.clone(),
            columns: Arc::new(self.columns.iter().map(|c| c.permute(perm)).collect()),
        }
    }

    /// First `n` rows.
    pub fn take(&self, n: usize) -> Table {
        Table {
            name: self.name.clone(),
            columns: Arc::new(self.columns.iter().map(|c| c.take(n)).collect()),
        }
    }

    /// Schema as (name, type) pairs.
    pub fn schema(&self) -> Vec<(String, SqlType)> {
        self.columns
            .iter()
            .map(|c| (c.name.clone(), c.sql_type()))
            .collect()
    }

    /// Render as an ASCII grid (MonetDB-client style), used by the CLI and
    /// the figure regeneration binaries.
    pub fn render_ascii(&self) -> String {
        let headers: Vec<String> = self.columns.iter().map(|c| c.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rows: Vec<Vec<String>> = (0..self.row_count())
            .map(|i| {
                self.row(i)
                    .iter()
                    .enumerate()
                    .map(|(c, v)| {
                        let s = v.render();
                        widths[c] = widths[c].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let sep = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let mut out = sep(&widths);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:w$} |", w = w));
        }
        out.push('\n');
        out.push_str(&sep(&widths).replace('-', "="));
        for row in &rows {
            out.push('|');
            for (v, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {v:w$} |", w = w));
            }
            out.push('\n');
        }
        out.push_str(&sep(&widths));
        format!("{out}{} row(s)\n", self.row_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ColumnData;

    fn sample() -> Table {
        let mut t = Table::new(
            "t",
            &[
                ("i".to_string(), SqlType::Integer),
                ("s".to_string(), SqlType::String),
            ],
        );
        t.push_row(&[SqlValue::Int(1), SqlValue::Str("one".into())])
            .unwrap();
        t.push_row(&[SqlValue::Int(2), SqlValue::Str("two".into())])
            .unwrap();
        t.push_row(&[SqlValue::Int(3), SqlValue::Str("three".into())])
            .unwrap();
        t
    }

    #[test]
    fn push_and_fetch_rows() {
        let t = sample();
        assert_eq!(t.row_count(), 3);
        assert_eq!(
            t.row(1),
            vec![SqlValue::Int(2), SqlValue::Str("two".into())]
        );
    }

    #[test]
    fn row_arity_mismatch_errors() {
        let mut t = sample();
        assert!(t.push_row(&[SqlValue::Int(4)]).is_err());
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = sample();
        assert!(t.column_by_name("I").is_some());
        assert_eq!(t.column_index("S"), Some(1));
        assert!(t.column_by_name("missing").is_none());
    }

    #[test]
    fn from_columns_validates_lengths() {
        let ok = Table::from_columns(
            "r",
            vec![
                Column::new("a", ColumnData::Int(vec![1, 2])),
                Column::new("b", ColumnData::Int(vec![3, 4])),
            ],
        );
        assert!(ok.is_ok());
        let bad = Table::from_columns(
            "r",
            vec![
                Column::new("a", ColumnData::Int(vec![1, 2])),
                Column::new("b", ColumnData::Int(vec![3])),
            ],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn filter_take_permute() {
        let t = sample();
        let f = t.filter(&[true, false, true]);
        assert_eq!(f.row_count(), 2);
        assert_eq!(f.row(1)[0], SqlValue::Int(3));
        let p = t.permute(&[2, 1, 0]);
        assert_eq!(p.row(0)[0], SqlValue::Int(3));
        assert_eq!(t.take(2).row_count(), 2);
        assert_eq!(t.take(99).row_count(), 3);
    }

    #[test]
    fn ascii_rendering_matches_listing1_style() {
        let t = sample();
        let s = t.render_ascii();
        assert!(s.contains("| i | s"), "{s}");
        assert!(s.contains("| 2 | two"), "{s}");
        assert!(s.contains("3 row(s)"), "{s}");
        assert!(s.starts_with("+---"), "{s}");
    }
}
