//! Durable storage for [`Engine`](crate::engine::Engine): a write-ahead log plus columnar
//! snapshots, the MonetDBLite half of the embedded mode (DESIGN §17).
//!
//! An engine opened on a directory ([`Engine::open`](crate::engine::Engine::open)) records every
//! catalog-mutating top-level statement into an append-only WAL and
//! periodically folds the log into a columnar snapshot of the whole
//! catalog. Reopening the directory loads the snapshot and replays the
//! WAL tail, so tables, rows, and stored UDFs survive a process restart —
//! including a crash mid-append, which torn-tail recovery truncates back
//! to the last complete record.
//!
//! # File formats
//!
//! Both files live directly in the storage directory and share an 8-byte
//! header: a 4-byte magic (`DUWL` for `wal.log`, `DUSN` for
//! `snapshot.db`), a format-version byte (currently 1), and three
//! reserved zero bytes.
//!
//! **WAL records** (`wal.log`) are length-prefixed frames:
//!
//! ```text
//! u32 LE  compressed length N
//! N bytes LZ-compressed payload          (codecs::lz)
//! u32 LE  FNV-1a-32 of the compressed bytes
//! payload = varint seq | varint sql_len | sql bytes (UTF-8)
//! ```
//!
//! Sequence numbers start at 1 and never reset — a checkpoint truncates
//! the log but the next record continues the old numbering, which is what
//! makes recovery idempotent (see below).
//!
//! **Snapshots** (`snapshot.db`) are a single frame of the same shape
//! whose payload serializes the catalog: the sequence number it covers,
//! the two epoch counters, the per-table epochs, then every table
//! column-by-column (typed vectors, zigzag varints for integers, bit
//! patterns for doubles, a null mask when present) and every stored
//! function definition.
//!
//! # Replay rules
//!
//! 1. A leftover `snapshot.tmp` is deleted: it is a checkpoint that never
//!    reached its atomic rename, so `snapshot.db` (or an empty catalog)
//!    is still the authoritative base.
//! 2. `snapshot.db`, when present, must decode cleanly — it was fsynced
//!    and renamed into place atomically, so corruption here is a real
//!    fault and fails loudly with a `StorageError` rather than guessing.
//! 3. The WAL is scanned front to back. The first malformed record —
//!    short length prefix, short body, checksum mismatch, undecodable
//!    payload — is treated as a torn tail: the file is truncated back to
//!    the last good record and the scan stops. A torn tail can only ever
//!    drop whole trailing statements, never apply half of one.
//! 4. Records with `seq <=` the snapshot's covered sequence are skipped
//!    (they are already folded into the snapshot; this happens when a
//!    crash lands between the checkpoint's rename and its log
//!    truncation). The rest are re-executed in order.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy::Always`] (the default) syncs the WAL after every append
//! and the snapshot before its rename — a crash loses at most the
//! statement that was being written. [`FsyncPolicy::Never`] leaves
//! flushing to the OS: much faster, still torn-tail safe on process
//! crash, but a power failure may lose recent statements.
//!
//! # Open-write-reopen round-trip
//!
//! ```
//! use monetlite::{Engine, FsyncPolicy, StorageOptions};
//!
//! let dir = std::env::temp_dir().join(format!("monetlite-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let opts = StorageOptions { fsync: FsyncPolicy::Never, ..StorageOptions::default() };
//! {
//!     let db = Engine::open_with(&dir, opts).unwrap();
//!     db.execute("CREATE TABLE t (i INTEGER)").unwrap();
//!     db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
//!     db.execute(
//!         "CREATE FUNCTION double(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
//!     )
//!     .unwrap();
//! } // process "restarts" here
//! let db = Engine::open_with(&dir, opts).unwrap();
//! let t = db.execute("SELECT double(i) FROM t").unwrap().into_table().unwrap();
//! assert_eq!(t.row_count(), 3);
//! assert_eq!(db.function_names(), vec!["double".to_string()]);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::catalog::{Catalog, FunctionDef, FunctionReturn};
use crate::error::DbError;
use crate::table::Table;
use crate::types::{Column, ColumnData, SqlType};

/// When the WAL is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every WAL append and before every snapshot rename
    /// (default): a crash loses at most the record being written.
    #[default]
    Always,
    /// Leave flushing to the OS page cache: faster, torn-tail safe
    /// against process crashes, but a power failure may lose recent
    /// statements.
    Never,
}

impl FsyncPolicy {
    /// The allowed spellings, for error messages.
    pub const ALLOWED: &'static str = "'always' or 'never'";

    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Tuning knobs of the persistence layer (`Settings.storage` mirrors
/// these in the IDE's settings file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageOptions {
    /// WAL durability (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Fold the WAL into a snapshot after this many appended records;
    /// `0` disables automatic checkpoints (explicit
    /// [`Engine::checkpoint`](crate::engine::Engine::checkpoint) still works).
    pub snapshot_every: u64,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            fsync: FsyncPolicy::Always,
            snapshot_every: 1024,
        }
    }
}

/// A cheap, copyable view of the persistence state — what `devudf open`
/// prints and what tests assert on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageStats {
    /// The storage directory.
    pub dir: PathBuf,
    /// Sequence number of the last appended WAL record (0 = none ever).
    pub last_seq: u64,
    /// Sequence number covered by `snapshot.db` (0 = no snapshot).
    pub base_seq: u64,
    /// WAL records appended since the last checkpoint.
    pub wal_records: u64,
    /// Current size of `wal.log` in bytes (header included).
    pub wal_bytes: u64,
}

/// What [`Storage::open`] recovered from disk, for the engine to apply
/// before it attaches the storage handle.
pub(crate) struct Recovery {
    /// The snapshot's catalog, if a snapshot existed.
    pub catalog: Option<Catalog>,
    /// WAL statements past the snapshot, in append order.
    pub wal: Vec<String>,
}

const WAL_MAGIC: &[u8; 4] = b"DUWL";
const SNAPSHOT_MAGIC: &[u8; 4] = b"DUSN";
const FORMAT_VERSION: u8 = 1;
const HEADER_LEN: usize = 8;
/// Upper bound on a single compressed frame; anything larger in a length
/// prefix is corruption, not data.
const MAX_FRAME_LEN: u32 = 1 << 30;

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.db";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// The open WAL + snapshot pair behind a persistent [`Engine`](crate::engine::Engine).
#[derive(Debug)]
pub(crate) struct Storage {
    dir: PathBuf,
    wal: File,
    options: StorageOptions,
    next_seq: u64,
    base_seq: u64,
    records_since_checkpoint: u64,
    wal_bytes: u64,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> DbError {
    DbError::storage(format!("{what} {}: {e}", path.display()))
}

fn header(magic: &[u8; 4]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(magic);
    h[4] = FORMAT_VERSION;
    h
}

/// Frame `payload` as `u32 clen | lz(payload) | u32 fnv1a_32(compressed)`.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let compressed = codecs::lz::compress(payload);
    let mut frame = Vec::with_capacity(compressed.len() + 8);
    frame.extend_from_slice(&(compressed.len() as u32).to_le_bytes());
    frame.extend_from_slice(&compressed);
    frame.extend_from_slice(&codecs::fnv1a_32(&compressed).to_le_bytes());
    frame
}

/// Decode one frame starting at `buf[pos..]`. Returns the decompressed
/// payload and the frame's total length, or `None` for anything
/// malformed — which for the WAL means "torn tail from here on".
fn decode_frame(buf: &[u8], pos: usize) -> Option<(Vec<u8>, usize)> {
    let len_bytes = buf.get(pos..pos + 4)?;
    let clen = u32::from_le_bytes(len_bytes.try_into().ok()?);
    if clen > MAX_FRAME_LEN {
        return None;
    }
    let clen = clen as usize;
    let body = buf.get(pos + 4..pos + 4 + clen)?;
    let sum_bytes = buf.get(pos + 4 + clen..pos + 8 + clen)?;
    let sum = u32::from_le_bytes(sum_bytes.try_into().ok()?);
    if codecs::fnv1a_32(body) != sum {
        return None;
    }
    let payload = codecs::lz::decompress(body).ok()?;
    Some((payload, 8 + clen))
}

// ---------------------------------------------------------------------
// Payload reader/writer helpers
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u64(&mut self) -> Result<u64, DbError> {
        let (v, used) = codecs::varint::read_u64(&self.buf[self.pos..])
            .map_err(|e| DbError::storage(format!("bad varint in snapshot: {e:?}")))?;
        self.pos += used;
        Ok(v)
    }

    fn i64(&mut self) -> Result<i64, DbError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn byte(&mut self) -> Result<u8, DbError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| DbError::storage("snapshot payload truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| DbError::storage("snapshot payload truncated"))?;
        self.pos += n;
        Ok(slice)
    }

    fn blob(&mut self) -> Result<Vec<u8>, DbError> {
        let n = self.u64()? as usize;
        Ok(self.bytes(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, DbError> {
        String::from_utf8(self.blob()?)
            .map_err(|_| DbError::storage("snapshot string is not UTF-8"))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn write_zigzag(out: &mut Vec<u8>, v: i64) {
    codecs::varint::write_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    codecs::varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn type_tag(t: SqlType) -> u8 {
    match t {
        SqlType::Integer => 0,
        SqlType::Double => 1,
        SqlType::String => 2,
        SqlType::Boolean => 3,
        SqlType::Blob => 4,
    }
}

fn tag_type(tag: u8) -> Result<SqlType, DbError> {
    Ok(match tag {
        0 => SqlType::Integer,
        1 => SqlType::Double,
        2 => SqlType::String,
        3 => SqlType::Boolean,
        4 => SqlType::Blob,
        other => return Err(DbError::storage(format!("unknown column type tag {other}"))),
    })
}

// ---------------------------------------------------------------------
// Catalog snapshot codec
// ---------------------------------------------------------------------

fn encode_column(out: &mut Vec<u8>, col: &Column) {
    write_str(out, &col.name);
    out.push(type_tag(col.sql_type()));
    codecs::varint::write_u64(out, col.len() as u64);
    match &col.data {
        ColumnData::Int(v) => {
            for &x in v {
                write_zigzag(out, x);
            }
        }
        ColumnData::Double(v) => {
            for &x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        ColumnData::Str(v) => {
            for s in v {
                write_str(out, s);
            }
        }
        ColumnData::Bool(v) => {
            for &b in v {
                out.push(b as u8);
            }
        }
        ColumnData::Blob(v) => {
            for b in v {
                codecs::varint::write_u64(out, b.len() as u64);
                out.extend_from_slice(b);
            }
        }
    }
    if col.nulls.iter().any(|n| *n) {
        out.push(1);
        for i in 0..col.len() {
            out.push(col.is_null(i) as u8);
        }
    } else {
        out.push(0);
    }
}

fn decode_column(r: &mut Reader) -> Result<Column, DbError> {
    let name = r.str()?;
    let t = tag_type(r.byte()?)?;
    let rows = r.u64()? as usize;
    let data = match t {
        SqlType::Integer => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.i64()?);
            }
            ColumnData::Int(v)
        }
        SqlType::Double => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                let bits = u64::from_le_bytes(r.bytes(8)?.try_into().expect("8-byte slice"));
                v.push(f64::from_bits(bits));
            }
            ColumnData::Double(v)
        }
        SqlType::String => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.str()?);
            }
            ColumnData::Str(v)
        }
        SqlType::Boolean => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.byte()? != 0);
            }
            ColumnData::Bool(v)
        }
        SqlType::Blob => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.blob()?);
            }
            ColumnData::Blob(v)
        }
    };
    let nulls = if r.byte()? == 1 {
        let mut mask = Vec::with_capacity(rows);
        for _ in 0..rows {
            mask.push(r.byte()? != 0);
        }
        mask
    } else {
        Vec::new()
    };
    Ok(Column { name, data, nulls })
}

fn encode_function(out: &mut Vec<u8>, f: &FunctionDef) {
    write_str(out, &f.name);
    codecs::varint::write_u64(out, f.params.len() as u64);
    for (n, t) in &f.params {
        write_str(out, n);
        out.push(type_tag(*t));
    }
    match &f.returns {
        FunctionReturn::Scalar(t) => {
            out.push(0);
            out.push(type_tag(*t));
        }
        FunctionReturn::Table(cols) => {
            out.push(1);
            codecs::varint::write_u64(out, cols.len() as u64);
            for (n, t) in cols {
                write_str(out, n);
                out.push(type_tag(*t));
            }
        }
    }
    write_str(out, &f.language);
    write_str(out, &f.body);
}

fn decode_function(r: &mut Reader) -> Result<FunctionDef, DbError> {
    let name = r.str()?;
    let n_params = r.u64()? as usize;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let pname = r.str()?;
        params.push((pname, tag_type(r.byte()?)?));
    }
    let returns = match r.byte()? {
        0 => FunctionReturn::Scalar(tag_type(r.byte()?)?),
        1 => {
            let n = r.u64()? as usize;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                let cname = r.str()?;
                cols.push((cname, tag_type(r.byte()?)?));
            }
            FunctionReturn::Table(cols)
        }
        other => {
            return Err(DbError::storage(format!(
                "unknown function return tag {other}"
            )))
        }
    };
    let language = r.str()?;
    let body = r.str()?;
    Ok(FunctionDef {
        name,
        params,
        returns,
        language,
        body,
    })
}

/// Serialize the whole catalog plus the WAL sequence it covers.
fn encode_snapshot(catalog: &Catalog, covered_seq: u64) -> Vec<u8> {
    let (tables, functions, epochs, functions_epoch, mutations) = catalog.storage_state();
    let mut out = Vec::new();
    codecs::varint::write_u64(&mut out, covered_seq);
    codecs::varint::write_u64(&mut out, mutations);
    codecs::varint::write_u64(&mut out, functions_epoch);
    codecs::varint::write_u64(&mut out, epochs.len() as u64);
    for (key, epoch) in epochs {
        write_str(&mut out, key);
        codecs::varint::write_u64(&mut out, *epoch);
    }
    codecs::varint::write_u64(&mut out, tables.len() as u64);
    for table in tables.values() {
        write_str(&mut out, &table.name);
        codecs::varint::write_u64(&mut out, table.columns.len() as u64);
        for col in table.columns.iter() {
            encode_column(&mut out, col);
        }
    }
    codecs::varint::write_u64(&mut out, functions.len() as u64);
    for f in functions.values() {
        encode_function(&mut out, f);
    }
    out
}

/// Inverse of [`encode_snapshot`]: the catalog and the covered sequence.
fn decode_snapshot(payload: &[u8]) -> Result<(Catalog, u64), DbError> {
    let mut r = Reader::new(payload);
    let covered_seq = r.u64()?;
    let mutations = r.u64()?;
    let functions_epoch = r.u64()?;
    let n_epochs = r.u64()? as usize;
    let mut epochs = BTreeMap::new();
    for _ in 0..n_epochs {
        let key = r.str()?;
        let epoch = r.u64()?;
        epochs.insert(key, epoch);
    }
    let n_tables = r.u64()? as usize;
    let mut tables = BTreeMap::new();
    for _ in 0..n_tables {
        let name = r.str()?;
        let n_cols = r.u64()? as usize;
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            cols.push(decode_column(&mut r)?);
        }
        let table = Table::from_columns(name.clone(), cols)
            .map_err(|e| DbError::storage(format!("snapshot table '{name}': {}", e.message)))?;
        tables.insert(name.to_ascii_lowercase(), table);
    }
    let n_functions = r.u64()? as usize;
    let mut functions = BTreeMap::new();
    for _ in 0..n_functions {
        let f = decode_function(&mut r)?;
        functions.insert(f.name.to_ascii_lowercase(), f);
    }
    if !r.done() {
        return Err(DbError::storage("trailing bytes after snapshot payload"));
    }
    Ok((
        Catalog::from_storage_state(tables, functions, epochs, functions_epoch, mutations),
        covered_seq,
    ))
}

// ---------------------------------------------------------------------
// Storage proper
// ---------------------------------------------------------------------

impl Storage {
    /// Open (creating if needed) the storage directory, running recovery:
    /// stale `snapshot.tmp` removal, snapshot decode, WAL scan with
    /// torn-tail truncation.
    pub fn open(dir: &Path, options: StorageOptions) -> Result<(Storage, Recovery), DbError> {
        fs::create_dir_all(dir).map_err(|e| io_err("cannot create storage dir", dir, e))?;
        let tmp = dir.join(SNAPSHOT_TMP);
        if tmp.exists() {
            // An unfinished checkpoint: never renamed, never authoritative.
            fs::remove_file(&tmp).map_err(|e| io_err("cannot remove stale", &tmp, e))?;
        }

        let snap_path = dir.join(SNAPSHOT_FILE);
        let (catalog, base_seq) = if snap_path.exists() {
            let data =
                fs::read(&snap_path).map_err(|e| io_err("cannot read snapshot", &snap_path, e))?;
            let (catalog, seq) = Self::decode_snapshot_file(&data)
                .map_err(|e| DbError::storage(format!("{}: {}", snap_path.display(), e.message)))?;
            (Some(catalog), seq)
        } else {
            (None, 0)
        };

        let wal_path = dir.join(WAL_FILE);
        let mut truncated_tail = false;
        let mut records: Vec<(u64, String)> = Vec::new();
        let mut wal_bytes = HEADER_LEN as u64;
        if wal_path.exists() {
            let data = fs::read(&wal_path).map_err(|e| io_err("cannot read WAL", &wal_path, e))?;
            if data.is_empty() {
                // A crash can leave a created-but-unwritten file; rewrite
                // the header below.
                fs::write(&wal_path, header(WAL_MAGIC))
                    .map_err(|e| io_err("cannot init WAL", &wal_path, e))?;
            } else {
                if data.len() < HEADER_LEN || &data[..4] != WAL_MAGIC || data[4] != FORMAT_VERSION {
                    return Err(DbError::storage(format!(
                        "{}: bad WAL header (not a devUDF WAL, or unsupported version)",
                        wal_path.display()
                    )));
                }
                let mut pos = HEADER_LEN;
                while pos < data.len() {
                    match decode_frame(&data, pos).and_then(|(payload, frame_len)| {
                        decode_wal_payload(&payload).map(|rec| (rec, frame_len))
                    }) {
                        Some(((seq, sql), frame_len)) => {
                            records.push((seq, sql));
                            pos += frame_len;
                        }
                        None => {
                            // Torn tail: keep the prefix, drop the rest.
                            truncated_tail = true;
                            break;
                        }
                    }
                }
                if truncated_tail {
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&wal_path)
                        .map_err(|e| io_err("cannot open WAL", &wal_path, e))?;
                    f.set_len(pos as u64)
                        .map_err(|e| io_err("cannot truncate torn WAL", &wal_path, e))?;
                    obs::counter!("monet.storage.torn_tails").inc();
                }
                wal_bytes = pos as u64;
            }
        } else {
            fs::write(&wal_path, header(WAL_MAGIC))
                .map_err(|e| io_err("cannot init WAL", &wal_path, e))?;
        }

        let last_seq = records.last().map(|(seq, _)| *seq).unwrap_or(0);
        let next_seq = last_seq.max(base_seq) + 1;
        // Records already folded into the snapshot are skipped: a crash
        // between a checkpoint's rename and its WAL truncation leaves
        // them behind, and replaying them would double-apply.
        let replay: Vec<String> = records
            .into_iter()
            .filter(|(seq, _)| *seq > base_seq)
            .map(|(_, sql)| sql)
            .collect();
        let records_since_checkpoint = replay.len() as u64;

        let wal = OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err("cannot open WAL for append", &wal_path, e))?;

        obs::counter!("monet.storage.opens").inc();
        Ok((
            Storage {
                dir: dir.to_path_buf(),
                wal,
                options,
                next_seq,
                base_seq,
                records_since_checkpoint,
                wal_bytes,
            },
            Recovery {
                catalog,
                wal: replay,
            },
        ))
    }

    fn decode_snapshot_file(data: &[u8]) -> Result<(Catalog, u64), DbError> {
        if data.len() < HEADER_LEN || &data[..4] != SNAPSHOT_MAGIC || data[4] != FORMAT_VERSION {
            return Err(DbError::storage(
                "bad snapshot header (not a devUDF snapshot, or unsupported version)",
            ));
        }
        let (payload, frame_len) = decode_frame(data, HEADER_LEN)
            .ok_or_else(|| DbError::storage("snapshot frame corrupt (length or checksum)"))?;
        if HEADER_LEN + frame_len != data.len() {
            return Err(DbError::storage("trailing bytes after snapshot frame"));
        }
        decode_snapshot(&payload)
    }

    /// Append one statement to the WAL (and fsync, per policy).
    pub fn append(&mut self, sql: &str) -> Result<(), DbError> {
        let mut payload = Vec::with_capacity(sql.len() + 12);
        codecs::varint::write_u64(&mut payload, self.next_seq);
        codecs::varint::write_u64(&mut payload, sql.len() as u64);
        payload.extend_from_slice(sql.as_bytes());
        let frame = encode_frame(&payload);
        let wal_path = self.dir.join(WAL_FILE);
        self.wal
            .write_all(&frame)
            .map_err(|e| io_err("WAL append failed", &wal_path, e))?;
        if self.options.fsync == FsyncPolicy::Always {
            self.wal
                .sync_all()
                .map_err(|e| io_err("WAL fsync failed", &wal_path, e))?;
        }
        self.next_seq += 1;
        self.records_since_checkpoint += 1;
        self.wal_bytes += frame.len() as u64;
        obs::counter!("monet.storage.wal_appends").inc();
        Ok(())
    }

    /// Whether the automatic checkpoint cadence is due.
    pub fn should_checkpoint(&self) -> bool {
        self.options.snapshot_every > 0
            && self.records_since_checkpoint >= self.options.snapshot_every
    }

    /// Fold the catalog into `snapshot.db` (write-tmp, fsync, atomic
    /// rename) and truncate the WAL back to its header.
    pub fn checkpoint(&mut self, catalog: &Catalog) -> Result<(), DbError> {
        let covered_seq = self.next_seq - 1;
        let mut file_bytes = header(SNAPSHOT_MAGIC).to_vec();
        file_bytes.extend_from_slice(&encode_frame(&encode_snapshot(catalog, covered_seq)));

        let tmp = self.dir.join(SNAPSHOT_TMP);
        let snap = self.dir.join(SNAPSHOT_FILE);
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("cannot create", &tmp, e))?;
            f.write_all(&file_bytes)
                .map_err(|e| io_err("cannot write", &tmp, e))?;
            // The rename only publishes durable bytes: always sync the
            // tmp file, whatever the WAL policy — a snapshot that decodes
            // half-written would fail loudly on reopen (rule 2).
            f.sync_all().map_err(|e| io_err("cannot fsync", &tmp, e))?;
        }
        fs::rename(&tmp, &snap).map_err(|e| io_err("cannot rename snapshot into", &snap, e))?;

        let wal_path = self.dir.join(WAL_FILE);
        self.wal
            .set_len(HEADER_LEN as u64)
            .map_err(|e| io_err("cannot truncate WAL after checkpoint", &wal_path, e))?;
        if self.options.fsync == FsyncPolicy::Always {
            self.wal
                .sync_all()
                .map_err(|e| io_err("WAL fsync failed", &wal_path, e))?;
        }
        self.base_seq = covered_seq;
        self.records_since_checkpoint = 0;
        self.wal_bytes = HEADER_LEN as u64;
        obs::counter!("monet.storage.checkpoints").inc();
        Ok(())
    }

    pub fn stats(&self) -> StorageStats {
        StorageStats {
            dir: self.dir.clone(),
            last_seq: self.next_seq - 1,
            base_seq: self.base_seq,
            wal_records: self.records_since_checkpoint,
            wal_bytes: self.wal_bytes,
        }
    }
}

/// Decode a WAL record payload: `varint seq | varint len | sql`.
fn decode_wal_payload(payload: &[u8]) -> Option<(u64, String)> {
    let (seq, used) = codecs::varint::read_u64(payload).ok()?;
    let (len, used2) = codecs::varint::read_u64(&payload[used..]).ok()?;
    let start = used + used2;
    let end = start.checked_add(len as usize)?;
    if end != payload.len() {
        return None;
    }
    let sql = std::str::from_utf8(&payload[start..end]).ok()?;
    Some((seq, sql.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::types::SqlValue;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "monetlite-storage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn no_sync() -> StorageOptions {
        StorageOptions {
            fsync: FsyncPolicy::Never,
            ..StorageOptions::default()
        }
    }

    #[test]
    fn fsync_policy_parses_and_rejects() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("Always"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Always.as_str(), "always");
    }

    #[test]
    fn wal_survives_reopen_without_checkpoint() {
        let dir = temp_dir("wal-reopen");
        {
            let db = Engine::open_with(&dir, no_sync()).unwrap();
            db.execute("CREATE TABLE t (i INTEGER, s STRING)").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
                .unwrap();
        }
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        let t = db
            .execute("SELECT i, s FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(1), vec![SqlValue::Int(2), SqlValue::Str("b".into())]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_then_reopen_restores_exact_catalog_state() {
        let dir = temp_dir("checkpoint");
        let (version, fn_epoch) = {
            let db = Engine::open_with(&dir, no_sync()).unwrap();
            db.execute("CREATE TABLE t (i INTEGER, d DOUBLE, b BOOLEAN, bl BLOB)")
                .unwrap();
            db.execute("INSERT INTO t VALUES (1, 1.5, true, NULL), (NULL, 2.5, false, NULL)")
                .unwrap();
            db.execute(
                "CREATE FUNCTION f(x INTEGER) RETURNS TABLE(a INTEGER, b STRING) LANGUAGE PYTHON { return {'a': x, 'b': 'hi'} }",
            )
            .unwrap();
            let stats = db.checkpoint().unwrap();
            assert_eq!(stats.wal_records, 0);
            assert_eq!(stats.base_seq, stats.last_seq);
            (
                db.catalog_version(),
                db.with_catalog(|c| c.functions_epoch()),
            )
        };
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        // Counters restore exactly, not just table contents.
        assert_eq!(db.catalog_version(), version);
        assert_eq!(db.with_catalog(|c| c.functions_epoch()), fn_epoch);
        let t = db.execute("SELECT * FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(0)[1], SqlValue::Double(1.5));
        assert_eq!(t.row(1)[0], SqlValue::Null, "null mask survives");
        let f = db.get_function("f").unwrap().unwrap();
        assert_eq!(f.params, vec![("x".to_string(), SqlType::Integer)]);
        assert!(matches!(&f.returns, FunctionReturn::Table(cols) if cols.len() == 2));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_to_last_good_record() {
        let dir = temp_dir("torn");
        {
            let db = Engine::open_with(&dir, no_sync()).unwrap();
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            db.execute("INSERT INTO t VALUES (2)").unwrap();
        }
        // Tear mid-record: drop the last few bytes of the final frame.
        let wal = dir.join(WAL_FILE);
        let len = fs::metadata(&wal).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        let t = db.execute("SELECT i FROM t").unwrap().into_table().unwrap();
        assert_eq!(
            t.row_count(),
            1,
            "torn statement dropped whole, prefix kept"
        );
        // The truncated file must reopen cleanly again (no repeated tear).
        drop(db);
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        assert_eq!(
            db.execute("SELECT i FROM t")
                .unwrap()
                .into_table()
                .unwrap()
                .row_count(),
            1
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_wal_checksum_drops_the_tail() {
        let dir = temp_dir("badsum");
        {
            let db = Engine::open_with(&dir, no_sync()).unwrap();
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let mut data = fs::read(&wal).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xff; // flip a checksum byte of the final record
        fs::write(&wal, &data).unwrap();
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        assert_eq!(
            db.execute("SELECT i FROM t")
                .unwrap()
                .into_table()
                .unwrap()
                .row_count(),
            0,
            "the INSERT was the corrupted record"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_snapshot_tmp_is_discarded() {
        let dir = temp_dir("tmp");
        {
            let db = Engine::open_with(&dir, no_sync()).unwrap();
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        }
        // Simulate a crash mid-checkpoint: a half-written tmp file.
        fs::write(dir.join(SNAPSHOT_TMP), b"DUSNgarbage").unwrap();
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_rename_and_truncate_does_not_double_apply() {
        let dir = temp_dir("rename-crash");
        {
            let db = Engine::open_with(&dir, no_sync()).unwrap();
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            // Checkpoint, then put the pre-checkpoint WAL back — exactly
            // the state a crash between rename and truncation leaves.
            let wal_before = fs::read(dir.join(WAL_FILE)).unwrap();
            db.checkpoint().unwrap();
            fs::write(dir.join(WAL_FILE), &wal_before).unwrap();
        }
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        let t = db.execute("SELECT i FROM t").unwrap().into_table().unwrap();
        assert_eq!(t.row_count(), 1, "snapshot-covered records are skipped");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_fails_loudly() {
        let dir = temp_dir("badsnap");
        {
            let db = Engine::open_with(&dir, no_sync()).unwrap();
            db.execute("CREATE TABLE t (i INTEGER)").unwrap();
            db.checkpoint().unwrap();
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let mut data = fs::read(&snap).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        fs::write(&snap, &data).unwrap();
        let err = match Engine::open_with(&dir, no_sync()) {
            Err(e) => e,
            Ok(_) => panic!("corrupt snapshot must not open"),
        };
        assert_eq!(err.code, crate::error::ErrorCode::Storage);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn automatic_checkpoint_honours_cadence() {
        let dir = temp_dir("cadence");
        let opts = StorageOptions {
            fsync: FsyncPolicy::Never,
            snapshot_every: 3,
        };
        let db = Engine::open_with(&dir, opts).unwrap();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        db.execute("INSERT INTO t VALUES (2)").unwrap(); // third record
        assert!(dir.join(SNAPSHOT_FILE).exists(), "cadence hit at 3 records");
        let stats = db.storage_stats().unwrap();
        assert_eq!(stats.wal_records, 0);
        assert_eq!(stats.base_seq, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reads_and_failed_statements_are_not_logged() {
        let dir = temp_dir("readonly");
        let db = Engine::open_with(&dir, no_sync()).unwrap();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        let after_ddl = db.storage_stats().unwrap().last_seq;
        db.execute("SELECT i FROM t").unwrap();
        assert!(db.execute("INSERT INTO nope VALUES (1)").is_err());
        assert!(db.execute("gibberish").is_err());
        assert_eq!(db.storage_stats().unwrap().last_seq, after_ddl);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_storage_errors() {
        let db = Engine::new();
        assert!(!db.is_persistent());
        let err = db.checkpoint().unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::Storage);
    }

    #[test]
    fn snapshot_codec_round_trips_every_column_type() {
        let mut catalog = Catalog::new();
        let table = Table::from_columns(
            "Mixed",
            vec![
                Column {
                    name: "i".into(),
                    data: ColumnData::Int(vec![i64::MIN, -1, 0, 1, i64::MAX]),
                    nulls: vec![false, true, false, false, false],
                },
                Column {
                    name: "d".into(),
                    data: ColumnData::Double(vec![0.0, -2.5, f64::INFINITY, 1e-300, 4.0]),
                    nulls: Vec::new(),
                },
                Column {
                    name: "s".into(),
                    data: ColumnData::Str(vec![
                        "".into(),
                        "héllo".into(),
                        "a\nb".into(),
                        "x".into(),
                        "y".into(),
                    ]),
                    nulls: Vec::new(),
                },
                Column {
                    name: "b".into(),
                    data: ColumnData::Bool(vec![true, false, true, false, true]),
                    nulls: Vec::new(),
                },
                Column {
                    name: "bl".into(),
                    data: ColumnData::Blob(vec![vec![], vec![0, 255], vec![1], vec![2], vec![3]]),
                    nulls: Vec::new(),
                },
            ],
        )
        .unwrap();
        catalog.create_table(table).unwrap();
        let payload = encode_snapshot(&catalog, 7);
        let (decoded, seq) = decode_snapshot(&payload).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(decoded.version(), catalog.version());
        let t = decoded.table("mixed").unwrap();
        assert_eq!(t, catalog.table("mixed").unwrap());
        assert!(t.columns[0].is_null(1));
    }
}
