//! Froid-style inlining of straight-line Python UDFs into relational
//! expressions (paper cross-ref: "Optimization of Imperative Programs in a
//! Relational Database").
//!
//! [`plan_udf`] takes a stored function definition, parses its body with
//! `pylite::parse_module` (the same AST `pylite::compile` consumes) and
//! attempts to lower it into one [`SqlExpr`] over the function's parameters
//! via symbolic substitution:
//!
//! - parameter and local-variable reads become column references / their
//!   bound expressions,
//! - arithmetic, comparisons and boolean ops map onto [`BinaryOp`]
//!   (Python `/`, `//`, `%` and `**` get dedicated Python-semantics
//!   operators so floor division and sign rules agree with the
//!   interpreter),
//! - `if`/`elif`/`else` and conditional expressions become lazy
//!   [`SqlExpr::Case`] chains (each `if` is lowered with its continuation,
//!   so guard-style early returns work),
//! - straight-line local bindings update a symbolic environment,
//! - a small builtin whitelist maps onto engine aggregates and casts
//!   (`sum`→`sum`, `len`→`count`, `abs`, `min`, `max`, `float`/`int`→CAST).
//!
//! Anything else — loops, `_conn` loopback calls, list/dict values and
//! mutation, nested `def`s, `print`, subscripts, unknown calls — makes the
//! pass bail with a typed [`Bail`] reason and the engine falls back to the
//! PR-6 bytecode VM. A plan that lowers successfully can still bail *per
//! invocation* (NULL-bearing or empty input columns, array-truthiness
//! conditions, aggregates over scalar bindings) and, as a last resort, any
//! runtime evaluation error re-runs the interpreter so error text and line
//! attribution always come from pylite. The inlined subset is pure — no
//! I/O, no loopback, no mutation — so the re-run is observationally
//! equivalent.

use std::collections::BTreeSet;

use pylite::ast as py;

use crate::catalog::FunctionDef;
use crate::sql::ast::{BinaryOp, SqlExpr, UnaryOp};
use crate::table::Table;
use crate::types::{SqlType, SqlValue};
use crate::udf::UdfInput;

/// Why a UDF body (or one invocation of an inlined plan) was not inlined.
///
/// Plan-time reasons are cached with the plan; invocation-time reasons
/// ([`Bail::NullInput`] onwards) depend on the bound arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bail {
    /// `for`/`while` — iteration has no relational counterpart here.
    Loop,
    /// `_conn` loopback query — side effects / engine re-entry.
    Loopback,
    /// List/dict construction or mutating method call (`append`, …).
    Mutation,
    /// `def` inside the body.
    NestedDef,
    /// `print` — stdout must be observable, so interpret.
    Print,
    /// Body failed to parse (CREATE FUNCTION validates, so this is rare).
    ParseError,
    /// Statement kind outside the straight-line subset (named).
    UnsupportedStmt(&'static str),
    /// Expression kind outside the subset (named).
    UnsupportedExpr(&'static str),
    /// Call to something outside the builtin whitelist.
    UnsupportedCall(String),
    /// A name that is neither a parameter nor a prior local binding.
    UnknownName(String),
    /// Operand types the relational engine would evaluate differently
    /// (e.g. ordering a string against a number).
    MixedTypes,
    /// BLOB parameters cross the boundary with interpreter-specific shape.
    BlobParam,
    /// Lowered expression exceeded the size budget.
    TooLarge,
    /// Runtime: an input column contains NULLs (pylite rejects those with
    /// its own error, so the interpreter must produce it).
    NullInput,
    /// Runtime: an input column is empty (Python `sum([])` is `0`, SQL SUM
    /// of nothing is NULL — interpret instead of guessing).
    EmptyInput,
    /// Runtime: a condition depends on a column-bound parameter in
    /// operator-at-a-time mode, where Python `if` sees the whole array
    /// (truthiness = non-empty), not one row.
    ColumnCondition,
    /// Runtime: an `int()`/`float()` cast argument depends on a
    /// column-bound parameter in operator-at-a-time mode — pylite's casts
    /// are not vectorized (TypeError on arrays), so the interpreter must
    /// raise it.
    ColumnCast,
    /// Runtime: an aggregate whose argument is bound to a scalar (Python
    /// `sum(3)` is a TypeError the interpreter must raise).
    ScalarAggregate,
    /// Runtime: columnar evaluation errored; the interpreter re-ran to
    /// produce the authoritative error (or value).
    RuntimeError,
    /// Inlining disabled by the `interp` setting.
    Disabled,
}

impl Bail {
    /// Short stable label used by EXPLAIN and telemetry.
    pub fn label(&self) -> String {
        match self {
            Bail::Loop => "loop".into(),
            Bail::Loopback => "loopback".into(),
            Bail::Mutation => "mutation".into(),
            Bail::NestedDef => "nested-def".into(),
            Bail::Print => "print".into(),
            Bail::ParseError => "parse-error".into(),
            Bail::UnsupportedStmt(s) => format!("stmt:{s}"),
            Bail::UnsupportedExpr(s) => format!("expr:{s}"),
            Bail::UnsupportedCall(s) => format!("call:{s}"),
            Bail::UnknownName(s) => format!("name:{s}"),
            Bail::MixedTypes => "mixed-types".into(),
            Bail::BlobParam => "blob-param".into(),
            Bail::TooLarge => "too-large".into(),
            Bail::NullInput => "null-input".into(),
            Bail::EmptyInput => "empty-input".into(),
            Bail::ColumnCondition => "column-condition".into(),
            Bail::ColumnCast => "column-cast".into(),
            Bail::ScalarAggregate => "scalar-aggregate".into(),
            Bail::RuntimeError => "runtime-error".into(),
            Bail::Disabled => "disabled".into(),
        }
    }
}

/// The cached per-function decision: lowered plan or bail reason.
#[derive(Debug, Clone)]
pub enum UdfPlan {
    Inlined(InlinePlan),
    Interpreted(Bail),
}

impl UdfPlan {
    /// One-line description for EXPLAIN output.
    pub fn describe(&self) -> String {
        match self {
            UdfPlan::Inlined(p) => format!("inlined as {}", render_expr(&p.expr)),
            UdfPlan::Interpreted(b) => format!("interpreted (bail: {})", b.label()),
        }
    }
}

/// A successfully lowered UDF body.
#[derive(Debug, Clone)]
pub struct InlinePlan {
    /// The whole body as one expression over `SqlExpr::Column(param)` refs.
    pub expr: SqlExpr,
    /// Parameters read by CASE conditions *outside* aggregate calls. If one
    /// of these is bound to a column in operator-at-a-time mode, the Python
    /// `if` would test the array's truthiness, not a per-row value — bail.
    pub cond_params: BTreeSet<String>,
    /// Parameters reaching an `int()`/`float()` cast outside aggregate
    /// calls. pylite's casts reject arrays, so a column binding in
    /// operator-at-a-time mode means the interpreter raises — bail.
    pub cast_params: BTreeSet<String>,
    /// True when the plan contains aggregate calls (`sum`/`len`/`min`/`max`
    /// over parameters). Those require column bindings.
    pub uses_aggregates: bool,
    /// Parameters referenced inside aggregate-call arguments, precomputed so
    /// `run_inlined` does not re-walk the expression on every call.
    pub agg_params: BTreeSet<String>,
}

/// Inferred value class, used to keep the lowering honest about the few
/// places SQL and Python semantics would silently part ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Float,
    Bool,
    Str,
    /// Numeric, int-or-float (e.g. merged CASE arms, `**`).
    Num,
    /// The `None` produced by falling off the end of the body.
    None,
}

impl Ty {
    fn numeric(self) -> bool {
        matches!(self, Ty::Int | Ty::Float | Ty::Bool | Ty::Num)
    }
}

/// Merge the types of CASE arms.
fn merge_ty(a: Ty, b: Ty) -> Result<Ty, Bail> {
    if a == b {
        return Ok(a);
    }
    if a.numeric() && b.numeric() {
        return Ok(Ty::Num);
    }
    // Ty::None only ever reaches a merge via an implicit `return None` arm;
    // the interpreter would produce a NULL there, and mixing NULL into a
    // typed column is fine.
    if a == Ty::None {
        return Ok(b);
    }
    if b == Ty::None {
        return Ok(a);
    }
    Err(Bail::MixedTypes)
}

/// A lowered expression with its inferred type.
#[derive(Debug, Clone)]
struct Lowered {
    expr: SqlExpr,
    ty: Ty,
}

type Env = std::collections::HashMap<String, Lowered>;

/// Node budget: `if` chains lower their continuation once per branch, so a
/// pathological body could blow up exponentially. UDF bodies are tiny; any
/// plan bigger than this is not worth inlining anyway.
const NODE_BUDGET: usize = 4096;

struct LowerCtx {
    params: Vec<(String, Ty)>,
    cond_params: BTreeSet<String>,
    cast_params: BTreeSet<String>,
    uses_aggregates: bool,
    nodes: usize,
}

impl LowerCtx {
    fn spend(&mut self, n: usize) -> Result<(), Bail> {
        self.nodes += n;
        if self.nodes > NODE_BUDGET {
            return Err(Bail::TooLarge);
        }
        Ok(())
    }

    fn param_ty(&self, name: &str) -> Option<Ty> {
        self.params.iter().find(|(p, _)| p == name).map(|(_, t)| *t)
    }
}

/// Decide the plan for one stored function.
pub fn plan_udf(def: &FunctionDef) -> UdfPlan {
    match lower_def(def) {
        Ok(plan) => UdfPlan::Inlined(plan),
        Err(bail) => UdfPlan::Interpreted(bail),
    }
}

fn lower_def(def: &FunctionDef) -> Result<InlinePlan, Bail> {
    let module = pylite::parse_module(&def.body).map_err(|_| Bail::ParseError)?;
    let mut params = Vec::with_capacity(def.params.len());
    for (name, ty) in &def.params {
        let ty = match ty {
            SqlType::Integer => Ty::Int,
            SqlType::Double => Ty::Float,
            SqlType::String => Ty::Str,
            SqlType::Boolean => Ty::Bool,
            SqlType::Blob => return Err(Bail::BlobParam),
        };
        params.push((name.clone(), ty));
    }
    let mut ctx = LowerCtx {
        params,
        cond_params: BTreeSet::new(),
        cast_params: BTreeSet::new(),
        uses_aggregates: false,
        nodes: 0,
    };
    let lowered = lower_stmts(&mut ctx, &module.body, &Env::new())?;
    let mut agg_params = BTreeSet::new();
    collect_agg_params(&lowered.expr, false, &mut agg_params);
    Ok(InlinePlan {
        expr: lowered.expr,
        cond_params: ctx.cond_params,
        cast_params: ctx.cast_params,
        uses_aggregates: ctx.uses_aggregates,
        agg_params,
    })
}

/// Lower a statement list to the expression it returns (falling off the end
/// returns None/NULL, like the interpreter's `eval_module`).
fn lower_stmts(ctx: &mut LowerCtx, stmts: &[py::Stmt], env: &Env) -> Result<Lowered, Bail> {
    let Some((first, rest)) = stmts.split_first() else {
        return Ok(Lowered {
            expr: SqlExpr::Literal(SqlValue::Null),
            ty: Ty::None,
        });
    };
    ctx.spend(1)?;
    match &first.kind {
        py::StmtKind::Return(value) => {
            // Statements after a `return` never execute; Python would not
            // run them either, so they cannot affect the result.
            match value {
                None => Ok(Lowered {
                    expr: SqlExpr::Literal(SqlValue::Null),
                    ty: Ty::None,
                }),
                Some(e) if matches!(e.kind, py::ExprKind::NoneLit) => Ok(Lowered {
                    expr: SqlExpr::Literal(SqlValue::Null),
                    ty: Ty::None,
                }),
                Some(e) => lower_expr(ctx, e, env),
            }
        }
        py::StmtKind::Assign { targets, value } => {
            let lowered = lower_expr(ctx, value, env)?;
            let mut env = env.clone();
            for target in targets {
                let py::ExprKind::Name(name) = &target.kind else {
                    return Err(Bail::UnsupportedStmt("unpacking-assign"));
                };
                env.insert(name.clone(), lowered.clone());
            }
            let effect = lowered.expr;
            let rest = lower_stmts(ctx, rest, &env)?;
            seq_effect(ctx, effect, rest)
        }
        py::StmtKind::AugAssign { target, op, value } => {
            let py::ExprKind::Name(name) = &target.kind else {
                return Err(Bail::UnsupportedStmt("aug-assign-target"));
            };
            let current = read_name(ctx, name, env)?;
            let rhs = lower_expr(ctx, value, env)?;
            let combined = lower_binop(ctx, *op, current, rhs)?;
            let effect = combined.expr.clone();
            let mut env = env.clone();
            env.insert(name.clone(), combined);
            let rest = lower_stmts(ctx, rest, &env)?;
            seq_effect(ctx, effect, rest)
        }
        py::StmtKind::If { branches, orelse } => {
            let mut case_branches = Vec::with_capacity(branches.len());
            let mut result_ty: Option<Ty> = None;
            for (test, body) in branches {
                let cond = lower_condition(ctx, test, env)?;
                // Each branch continues with the statements *after* the
                // whole `if`, so early returns and branch-local bindings
                // both work.
                let mut branch_stmts: Vec<py::Stmt> = body.clone();
                branch_stmts.extend_from_slice(rest);
                let arm = lower_stmts(ctx, &branch_stmts, env)?;
                result_ty = Some(match result_ty {
                    None => arm.ty,
                    Some(t) => merge_ty(t, arm.ty)?,
                });
                case_branches.push((cond, arm.expr));
            }
            let mut else_stmts: Vec<py::Stmt> = orelse.clone();
            else_stmts.extend_from_slice(rest);
            let else_arm = lower_stmts(ctx, &else_stmts, env)?;
            let ty = merge_ty(result_ty.expect("if has >=1 branch"), else_arm.ty)?;
            Ok(Lowered {
                expr: SqlExpr::Case {
                    branches: case_branches,
                    else_: Box::new(else_arm.expr),
                },
                ty,
            })
        }
        py::StmtKind::Expr(e) => {
            // Docstrings / bare literals are inert; anything else could
            // have effects or errors the engine would not reproduce.
            match &e.kind {
                py::ExprKind::Str(_)
                | py::ExprKind::Int(_)
                | py::ExprKind::Float(_)
                | py::ExprKind::Bool(_)
                | py::ExprKind::NoneLit => lower_stmts(ctx, rest, env),
                py::ExprKind::Call { func, .. } => match call_target(func) {
                    CallTarget::Print => Err(Bail::Print),
                    CallTarget::Loopback => Err(Bail::Loopback),
                    CallTarget::Method(m) if is_mutator(&m) => Err(Bail::Mutation),
                    _ => Err(Bail::UnsupportedStmt("expr")),
                },
                _ => Err(Bail::UnsupportedStmt("expr")),
            }
        }
        py::StmtKind::Pass => lower_stmts(ctx, rest, env),
        py::StmtKind::While { .. } | py::StmtKind::For { .. } => Err(Bail::Loop),
        py::StmtKind::FunctionDef(_) => Err(Bail::NestedDef),
        py::StmtKind::Import { .. } | py::StmtKind::FromImport { .. } => {
            Err(Bail::UnsupportedStmt("import"))
        }
        py::StmtKind::Break | py::StmtKind::Continue => Err(Bail::UnsupportedStmt("loop-control")),
        py::StmtKind::Global(_) => Err(Bail::UnsupportedStmt("global")),
        py::StmtKind::Del(_) => Err(Bail::UnsupportedStmt("del")),
        py::StmtKind::Try { .. } => Err(Bail::UnsupportedStmt("try")),
        py::StmtKind::Raise(_) => Err(Bail::UnsupportedStmt("raise")),
        py::StmtKind::Assert { .. } => Err(Bail::UnsupportedStmt("assert")),
    }
}

/// Lower an `if`/`elif` condition and record which parameters it reads
/// outside aggregate calls (those force a runtime bail when column-bound in
/// operator-at-a-time mode).
fn lower_condition(ctx: &mut LowerCtx, test: &py::Expr, env: &Env) -> Result<SqlExpr, Bail> {
    let cond = lower_expr(ctx, test, env)?;
    // Python truthiness: booleans directly, integers as `!= 0` (CASE
    // treats non-zero ints as true). Floats/strings have truthiness too,
    // but the engine's CASE does not — keep those interpreted.
    if !matches!(cond.ty, Ty::Bool | Ty::Int) {
        return Err(Bail::UnsupportedExpr("condition-truthiness"));
    }
    collect_cond_params(&cond.expr, false, &mut ctx.cond_params);
    Ok(cond.expr)
}

/// Sequence a binding's *effects* before the continuation. pylite evaluates
/// every assignment eagerly — a division by zero in a local the returned
/// expression never reads still raises — so the plan must evaluate the bound
/// expression too. `__seq(a, b)` is an engine-internal builtin that
/// evaluates both arguments and yields the second; error-free expressions
/// (bare literals/columns) skip the wrapper.
fn seq_effect(ctx: &mut LowerCtx, effect: SqlExpr, rest: Lowered) -> Result<Lowered, Bail> {
    if matches!(effect, SqlExpr::Literal(_) | SqlExpr::Column(_)) {
        return Ok(rest);
    }
    ctx.spend(1)?;
    Ok(Lowered {
        expr: SqlExpr::Call {
            name: "__seq".into(),
            args: vec![effect, rest.expr],
        },
        ty: rest.ty,
    })
}

/// Collect `Column` references outside aggregate calls.
fn collect_cond_params(expr: &SqlExpr, inside_agg: bool, out: &mut BTreeSet<String>) {
    match expr {
        SqlExpr::Column(name) => {
            if !inside_agg {
                out.insert(name.clone());
            }
        }
        SqlExpr::Literal(_) | SqlExpr::Star => {}
        SqlExpr::Unary { expr, .. } => collect_cond_params(expr, inside_agg, out),
        SqlExpr::Binary { left, right, .. } => {
            collect_cond_params(left, inside_agg, out);
            collect_cond_params(right, inside_agg, out);
        }
        SqlExpr::Call { name, args } => {
            let agg = matches!(name.as_str(), "sum" | "count" | "min" | "max");
            for a in args {
                collect_cond_params(a, inside_agg || agg, out);
            }
        }
        SqlExpr::Cast { expr, .. } => collect_cond_params(expr, inside_agg, out),
        SqlExpr::IsNull { expr, .. } => collect_cond_params(expr, inside_agg, out),
        SqlExpr::Like { expr, pattern, .. } => {
            collect_cond_params(expr, inside_agg, out);
            collect_cond_params(pattern, inside_agg, out);
        }
        SqlExpr::InList { expr, list, .. } => {
            collect_cond_params(expr, inside_agg, out);
            for e in list {
                collect_cond_params(e, inside_agg, out);
            }
        }
        SqlExpr::Case { branches, else_ } => {
            for (c, v) in branches {
                collect_cond_params(c, inside_agg, out);
                collect_cond_params(v, inside_agg, out);
            }
            collect_cond_params(else_, inside_agg, out);
        }
    }
}

fn read_name(ctx: &mut LowerCtx, name: &str, env: &Env) -> Result<Lowered, Bail> {
    if name == "_conn" {
        return Err(Bail::Loopback);
    }
    if let Some(bound) = env.get(name) {
        return Ok(bound.clone());
    }
    if let Some(ty) = ctx.param_ty(name) {
        return Ok(Lowered {
            expr: SqlExpr::Column(name.to_string()),
            ty,
        });
    }
    Err(Bail::UnknownName(name.to_string()))
}

/// What a call expression is aimed at.
enum CallTarget {
    Print,
    Loopback,
    Builtin(String),
    Method(String),
    Other,
}

fn call_target(func: &py::Expr) -> CallTarget {
    match &func.kind {
        py::ExprKind::Name(n) if n == "print" => CallTarget::Print,
        py::ExprKind::Name(n) if n == "_conn" => CallTarget::Loopback,
        py::ExprKind::Name(n) => CallTarget::Builtin(n.clone()),
        py::ExprKind::Attribute { value, attr } => {
            if matches!(&value.kind, py::ExprKind::Name(n) if n == "_conn") {
                CallTarget::Loopback
            } else {
                CallTarget::Method(attr.clone())
            }
        }
        _ => CallTarget::Other,
    }
}

fn is_mutator(name: &str) -> bool {
    matches!(
        name,
        "append" | "extend" | "insert" | "pop" | "remove" | "clear" | "sort" | "reverse"
    )
}

fn lower_expr(ctx: &mut LowerCtx, expr: &py::Expr, env: &Env) -> Result<Lowered, Bail> {
    ctx.spend(1)?;
    match &expr.kind {
        py::ExprKind::Int(v) => Ok(Lowered {
            expr: SqlExpr::Literal(SqlValue::Int(*v)),
            ty: Ty::Int,
        }),
        py::ExprKind::Float(v) => Ok(Lowered {
            expr: SqlExpr::Literal(SqlValue::Double(*v)),
            ty: Ty::Float,
        }),
        py::ExprKind::Str(s) => Ok(Lowered {
            expr: SqlExpr::Literal(SqlValue::Str(s.to_string())),
            ty: Ty::Str,
        }),
        py::ExprKind::Bool(b) => Ok(Lowered {
            expr: SqlExpr::Literal(SqlValue::Bool(*b)),
            ty: Ty::Bool,
        }),
        // `None` in the middle of an expression would need Python's None
        // equality rules, not SQL's NULL propagation.
        py::ExprKind::NoneLit => Err(Bail::UnsupportedExpr("none")),
        py::ExprKind::Name(name) => read_name(ctx, name, env),
        py::ExprKind::BinOp { left, op, right } => {
            let l = lower_expr(ctx, left, env)?;
            let r = lower_expr(ctx, right, env)?;
            lower_binop(ctx, *op, l, r)
        }
        py::ExprKind::UnaryOp { op, operand } => {
            let v = lower_expr(ctx, operand, env)?;
            match op {
                py::UnaryOp::Pos => {
                    if v.ty.numeric() {
                        Ok(v)
                    } else {
                        Err(Bail::MixedTypes)
                    }
                }
                py::UnaryOp::Neg => {
                    if !v.ty.numeric() {
                        return Err(Bail::MixedTypes);
                    }
                    let ty = if v.ty == Ty::Bool { Ty::Int } else { v.ty };
                    Ok(Lowered {
                        expr: SqlExpr::Unary {
                            op: UnaryOp::Neg,
                            expr: Box::new(v.expr),
                        },
                        ty,
                    })
                }
                py::UnaryOp::Not => {
                    if v.ty != Ty::Bool {
                        return Err(Bail::UnsupportedExpr("not-truthiness"));
                    }
                    Ok(Lowered {
                        expr: SqlExpr::Unary {
                            op: UnaryOp::Not,
                            expr: Box::new(v.expr),
                        },
                        ty: Ty::Bool,
                    })
                }
            }
        }
        py::ExprKind::BoolOp { op, values } => {
            let sql_op = match op {
                py::BoolOpKind::And => BinaryOp::And,
                py::BoolOpKind::Or => BinaryOp::Or,
            };
            let mut lowered = Vec::with_capacity(values.len());
            for v in values {
                let l = lower_expr(ctx, v, env)?;
                // Python `and`/`or` return an *operand*; only when both
                // sides are booleans does that coincide with SQL AND/OR.
                if l.ty != Ty::Bool {
                    return Err(Bail::UnsupportedExpr("boolop-operand"));
                }
                lowered.push(l.expr);
            }
            let mut iter = lowered.into_iter();
            let first = iter.next().ok_or(Bail::UnsupportedExpr("boolop-empty"))?;
            let expr = iter.fold(first, |acc, next| SqlExpr::Binary {
                left: Box::new(acc),
                op: sql_op,
                right: Box::new(next),
            });
            Ok(Lowered { expr, ty: Ty::Bool })
        }
        py::ExprKind::Compare {
            left,
            ops,
            comparators,
        } => {
            let mut operands = Vec::with_capacity(1 + comparators.len());
            operands.push(lower_expr(ctx, left, env)?);
            for c in comparators {
                operands.push(lower_expr(ctx, c, env)?);
            }
            let mut parts: Vec<SqlExpr> = Vec::with_capacity(ops.len());
            for (i, op) in ops.iter().enumerate() {
                let (a, b) = (&operands[i], &operands[i + 1]);
                let sql_op = match op {
                    py::CmpOp::Eq => BinaryOp::Eq,
                    py::CmpOp::NotEq => BinaryOp::NotEq,
                    py::CmpOp::Lt => BinaryOp::Lt,
                    py::CmpOp::Le => BinaryOp::Le,
                    py::CmpOp::Gt => BinaryOp::Gt,
                    py::CmpOp::Ge => BinaryOp::Ge,
                    py::CmpOp::In | py::CmpOp::NotIn | py::CmpOp::Is | py::CmpOp::IsNot => {
                        return Err(Bail::UnsupportedExpr("compare-op"))
                    }
                };
                // Ordering a string against a number raises in Python but
                // would "succeed" through the engine's total order.
                let classes_agree =
                    (a.ty.numeric() && b.ty.numeric()) || (a.ty == Ty::Str && b.ty == Ty::Str);
                if matches!(
                    op,
                    py::CmpOp::Lt | py::CmpOp::Le | py::CmpOp::Gt | py::CmpOp::Ge
                ) && !classes_agree
                {
                    return Err(Bail::MixedTypes);
                }
                // Python `1 == 'x'` is False without error; the engine's
                // Eq over mismatched classes also yields false. But equality
                // between Str and numeric classes falls into the engine's
                // debug-format comparison — keep only agreeing classes.
                if !classes_agree {
                    return Err(Bail::MixedTypes);
                }
                parts.push(SqlExpr::Binary {
                    left: Box::new(a.expr.clone()),
                    op: sql_op,
                    right: Box::new(b.expr.clone()),
                });
            }
            let mut iter = parts.into_iter();
            let first = iter.next().ok_or(Bail::UnsupportedExpr("compare-empty"))?;
            let expr = iter.fold(first, |acc, next| SqlExpr::Binary {
                left: Box::new(acc),
                op: BinaryOp::And,
                right: Box::new(next),
            });
            Ok(Lowered { expr, ty: Ty::Bool })
        }
        py::ExprKind::IfExp { test, body, orelse } => {
            let cond = lower_condition(ctx, test, env)?;
            let then = lower_expr(ctx, body, env)?;
            let other = lower_expr(ctx, orelse, env)?;
            let ty = merge_ty(then.ty, other.ty)?;
            Ok(Lowered {
                expr: SqlExpr::Case {
                    branches: vec![(cond, then.expr)],
                    else_: Box::new(other.expr),
                },
                ty,
            })
        }
        py::ExprKind::Call { func, args, kwargs } => match call_target(func) {
            CallTarget::Print => Err(Bail::Print),
            CallTarget::Loopback => Err(Bail::Loopback),
            CallTarget::Method(m) if is_mutator(&m) => Err(Bail::Mutation),
            CallTarget::Method(m) => Err(Bail::UnsupportedCall(m)),
            CallTarget::Other => Err(Bail::UnsupportedExpr("call")),
            CallTarget::Builtin(name) => {
                if !kwargs.is_empty() {
                    return Err(Bail::UnsupportedCall(name));
                }
                lower_builtin(ctx, &name, args, env)
            }
        },
        py::ExprKind::List(_) | py::ExprKind::Dict(_) => Err(Bail::Mutation),
        py::ExprKind::Tuple(_) => Err(Bail::UnsupportedExpr("tuple")),
        py::ExprKind::Subscript { .. } => Err(Bail::UnsupportedExpr("subscript")),
        py::ExprKind::Attribute { value, .. } => {
            if matches!(&value.kind, py::ExprKind::Name(n) if n == "_conn") {
                Err(Bail::Loopback)
            } else {
                Err(Bail::UnsupportedExpr("attribute"))
            }
        }
        py::ExprKind::Lambda(_) => Err(Bail::NestedDef),
        py::ExprKind::ListComp { .. } => Err(Bail::Loop),
    }
}

fn lower_binop(ctx: &mut LowerCtx, op: py::BinOp, l: Lowered, r: Lowered) -> Result<Lowered, Bail> {
    ctx.spend(1)?;
    // String concatenation is the one non-numeric arithmetic the engine
    // matches (`'a' + 'b'`).
    if op == py::BinOp::Add && l.ty == Ty::Str && r.ty == Ty::Str {
        return Ok(Lowered {
            expr: SqlExpr::Binary {
                left: Box::new(l.expr),
                op: BinaryOp::Add,
                right: Box::new(r.expr),
            },
            ty: Ty::Str,
        });
    }
    if !l.ty.numeric() || !r.ty.numeric() {
        return Err(Bail::MixedTypes);
    }
    let both_int = matches!(l.ty, Ty::Int | Ty::Bool) && matches!(r.ty, Ty::Int | Ty::Bool);
    let any_float = l.ty == Ty::Float || r.ty == Ty::Float;
    let (sql_op, ty) = match op {
        py::BinOp::Add => (
            BinaryOp::Add,
            if both_int {
                Ty::Int
            } else if any_float {
                Ty::Float
            } else {
                Ty::Num
            },
        ),
        py::BinOp::Sub => (
            BinaryOp::Sub,
            if both_int {
                Ty::Int
            } else if any_float {
                Ty::Float
            } else {
                Ty::Num
            },
        ),
        py::BinOp::Mul => (
            BinaryOp::Mul,
            if both_int {
                Ty::Int
            } else if any_float {
                Ty::Float
            } else {
                Ty::Num
            },
        ),
        // Python `/` is true division: always float. Cast both sides so
        // the engine's integer-truncating `/` never fires.
        py::BinOp::Div => {
            let cast = |e: SqlExpr| SqlExpr::Cast {
                expr: Box::new(e),
                target: SqlType::Double,
            };
            return Ok(Lowered {
                expr: SqlExpr::Binary {
                    left: Box::new(cast(l.expr)),
                    op: BinaryOp::Div,
                    right: Box::new(cast(r.expr)),
                },
                ty: Ty::Float,
            });
        }
        py::BinOp::FloorDiv => (
            BinaryOp::FloorDiv,
            if both_int {
                Ty::Int
            } else if any_float {
                Ty::Float
            } else {
                Ty::Num
            },
        ),
        py::BinOp::Mod => (
            BinaryOp::FloorMod,
            if both_int {
                Ty::Int
            } else if any_float {
                Ty::Float
            } else {
                Ty::Num
            },
        ),
        // `**` may go float on negative exponents even for int operands.
        py::BinOp::Pow => (BinaryOp::Pow, if any_float { Ty::Float } else { Ty::Num }),
        py::BinOp::BitAnd | py::BinOp::BitOr | py::BinOp::BitXor => {
            return Err(Bail::UnsupportedExpr("bitwise"))
        }
    };
    Ok(Lowered {
        expr: SqlExpr::Binary {
            left: Box::new(l.expr),
            op: sql_op,
            right: Box::new(r.expr),
        },
        ty,
    })
}

/// The builtin whitelist. Aggregates require their argument to reference at
/// least one parameter (a column at runtime); `float`/`int`/`abs` are
/// elementwise.
fn lower_builtin(
    ctx: &mut LowerCtx,
    name: &str,
    args: &[py::Expr],
    env: &Env,
) -> Result<Lowered, Bail> {
    if args.len() != 1 {
        return Err(Bail::UnsupportedCall(name.to_string()));
    }
    let arg = lower_expr(ctx, &args[0], env)?;
    match name {
        "sum" | "len" | "min" | "max" => {
            let mut deps = BTreeSet::new();
            collect_cond_params(&arg.expr, false, &mut deps);
            if deps.is_empty() {
                // Python `sum(3)` / `len(3)` is a TypeError; only
                // parameter-backed (column) arguments iterate.
                return Err(Bail::UnsupportedCall(name.to_string()));
            }
            ctx.uses_aggregates = true;
            match name {
                "sum" => {
                    if !arg.ty.numeric() {
                        return Err(Bail::MixedTypes);
                    }
                    // `sum` over booleans yields an int in Python; cast so
                    // the engine's SUM sees integers too.
                    let (expr, ty) = if arg.ty == Ty::Bool {
                        (
                            SqlExpr::Cast {
                                expr: Box::new(arg.expr),
                                target: SqlType::Integer,
                            },
                            Ty::Int,
                        )
                    } else {
                        (arg.expr, arg.ty)
                    };
                    Ok(Lowered {
                        expr: SqlExpr::Call {
                            name: "sum".into(),
                            args: vec![expr],
                        },
                        ty,
                    })
                }
                "len" => Ok(Lowered {
                    expr: SqlExpr::Call {
                        name: "count".into(),
                        args: vec![arg.expr],
                    },
                    ty: Ty::Int,
                }),
                "min" | "max" => Ok(Lowered {
                    expr: SqlExpr::Call {
                        name: name.to_string(),
                        args: vec![arg.expr],
                    },
                    ty: arg.ty,
                }),
                _ => unreachable!(),
            }
        }
        "abs" => {
            if !arg.ty.numeric() {
                return Err(Bail::MixedTypes);
            }
            let (expr, ty) = if arg.ty == Ty::Bool {
                (
                    SqlExpr::Cast {
                        expr: Box::new(arg.expr),
                        target: SqlType::Integer,
                    },
                    Ty::Int,
                )
            } else {
                (arg.expr, arg.ty)
            };
            Ok(Lowered {
                expr: SqlExpr::Call {
                    name: "abs".into(),
                    args: vec![expr],
                },
                ty,
            })
        }
        "float" => {
            // pylite's float() is NOT vectorized: it raises TypeError on an
            // array argument. Record the params this cast can see so the
            // runtime bails when one is column-bound in operator-at-a-time
            // mode (the interpreter must raise).
            collect_cond_params(&arg.expr, false, &mut ctx.cast_params);
            Ok(Lowered {
                expr: SqlExpr::Cast {
                    expr: Box::new(arg.expr),
                    target: SqlType::Double,
                },
                ty: Ty::Float,
            })
        }
        "int" => {
            // Python `int()` truncates toward zero — exactly the engine's
            // DOUBLE→INTEGER cast. `int(str)` parse errors fall back.
            // Like float(), pylite's int() rejects arrays — track deps.
            collect_cond_params(&arg.expr, false, &mut ctx.cast_params);
            Ok(Lowered {
                expr: SqlExpr::Cast {
                    expr: Box::new(arg.expr),
                    target: SqlType::Integer,
                },
                ty: Ty::Int,
            })
        }
        other => Err(Bail::UnsupportedCall(other.to_string())),
    }
}

// ----------------------------------------------------------------------
// Invocation
// ----------------------------------------------------------------------

/// Outcome of attempting one inlined invocation.
pub enum InlineOutcome {
    /// Columnar result, same shape `eval_call` would build from the
    /// interpreter's output.
    Done(crate::exec::eval::Evaluated),
    /// Fall back to the interpreter for this invocation.
    Bailed(Bail),
}

/// Execute an inlined plan against the bound inputs.
///
/// `per_row` is true in tuple-at-a-time mode: conditions see one row at a
/// time there (so column-dependent conditions are fine) but aggregates
/// would iterate a scalar (so they are not).
pub fn run_inlined(
    engine: &crate::engine::Engine,
    plan: &InlinePlan,
    inputs: &[(String, UdfInput)],
    per_row: bool,
) -> InlineOutcome {
    // Runtime bail checks, cheapest first.
    if per_row && plan.uses_aggregates {
        return InlineOutcome::Bailed(Bail::ScalarAggregate);
    }
    let mut columns = Vec::new();
    for (name, input) in inputs {
        match input {
            UdfInput::Column(c) => {
                if c.has_nulls() {
                    return InlineOutcome::Bailed(Bail::NullInput);
                }
                if c.is_empty() {
                    return InlineOutcome::Bailed(Bail::EmptyInput);
                }
                if !per_row && plan.cond_params.contains(name.as_str()) {
                    return InlineOutcome::Bailed(Bail::ColumnCondition);
                }
                if !per_row && plan.cast_params.contains(name.as_str()) {
                    return InlineOutcome::Bailed(Bail::ColumnCast);
                }
                let mut col = c.clone();
                col.name = name.clone();
                columns.push(col);
            }
            UdfInput::Scalar(_) => {}
        }
    }
    if !per_row && plan.uses_aggregates {
        // Aggregates need every aggregated parameter column-bound; a scalar
        // binding means Python would raise "not iterable".
        let column_names: BTreeSet<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        if plan
            .agg_params
            .iter()
            .any(|p| !column_names.contains(p.as_str()))
        {
            return InlineOutcome::Bailed(Bail::ScalarAggregate);
        }
    }
    // Substitute scalar-bound parameters as literals. All-column calls (the
    // common case) evaluate the cached plan expression without cloning it.
    let substituted;
    let expr: &SqlExpr = if inputs.iter().any(|(_, i)| matches!(i, UdfInput::Scalar(_))) {
        let mut e = plan.expr.clone();
        for (name, input) in inputs {
            if let UdfInput::Scalar(s) = input {
                substitute(&mut e, name, s);
            }
        }
        substituted = e;
        &substituted
    } else {
        &plan.expr
    };
    let table = if columns.is_empty() {
        None
    } else {
        match Table::from_columns("inline_args", columns) {
            Ok(t) => Some(t),
            Err(_) => return InlineOutcome::Bailed(Bail::RuntimeError),
        }
    };
    // Hoist aggregates: evaluate each distinct one once and bind its scalar
    // result, instead of recomputing per use site (variable substitution
    // duplicates them). Errors bail exactly like plain evaluation would.
    let hoisted;
    let expr: &SqlExpr = match (&table, plan.uses_aggregates) {
        (Some(t), true) => match crate::exec::eval::hoist_aggregates(engine, t, expr) {
            Ok(e) => {
                hoisted = e;
                &hoisted
            }
            Err(_) => return InlineOutcome::Bailed(Bail::RuntimeError),
        },
        _ => expr,
    };
    match crate::exec::eval::eval_expr(engine, table.as_ref(), expr) {
        Ok(v) => InlineOutcome::Done(v),
        // Any evaluation error (overflow, div-by-zero, cast failure, …)
        // defers to the interpreter: pylite owns error text and traceback
        // lines, and the subset is pure so re-running is safe.
        Err(_) => InlineOutcome::Bailed(Bail::RuntimeError),
    }
}

/// Collect parameters referenced *inside* aggregate-call arguments.
fn collect_agg_params(expr: &SqlExpr, inside_agg: bool, out: &mut BTreeSet<String>) {
    match expr {
        SqlExpr::Column(name) => {
            if inside_agg {
                out.insert(name.clone());
            }
        }
        SqlExpr::Literal(_) | SqlExpr::Star => {}
        SqlExpr::Unary { expr, .. } => collect_agg_params(expr, inside_agg, out),
        SqlExpr::Binary { left, right, .. } => {
            collect_agg_params(left, inside_agg, out);
            collect_agg_params(right, inside_agg, out);
        }
        SqlExpr::Call { name, args } => {
            let agg = matches!(name.as_str(), "sum" | "count" | "min" | "max");
            for a in args {
                collect_agg_params(a, inside_agg || agg, out);
            }
        }
        SqlExpr::Cast { expr, .. } => collect_agg_params(expr, inside_agg, out),
        SqlExpr::IsNull { expr, .. } => collect_agg_params(expr, inside_agg, out),
        SqlExpr::Like { expr, pattern, .. } => {
            collect_agg_params(expr, inside_agg, out);
            collect_agg_params(pattern, inside_agg, out);
        }
        SqlExpr::InList { expr, list, .. } => {
            collect_agg_params(expr, inside_agg, out);
            for e in list {
                collect_agg_params(e, inside_agg, out);
            }
        }
        SqlExpr::Case { branches, else_ } => {
            for (c, v) in branches {
                collect_agg_params(c, inside_agg, out);
                collect_agg_params(v, inside_agg, out);
            }
            collect_agg_params(else_, inside_agg, out);
        }
    }
}

/// Replace `Column(param)` references with a literal (scalar bindings).
fn substitute(expr: &mut SqlExpr, param: &str, value: &SqlValue) {
    match expr {
        SqlExpr::Column(name) => {
            if name.eq_ignore_ascii_case(param) {
                *expr = SqlExpr::Literal(value.clone());
            }
        }
        SqlExpr::Literal(_) | SqlExpr::Star => {}
        SqlExpr::Unary { expr, .. } => substitute(expr, param, value),
        SqlExpr::Binary { left, right, .. } => {
            substitute(left, param, value);
            substitute(right, param, value);
        }
        SqlExpr::Call { args, .. } => {
            for a in args {
                substitute(a, param, value);
            }
        }
        SqlExpr::Cast { expr, .. } => substitute(expr, param, value),
        SqlExpr::IsNull { expr, .. } => substitute(expr, param, value),
        SqlExpr::Like { expr, pattern, .. } => {
            substitute(expr, param, value);
            substitute(pattern, param, value);
        }
        SqlExpr::InList { expr, list, .. } => {
            substitute(expr, param, value);
            for e in list {
                substitute(e, param, value);
            }
        }
        SqlExpr::Case { branches, else_ } => {
            for (c, v) in branches {
                substitute(c, param, value);
                substitute(v, param, value);
            }
            substitute(else_, param, value);
        }
    }
}

/// Render a lowered expression for EXPLAIN output.
pub fn render_expr(expr: &SqlExpr) -> String {
    match expr {
        SqlExpr::Literal(v) => v.render(),
        SqlExpr::Column(name) => name.clone(),
        SqlExpr::Star => "*".into(),
        SqlExpr::Unary { op, expr } => match op {
            UnaryOp::Neg => format!("-{}", render_expr(expr)),
            UnaryOp::Not => format!("NOT {}", render_expr(expr)),
        },
        SqlExpr::Binary { left, op, right } => format!(
            "({} {} {})",
            render_expr(left),
            op.symbol(),
            render_expr(right)
        ),
        SqlExpr::Call { name, args } => format!(
            "{name}({})",
            args.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        SqlExpr::Cast { expr, target } => {
            format!("CAST({} AS {})", render_expr(expr), target.name())
        }
        SqlExpr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE {}",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(pattern)
        ),
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => format!(
            "{} {}IN ({})",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            list.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        SqlExpr::Case { branches, else_ } => {
            let mut s = String::from("CASE");
            for (c, v) in branches {
                s.push_str(&format!(" WHEN {} THEN {}", render_expr(c), render_expr(v)));
            }
            s.push_str(&format!(" ELSE {} END", render_expr(else_)));
            s
        }
    }
}
