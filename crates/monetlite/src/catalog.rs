//! Catalog: tables, stored functions, and the `sys.*` meta tables.
//!
//! The devUDF plugin works "by querying the databases' meta tables" (paper
//! §2.2); `sys.functions` and `sys.args` are materialized on demand from
//! this catalog so that plain SQL retrieves UDF sources, exactly as the
//! paper's Listing 1 shows.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::DbError;
use crate::table::Table;
#[cfg(test)]
use crate::types::SqlValue;
use crate::types::{Column, ColumnData, SqlType};

/// One live wire session, as reported by the hosting server.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRow {
    pub id: u64,
    pub peer: String,
    pub state: String,
    pub commands: u64,
    pub queue_wait_ns: u64,
}

/// Source of live rows for the `sys.sessions` view. Implemented by the wire
/// server's session registry; direct `Engine` embedders have none and see an
/// empty view.
pub trait SessionProvider: Send + Sync {
    fn sessions(&self) -> Vec<SessionRow>;
}

/// Cloneable handle around a shared [`SessionProvider`]. The catalog derives
/// `Debug` and `Clone`, which a bare trait object cannot, hence the newtype.
#[derive(Clone, Default)]
pub struct SessionSource(Option<Arc<dyn SessionProvider>>);

impl SessionSource {
    pub fn new(provider: Arc<dyn SessionProvider>) -> Self {
        SessionSource(Some(provider))
    }

    fn rows(&self) -> Vec<SessionRow> {
        self.0.as_ref().map(|p| p.sessions()).unwrap_or_default()
    }
}

impl fmt::Debug for SessionSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "SessionSource(server)"
        } else {
            "SessionSource(none)"
        })
    }
}

/// What a stored function returns.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionReturn {
    Scalar(SqlType),
    Table(Vec<(String, SqlType)>),
}

/// A stored (Python) function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<(String, SqlType)>,
    pub returns: FunctionReturn,
    /// Implementation language (always "PYTHON" in this reproduction).
    pub language: String,
    /// The function *body* as stored — no `def` header, exactly like
    /// MonetDB's `sys.functions.func` column (paper Listing 1).
    pub body: String,
}

/// The database catalog.
///
/// `Clone` is cheap by construction: tables share their column storage via
/// `Arc` (see [`Table`]), so cloning the whole catalog — the basis of engine
/// snapshots — copies only the maps and counters, never the data.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    functions: BTreeMap<String, FunctionDef>,
    /// Per-table epoch: the value of `mutations` at the table's most recent
    /// mutation. Epochs are drawn from one monotone counter so a dropped and
    /// recreated table can never reuse an epoch an old cache entry recorded.
    epochs: BTreeMap<String, u64>,
    /// Epoch of the function catalog (covers `sys.functions` / `sys.args`).
    functions_epoch: u64,
    /// Global mutation counter; every DML or DDL statement bumps it.
    mutations: u64,
    /// Live-session source backing `sys.sessions` (set by the wire server).
    sessions: SessionSource,
}

/// Borrowed view of the catalog pieces the snapshot codec serializes:
/// `(tables, functions, per-table epochs, functions_epoch, mutations)`.
pub(crate) type StorageState<'a> = (
    &'a BTreeMap<String, Table>,
    &'a BTreeMap<String, FunctionDef>,
    &'a BTreeMap<String, u64>,
    u64,
    u64,
);

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// The global mutation counter: strictly increases on every DML or DDL
    /// statement, so equal versions imply an identical catalog. This is the
    /// epoch stamped onto engine snapshots.
    pub fn version(&self) -> u64 {
        self.mutations
    }

    /// Install the live-session source backing `sys.sessions`.
    pub fn set_session_source(&mut self, source: SessionSource) {
        self.sessions = source;
    }

    /// Advance the global mutation counter and stamp `key` with it.
    fn bump(&mut self, key: &str) -> u64 {
        self.mutations += 1;
        self.epochs.insert(key.to_string(), self.mutations);
        obs::gauge!("monet.catalog.epoch").set(self.mutations as i64);
        self.mutations
    }

    // ---------------- tables ----------------

    pub fn create_table(&mut self, table: Table) -> Result<(), DbError> {
        let key = Self::key(&table.name);
        if key.starts_with("sys.") {
            return Err(DbError::catalog("the sys schema is read-only"));
        }
        if self.tables.contains_key(&key) {
            return Err(DbError::catalog(format!(
                "table '{}' already exists",
                table.name
            )));
        }
        self.tables.insert(key.clone(), table);
        self.bump(&key);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<(), DbError> {
        let key = Self::key(name);
        if self.tables.remove(&key).is_none() {
            if !if_exists {
                return Err(DbError::catalog(format!("no such table '{name}'")));
            }
            return Ok(());
        }
        // A dropped table has no epoch; any cache entry that recorded one
        // can no longer match and must re-extract.
        self.epochs.remove(&key);
        self.mutations += 1;
        obs::gauge!("monet.catalog.epoch").set(self.mutations as i64);
        Ok(())
    }

    /// Look up a table; `sys.functions` / `sys.args` / `sys.tables` are
    /// materialized views over the catalog, `sys.metrics` over the
    /// telemetry registry, `sys.profile` over the line-level UDF
    /// profiler.
    pub fn table(&self, name: &str) -> Result<Table, DbError> {
        match Self::key(name).as_str() {
            "sys.functions" | "functions" if !self.tables.contains_key("functions") => {
                Ok(self.sys_functions())
            }
            "sys.args" | "args" if !self.tables.contains_key("args") => Ok(self.sys_args()),
            "sys.metrics" | "metrics" if !self.tables.contains_key("metrics") => {
                Ok(self.sys_metrics())
            }
            "sys.tables" | "tables" if !self.tables.contains_key("tables") => Ok(self.sys_tables()),
            "sys.profile" | "profile" if !self.tables.contains_key("profile") => {
                Ok(Self::sys_profile())
            }
            "sys.sessions" | "sessions" if !self.tables.contains_key("sessions") => {
                Ok(self.sys_sessions())
            }
            key => self
                .tables
                .get(key)
                .cloned()
                .ok_or_else(|| DbError::catalog(format!("no such table '{name}'"))),
        }
    }

    /// The epoch a cache entry must match for `name` to be unchanged.
    ///
    /// User tables report the epoch of their most recent mutation; the
    /// function-catalog views (`sys.functions` / `sys.args`) report the
    /// function epoch. Volatile views (`sys.metrics`, `sys.tables`,
    /// `sys.profile`) and unknown names return `None`, which delta
    /// callers must treat as "cannot prove unchanged".
    pub fn table_epoch(&self, name: &str) -> Option<u64> {
        match Self::key(name).as_str() {
            "sys.functions" | "functions" if !self.tables.contains_key("functions") => {
                Some(self.functions_epoch)
            }
            "sys.args" | "args" if !self.tables.contains_key("args") => Some(self.functions_epoch),
            "sys.metrics" | "metrics" if !self.tables.contains_key("metrics") => None,
            "sys.tables" | "tables" if !self.tables.contains_key("tables") => None,
            "sys.profile" | "profile" if !self.tables.contains_key("profile") => None,
            "sys.sessions" | "sessions" if !self.tables.contains_key("sessions") => None,
            key => self.epochs.get(key).copied(),
        }
    }

    /// Epoch of the function catalog (bumped by CREATE/DROP FUNCTION).
    pub fn functions_epoch(&self) -> u64 {
        self.functions_epoch
    }

    /// Everything the snapshot codec must serialize to reproduce this
    /// catalog byte-for-byte: the table and function maps, the per-table
    /// epochs, and the two counters. `sessions` is deliberately absent —
    /// it is a live handle re-installed by whichever server (if any) hosts
    /// the reopened engine.
    ///
    /// See [`StorageState`] for the tuple shape.
    pub(crate) fn storage_state(&self) -> StorageState<'_> {
        (
            &self.tables,
            &self.functions,
            &self.epochs,
            self.functions_epoch,
            self.mutations,
        )
    }

    /// Rebuild a catalog from decoded snapshot state (inverse of
    /// [`Catalog::storage_state`]).
    pub(crate) fn from_storage_state(
        tables: BTreeMap<String, Table>,
        functions: BTreeMap<String, FunctionDef>,
        epochs: BTreeMap<String, u64>,
        functions_epoch: u64,
        mutations: u64,
    ) -> Catalog {
        Catalog {
            tables,
            functions,
            epochs,
            functions_epoch,
            mutations,
            sessions: SessionSource::default(),
        }
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        let key = Self::key(name);
        if !self.tables.contains_key(&key) {
            return Err(DbError::catalog(format!("no such table '{name}'")));
        }
        // Every DML mutation flows through here, so the epoch bump cannot
        // be forgotten by a new statement kind.
        self.bump(&key);
        Ok(self.tables.get_mut(&key).expect("presence checked above"))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name.clone()).collect()
    }

    // ---------------- functions ----------------

    pub fn create_function(&mut self, def: FunctionDef, or_replace: bool) -> Result<(), DbError> {
        let key = Self::key(&def.name);
        if self.functions.contains_key(&key) && !or_replace {
            return Err(DbError::catalog(format!(
                "function '{}' already exists (use CREATE OR REPLACE)",
                def.name
            )));
        }
        self.functions.insert(key, def);
        self.mutations += 1;
        self.functions_epoch = self.mutations;
        obs::gauge!("monet.catalog.epoch").set(self.mutations as i64);
        Ok(())
    }

    pub fn drop_function(&mut self, name: &str, if_exists: bool) -> Result<(), DbError> {
        if self.functions.remove(&Self::key(name)).is_none() {
            if !if_exists {
                return Err(DbError::catalog(format!("no such function '{name}'")));
            }
            return Ok(());
        }
        self.mutations += 1;
        self.functions_epoch = self.mutations;
        obs::gauge!("monet.catalog.epoch").set(self.mutations as i64);
        Ok(())
    }

    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.get(&Self::key(name))
    }

    pub fn function_names(&self) -> Vec<String> {
        self.functions.values().map(|f| f.name.clone()).collect()
    }

    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.functions.values()
    }

    /// The `sys.functions` meta table: (id, name, func, language, return_type).
    pub fn sys_functions(&self) -> Table {
        let mut ids = Vec::new();
        let mut names = Vec::new();
        let mut bodies = Vec::new();
        let mut langs = Vec::new();
        let mut rets = Vec::new();
        for (i, f) in self.functions.values().enumerate() {
            ids.push(i as i64);
            names.push(f.name.clone());
            bodies.push(f.body.clone());
            langs.push(f.language.clone());
            rets.push(match &f.returns {
                FunctionReturn::Scalar(t) => t.name().to_string(),
                FunctionReturn::Table(cols) => {
                    let inner: Vec<String> = cols.iter().map(|(n, t)| format!("{n} {t}")).collect();
                    format!("TABLE({})", inner.join(", "))
                }
            });
        }
        Table::from_columns(
            "sys.functions",
            vec![
                Column::new("id", ColumnData::Int(ids)),
                Column::new("name", ColumnData::Str(names)),
                Column::new("func", ColumnData::Str(bodies)),
                Column::new("language", ColumnData::Str(langs)),
                Column::new("return_type", ColumnData::Str(rets)),
            ],
        )
        .expect("sys.functions columns are same length")
    }

    /// The `sys.args` meta table: (function, name, type, position).
    pub fn sys_args(&self) -> Table {
        let mut funcs = Vec::new();
        let mut names = Vec::new();
        let mut types = Vec::new();
        let mut positions = Vec::new();
        for f in self.functions.values() {
            for (i, (pname, ptype)) in f.params.iter().enumerate() {
                funcs.push(f.name.clone());
                names.push(pname.clone());
                types.push(ptype.name().to_string());
                positions.push(i as i64);
            }
        }
        Table::from_columns(
            "sys.args",
            vec![
                Column::new("function", ColumnData::Str(funcs)),
                Column::new("name", ColumnData::Str(names)),
                Column::new("type", ColumnData::Str(types)),
                Column::new("position", ColumnData::Int(positions)),
            ],
        )
        .expect("sys.args columns are same length")
    }

    /// The `sys.metrics` meta table: a live snapshot of the process-wide
    /// telemetry registry, (name, kind, value, sum, mean, p50, p90, p99).
    /// Counters and gauges fill `value`; histograms fill `value` with
    /// their count plus the sum/mean/percentile columns. Empty when
    /// telemetry is disabled.
    pub fn sys_metrics(&self) -> Table {
        let mut names = Vec::new();
        let mut kinds = Vec::new();
        let mut values = Vec::new();
        let mut sums = Vec::new();
        let mut means = Vec::new();
        let mut p50s = Vec::new();
        let mut p90s = Vec::new();
        let mut p99s = Vec::new();
        for row in obs::metrics::rows() {
            names.push(row.name);
            kinds.push(row.kind.to_string());
            values.push(row.value);
            sums.push(i64::try_from(row.sum).unwrap_or(i64::MAX));
            means.push(row.mean);
            p50s.push(i64::try_from(row.p50).unwrap_or(i64::MAX));
            p90s.push(i64::try_from(row.p90).unwrap_or(i64::MAX));
            p99s.push(i64::try_from(row.p99).unwrap_or(i64::MAX));
        }
        Table::from_columns(
            "sys.metrics",
            vec![
                Column::new("name", ColumnData::Str(names)),
                Column::new("kind", ColumnData::Str(kinds)),
                Column::new("value", ColumnData::Int(values)),
                Column::new("sum", ColumnData::Int(sums)),
                Column::new("mean", ColumnData::Double(means)),
                Column::new("p50", ColumnData::Int(p50s)),
                Column::new("p90", ColumnData::Int(p90s)),
                Column::new("p99", ColumnData::Int(p99s)),
            ],
        )
        .expect("sys.metrics columns are same length")
    }

    /// The `sys.profile` meta table: the line-level UDF profiler's
    /// accumulated rows, (func, line, hits, ns), sorted by (func, line).
    /// Empty unless `obs::profile` has been activated and a UDF has run
    /// since the last reset. Volatile: no epoch, never delta-cached.
    pub fn sys_profile() -> Table {
        let mut funcs = Vec::new();
        let mut lines = Vec::new();
        let mut hits = Vec::new();
        let mut nss = Vec::new();
        for row in obs::profile::rows() {
            funcs.push(row.func);
            lines.push(row.line as i64);
            hits.push(i64::try_from(row.hits).unwrap_or(i64::MAX));
            nss.push(i64::try_from(row.ns).unwrap_or(i64::MAX));
        }
        Table::from_columns(
            "sys.profile",
            vec![
                Column::new("func", ColumnData::Str(funcs)),
                Column::new("line", ColumnData::Int(lines)),
                Column::new("hits", ColumnData::Int(hits)),
                Column::new("ns", ColumnData::Int(nss)),
            ],
        )
        .expect("sys.profile columns are same length")
    }

    /// The `sys.tables` meta table: (name, epoch, rows, columns). One row
    /// per user table, sorted by name; `epoch` is the mutation counter at
    /// the table's most recent change (the delta cache's invalidation key).
    pub fn sys_tables(&self) -> Table {
        let mut names = Vec::new();
        let mut epochs = Vec::new();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for (key, table) in &self.tables {
            names.push(table.name.clone());
            epochs.push(self.epochs.get(key).copied().unwrap_or(0) as i64);
            rows.push(table.row_count() as i64);
            cols.push(table.columns.len() as i64);
        }
        Table::from_columns(
            "sys.tables",
            vec![
                Column::new("name", ColumnData::Str(names)),
                Column::new("epoch", ColumnData::Int(epochs)),
                Column::new("rows", ColumnData::Int(rows)),
                Column::new("columns", ColumnData::Int(cols)),
            ],
        )
        .expect("sys.tables columns are same length")
    }

    /// The `sys.sessions` meta table: one row per live wire session,
    /// (id, peer, state, commands, queue_wait_ns), sorted by id. Empty when
    /// no server is hosting this catalog. Volatile: no epoch, never
    /// delta-cached.
    pub fn sys_sessions(&self) -> Table {
        let mut rows = self.sessions.rows();
        rows.sort_by_key(|r| r.id);
        let mut ids = Vec::new();
        let mut peers = Vec::new();
        let mut states = Vec::new();
        let mut commands = Vec::new();
        let mut waits = Vec::new();
        for r in rows {
            ids.push(i64::try_from(r.id).unwrap_or(i64::MAX));
            peers.push(r.peer);
            states.push(r.state);
            commands.push(i64::try_from(r.commands).unwrap_or(i64::MAX));
            waits.push(i64::try_from(r.queue_wait_ns).unwrap_or(i64::MAX));
        }
        Table::from_columns(
            "sys.sessions",
            vec![
                Column::new("id", ColumnData::Int(ids)),
                Column::new("peer", ColumnData::Str(peers)),
                Column::new("state", ColumnData::Str(states)),
                Column::new("commands", ColumnData::Int(commands)),
                Column::new("queue_wait_ns", ColumnData::Int(waits)),
            ],
        )
        .expect("sys.sessions columns are same length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fn() -> FunctionDef {
        FunctionDef {
            name: "train_rnforest".to_string(),
            params: vec![
                ("data".to_string(), SqlType::Integer),
                ("classes".to_string(), SqlType::Integer),
                ("n_estimators".to_string(), SqlType::Integer),
            ],
            returns: FunctionReturn::Table(vec![
                ("clf".to_string(), SqlType::Blob),
                ("estimators".to_string(), SqlType::Integer),
            ]),
            language: "PYTHON".to_string(),
            body: "import pickle\nreturn {'clf': pickle.dumps(1), 'estimators': n_estimators}"
                .to_string(),
        }
    }

    #[test]
    fn create_and_fetch_function() {
        let mut c = Catalog::new();
        c.create_function(sample_fn(), false).unwrap();
        let f = c.function("TRAIN_RNFOREST").unwrap();
        assert_eq!(f.params.len(), 3);
        assert!(c.create_function(sample_fn(), false).is_err());
        c.create_function(sample_fn(), true).unwrap();
    }

    #[test]
    fn drop_function() {
        let mut c = Catalog::new();
        c.create_function(sample_fn(), false).unwrap();
        c.drop_function("train_rnforest", false).unwrap();
        assert!(c.function("train_rnforest").is_none());
        assert!(c.drop_function("train_rnforest", false).is_err());
        c.drop_function("train_rnforest", true).unwrap();
    }

    #[test]
    fn sys_functions_exposes_source_like_listing1() {
        let mut c = Catalog::new();
        c.create_function(sample_fn(), false).unwrap();
        let t = c.table("sys.functions").unwrap();
        assert_eq!(t.row_count(), 1);
        let name_col = t.column_by_name("name").unwrap();
        let func_col = t.column_by_name("func").unwrap();
        assert_eq!(name_col.get(0), SqlValue::Str("train_rnforest".into()));
        match func_col.get(0) {
            SqlValue::Str(body) => assert!(body.contains("import pickle")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sys_args_lists_parameters_in_order() {
        let mut c = Catalog::new();
        c.create_function(sample_fn(), false).unwrap();
        let t = c.table("sys.args").unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(
            t.column_by_name("name").unwrap().get(2),
            SqlValue::Str("n_estimators".into())
        );
        assert_eq!(
            t.column_by_name("position").unwrap().get(2),
            SqlValue::Int(2)
        );
    }

    #[test]
    fn tables_are_case_insensitive_and_unique() {
        let mut c = Catalog::new();
        c.create_table(Table::new(
            "People",
            &[("id".to_string(), SqlType::Integer)],
        ))
        .unwrap();
        assert!(c.table("people").is_ok());
        assert!(c
            .create_table(Table::new(
                "PEOPLE",
                &[("id".to_string(), SqlType::Integer)]
            ))
            .is_err());
        c.drop_table("People", false).unwrap();
        assert!(c.table("people").is_err());
        assert!(c.drop_table("people", false).is_err());
        c.drop_table("people", true).unwrap();
    }

    #[test]
    fn sys_schema_is_read_only() {
        let mut c = Catalog::new();
        let t = Table::new("sys.fake", &[("x".to_string(), SqlType::Integer)]);
        assert!(c.create_table(t).is_err());
    }

    #[test]
    fn epochs_advance_on_every_mutation_and_never_repeat() {
        let mut c = Catalog::new();
        assert_eq!(c.table_epoch("people"), None);
        c.create_table(Table::new(
            "People",
            &[("id".to_string(), SqlType::Integer)],
        ))
        .unwrap();
        let e1 = c.table_epoch("PEOPLE").expect("created table has epoch");
        c.table_mut("people").unwrap();
        let e2 = c.table_epoch("people").unwrap();
        assert!(e2 > e1, "DML bumps the epoch ({e1} -> {e2})");
        // Dropping removes the epoch; recreating assigns a strictly newer one.
        c.drop_table("people", false).unwrap();
        assert_eq!(c.table_epoch("people"), None);
        c.create_table(Table::new(
            "People",
            &[("id".to_string(), SqlType::Integer)],
        ))
        .unwrap();
        let e3 = c.table_epoch("people").unwrap();
        assert!(e3 > e2, "recreated table cannot reuse an old epoch");
    }

    #[test]
    fn function_ddl_bumps_the_functions_epoch() {
        let mut c = Catalog::new();
        let before = c.functions_epoch();
        c.create_function(sample_fn(), false).unwrap();
        let created = c.functions_epoch();
        assert!(created > before);
        assert_eq!(c.table_epoch("sys.functions"), Some(created));
        assert_eq!(c.table_epoch("sys.args"), Some(created));
        c.drop_function("train_rnforest", false).unwrap();
        assert!(c.functions_epoch() > created);
    }

    #[test]
    fn volatile_views_report_no_epoch() {
        let c = Catalog::new();
        assert_eq!(c.table_epoch("sys.metrics"), None);
        assert_eq!(c.table_epoch("sys.tables"), None);
        assert_eq!(c.table_epoch("sys.profile"), None);
        assert_eq!(c.table_epoch("sys.sessions"), None);
    }

    #[test]
    fn sys_sessions_reflects_the_installed_provider() {
        struct Fake;
        impl SessionProvider for Fake {
            fn sessions(&self) -> Vec<SessionRow> {
                vec![
                    SessionRow {
                        id: 2,
                        peer: "10.0.0.2:9".into(),
                        state: "idle".into(),
                        commands: 7,
                        queue_wait_ns: 120,
                    },
                    SessionRow {
                        id: 1,
                        peer: "in-proc".into(),
                        state: "running".into(),
                        commands: 3,
                        queue_wait_ns: 0,
                    },
                ]
            }
        }
        let mut c = Catalog::new();
        // Without a provider the view exists but is empty.
        assert_eq!(c.table("sys.sessions").unwrap().row_count(), 0);
        c.set_session_source(SessionSource::new(Arc::new(Fake)));
        let t = c.table("sys.sessions").unwrap();
        assert_eq!(
            t.columns
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["id", "peer", "state", "commands", "queue_wait_ns"]
        );
        assert_eq!(t.row_count(), 2);
        // Rows come out sorted by session id.
        assert_eq!(t.column_by_name("id").unwrap().get(0), SqlValue::Int(1));
        assert_eq!(
            t.column_by_name("peer").unwrap().get(1),
            SqlValue::Str("10.0.0.2:9".into())
        );
        assert_eq!(
            t.column_by_name("commands").unwrap().get(1),
            SqlValue::Int(7)
        );
    }

    #[test]
    fn clone_shares_table_storage_and_version() {
        let mut c = Catalog::new();
        c.create_table(Table::new(
            "numbers",
            &[("i".to_string(), SqlType::Integer)],
        ))
        .unwrap();
        let snap = c.clone();
        assert_eq!(snap.version(), c.version());
        // The clone shares column storage (Arc), not a deep copy.
        assert!(Arc::ptr_eq(
            &c.table("numbers").unwrap().columns,
            &snap.table("numbers").unwrap().columns
        ));
        // Mutating the original copies-on-write; the snapshot is unaffected.
        c.table_mut("numbers")
            .unwrap()
            .push_row(&[SqlValue::Int(1)])
            .unwrap();
        assert!(c.version() > snap.version());
        assert_eq!(c.table("numbers").unwrap().row_count(), 1);
        assert_eq!(snap.table("numbers").unwrap().row_count(), 0);
    }

    #[test]
    fn sys_profile_surfaces_profiler_rows() {
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        obs::profile::reset();
        obs::profile::set_active(true);
        obs::profile::record(&[(("f".to_string(), 2), (5, 1_000))]);
        obs::profile::set_active(false);
        let c = Catalog::new();
        let t = c.table("sys.profile").unwrap();
        assert_eq!(
            t.columns
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["func", "line", "hits", "ns"]
        );
        assert_eq!(t.row_count(), 1);
        assert_eq!(
            t.column_by_name("func").unwrap().get(0),
            SqlValue::Str("f".into())
        );
        assert_eq!(t.column_by_name("line").unwrap().get(0), SqlValue::Int(2));
        assert_eq!(t.column_by_name("hits").unwrap().get(0), SqlValue::Int(5));
        assert_eq!(t.column_by_name("ns").unwrap().get(0), SqlValue::Int(1_000));
        obs::profile::reset();
    }

    #[test]
    fn sys_tables_lists_names_epochs_and_shapes() {
        let mut c = Catalog::new();
        c.create_table(Table::new(
            "numbers",
            &[("i".to_string(), SqlType::Integer)],
        ))
        .unwrap();
        let t = c.table("sys.tables").unwrap();
        assert_eq!(
            t.columns
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["name", "epoch", "rows", "columns"]
        );
        assert_eq!(t.row_count(), 1);
        assert_eq!(
            t.column_by_name("name").unwrap().get(0),
            SqlValue::Str("numbers".into())
        );
        assert_eq!(
            t.column_by_name("epoch").unwrap().get(0),
            SqlValue::Int(c.table_epoch("numbers").unwrap() as i64)
        );
    }

    #[test]
    fn sys_metrics_reflects_the_live_registry() {
        let _serial = obs::metrics::test_lock();
        obs::set_enabled(true);
        obs::counter!("test.catalog.visits").add(3);
        let c = Catalog::new();
        let t = c.table("sys.metrics").unwrap();
        assert_eq!(
            t.columns
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["name", "kind", "value", "sum", "mean", "p50", "p90", "p99"]
        );
        let names = match &t.columns[0].data {
            ColumnData::Str(v) => v.clone(),
            other => panic!("{other:?}"),
        };
        let idx = names
            .iter()
            .position(|n| n == "test.catalog.visits")
            .expect("registered counter appears in sys.metrics");
        match &t.columns[2].data {
            ColumnData::Int(v) => assert!(v[idx] >= 3, "value {} < 3", v[idx]),
            other => panic!("{other:?}"),
        }
        // Rows come out sorted so the view is stable across snapshots.
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
