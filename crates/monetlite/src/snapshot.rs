//! Epoch-stamped engine snapshots for concurrent reads.
//!
//! [`Engine`] is deliberately single-threaded (`Rc`/`RefCell` internals,
//! pylite values are `Rc`-based), so concurrency cannot come from sharing an
//! engine across threads. Instead, the writer thread publishes an
//! [`EngineSnapshot`] — a clone of the catalog plus the engine settings —
//! and reader threads *hydrate* a private engine from it.
//!
//! The snapshot is cheap by construction: tables share column storage via
//! `Arc` (see [`crate::table::Table`]), so cloning the catalog copies maps
//! and counters, never data. A subsequent write on the live engine
//! copies-on-write only the mutated table, leaving every published snapshot
//! intact — MVCC at table granularity, versioned by the PR-5 epoch counters.
//!
//! What a snapshot does **not** carry: the engine's virtual filesystem and
//! in-flight extraction state. Command classification
//! ([`crate::classify`]) routes anything that could touch those to the
//! writer, so hydrated readers never miss them.

use crate::catalog::Catalog;
use crate::engine::{Engine, ExecutionModel};

/// An immutable, `Send + Sync` copy of everything a reader needs to execute
/// read-only SQL: the catalog at one epoch plus the engine settings.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    pub catalog: Catalog,
    /// The catalog's global mutation counter at capture time. Equal epochs
    /// imply identical catalogs, so readers key their hydrated-engine cache
    /// on this.
    pub epoch: u64,
    pub model: ExecutionModel,
    pub exec_mode: pylite::ExecMode,
    pub rng_seed: u64,
    pub udf_step_budget: u64,
    pub inline: bool,
}

impl EngineSnapshot {
    /// Build a private, single-threaded engine over this snapshot's state.
    /// The hydrated engine gets a fresh in-memory filesystem; classification
    /// keeps fs-dependent commands on the writer.
    pub fn hydrate(&self) -> Engine {
        Engine::from_snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SqlValue;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_is_send_and_sync() {
        assert_send_sync::<EngineSnapshot>();
    }

    #[test]
    fn hydrated_engine_answers_from_the_captured_epoch() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.epoch, db.catalog_version());

        // Mutate the live engine after the snapshot.
        db.execute("INSERT INTO t VALUES (3)").unwrap();

        let reader = snap.hydrate();
        let t = reader
            .execute("SELECT i FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 2, "snapshot must not see the later INSERT");
        assert_eq!(reader.catalog_version(), snap.epoch);
        let live = db.execute("SELECT i FROM t").unwrap().into_table().unwrap();
        assert_eq!(live.row_count(), 3);
    }

    #[test]
    fn snapshot_carries_engine_settings() {
        let db = Engine::new();
        db.set_rng_seed(42);
        db.set_model(ExecutionModel::TupleAtATime);
        db.set_inline(false);
        db.set_udf_step_budget(1234);
        let reader = db.snapshot().hydrate();
        assert_eq!(reader.rng_seed(), 42);
        assert_eq!(reader.model(), ExecutionModel::TupleAtATime);
        assert!(!reader.inline_enabled());
        assert_eq!(reader.udf_step_budget(), 1234);
    }

    #[test]
    fn hydrated_engine_runs_udfs() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (10), (20)").unwrap();
        db.execute(
            "CREATE FUNCTION double(i INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return i * 2 }",
        )
        .unwrap();
        let reader = db.snapshot().hydrate();
        let t = reader
            .execute("SELECT double(i) FROM t")
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(20));
        assert_eq!(t.row(1)[0], SqlValue::Int(40));
    }

    #[test]
    fn snapshots_share_column_storage_across_threads() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (i INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let snap = db.snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = snap.clone();
                std::thread::spawn(move || {
                    let reader = s.hydrate();
                    let t = reader
                        .execute("SELECT i FROM t")
                        .unwrap()
                        .into_table()
                        .unwrap();
                    t.row_count()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
    }
}
