//! Join execution: hash equi-join fast path, nested-loop fallback.

use crate::engine::Engine;
use crate::error::DbError;
use crate::exec::eval;
use crate::sql::ast::{BinaryOp, JoinKind, SqlExpr};
use crate::table::Table;
use crate::types::{Column, SqlValue};

/// Qualify every column of `table` as `<alias>.<name>` unless it is already
/// qualified (joined intermediates keep their qualifiers).
pub fn qualify(mut table: Table, alias: &str) -> Table {
    for c in table.columns_mut() {
        if !c.name.contains('.') {
            c.name = format!("{alias}.{}", c.name);
        }
    }
    table
}

/// Execute a join between two materialized sides.
pub fn run_join(
    engine: &Engine,
    left: Table,
    right: Table,
    on: &SqlExpr,
    kind: JoinKind,
) -> Result<Table, DbError> {
    // Equi-join fast path: ON <colref> = <colref> with one side each.
    if let SqlExpr::Binary {
        left: l,
        op: BinaryOp::Eq,
        right: r,
    } = on
    {
        if let (SqlExpr::Column(a), SqlExpr::Column(b)) = (l.as_ref(), r.as_ref()) {
            let la = eval::resolve_column(&left, a).ok();
            let ra = eval::resolve_column(&right, b).ok();
            let lb = eval::resolve_column(&left, b).ok();
            let rb = eval::resolve_column(&right, a).ok();
            let pair = match (la, ra, lb, rb) {
                (Some(lc), Some(rc), _, _) => Some((lc.clone(), rc.clone())),
                (_, _, Some(lc), Some(rc)) => Some((lc.clone(), rc.clone())),
                _ => None,
            };
            if let Some((lkey, rkey)) = pair {
                return hash_join(&left, &right, &lkey, &rkey, kind);
            }
        }
    }
    nested_loop_join(engine, &left, &right, on, kind)
}

/// A hashable rendering of a join key (NULL never matches anything).
fn key_of(v: &SqlValue) -> Option<String> {
    match v {
        SqlValue::Null => None,
        SqlValue::Int(i) => Some(format!("i{i}")),
        SqlValue::Double(d) => {
            // Normalize integral doubles so 1 == 1.0 joins.
            if d.fract() == 0.0 && d.is_finite() {
                Some(format!("i{}", *d as i64))
            } else {
                Some(format!("d{d}"))
            }
        }
        SqlValue::Str(s) => Some(format!("s{s}")),
        SqlValue::Bool(b) => Some(format!("b{b}")),
        SqlValue::Blob(b) => Some(format!("x{}", codecs_hex(b))),
    }
}

fn codecs_hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn hash_join(
    left: &Table,
    right: &Table,
    lkey: &Column,
    rkey: &Column,
    kind: JoinKind,
) -> Result<Table, DbError> {
    // Build side: right.
    let mut index: std::collections::HashMap<String, Vec<usize>> = std::collections::HashMap::new();
    for row in 0..right.row_count() {
        if let Some(k) = key_of(&rkey.get(row)) {
            index.entry(k).or_default().push(row);
        }
    }
    let mut left_rows = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for lrow in 0..left.row_count() {
        match key_of(&lkey.get(lrow)).and_then(|k| index.get(&k)) {
            Some(matches) => {
                for &rrow in matches {
                    left_rows.push(lrow);
                    right_rows.push(Some(rrow));
                }
            }
            None => {
                if kind == JoinKind::Left {
                    left_rows.push(lrow);
                    right_rows.push(None);
                }
            }
        }
    }
    assemble(left, right, &left_rows, &right_rows)
}

fn nested_loop_join(
    engine: &Engine,
    left: &Table,
    right: &Table,
    on: &SqlExpr,
    kind: JoinKind,
) -> Result<Table, DbError> {
    // Evaluate the predicate once over the full cross product, columnar.
    let (n, m) = (left.row_count(), right.row_count());
    let mut cross_cols: Vec<Column> = Vec::with_capacity(left.columns.len() + right.columns.len());
    for c in left.columns.iter() {
        let perm: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, m)).collect();
        cross_cols.push(c.permute(&perm));
    }
    for c in right.columns.iter() {
        let perm: Vec<usize> = (0..n).flat_map(|_| 0..m).collect();
        cross_cols.push(c.permute(&perm));
    }
    let cross = Table::from_columns("join", cross_cols)?;
    let mask = eval::predicate_mask(engine, &cross, on)?;

    let mut left_rows = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for i in 0..n {
        let mut matched = false;
        for j in 0..m {
            if mask[i * m + j] {
                left_rows.push(i);
                right_rows.push(Some(j));
                matched = true;
            }
        }
        if !matched && kind == JoinKind::Left {
            left_rows.push(i);
            right_rows.push(None);
        }
    }
    assemble(left, right, &left_rows, &right_rows)
}

/// Build the output table from matched row pairs.
fn assemble(
    left: &Table,
    right: &Table,
    left_rows: &[usize],
    right_rows: &[Option<usize>],
) -> Result<Table, DbError> {
    let mut columns = Vec::with_capacity(left.columns.len() + right.columns.len());
    for c in left.columns.iter() {
        columns.push(c.permute(left_rows));
    }
    for c in right.columns.iter() {
        let mut out = Column::empty(c.name.clone(), c.sql_type());
        for r in right_rows {
            match r {
                Some(row) => out.push(&c.get(*row))?,
                None => out.push(&SqlValue::Null)?,
            }
        }
        columns.push(out);
    }
    Table::from_columns("join", columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn orders_db() -> Engine {
        let db = Engine::new();
        db.execute("CREATE TABLE customers (id INTEGER, name STRING)")
            .unwrap();
        db.execute("INSERT INTO customers VALUES (1, 'ada'), (2, 'bob'), (3, 'eve')")
            .unwrap();
        db.execute("CREATE TABLE orders (id INTEGER, cust INTEGER, total INTEGER)")
            .unwrap();
        db.execute("INSERT INTO orders VALUES (10, 1, 100), (11, 1, 50), (12, 2, 75), (13, 9, 1)")
            .unwrap();
        db
    }

    #[test]
    fn inner_equi_join() {
        let db = orders_db();
        let t = db
            .execute(
                "SELECT customers.name, orders.total FROM orders JOIN customers ON orders.cust = customers.id ORDER BY orders.total",
            )
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.row(0)[0], SqlValue::Str("ada".into()));
        assert_eq!(t.row(0)[1], SqlValue::Int(50));
        assert_eq!(t.row(2)[1], SqlValue::Int(100));
    }

    #[test]
    fn left_join_pads_nulls() {
        let db = orders_db();
        let t = db
            .execute(
                "SELECT o.id, c.name FROM orders o LEFT JOIN customers c ON o.cust = c.id ORDER BY o.id",
            )
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 4);
        // Order 13 has no customer: name is NULL.
        assert_eq!(t.row(3)[0], SqlValue::Int(13));
        assert_eq!(t.row(3)[1], SqlValue::Null);
    }

    #[test]
    fn aliases_qualify_ambiguous_columns() {
        let db = orders_db();
        // Both tables have `id`; qualification disambiguates.
        let t = db
            .execute(
                "SELECT o.id, c.id FROM orders o JOIN customers c ON o.cust = c.id ORDER BY o.id",
            )
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row(0)[0], SqlValue::Int(10));
        assert_eq!(t.row(0)[1], SqlValue::Int(1));
        // A bare ambiguous `id` is an error.
        let err = db
            .execute("SELECT id FROM orders o JOIN customers c ON o.cust = c.id")
            .unwrap_err();
        assert!(err.message.contains("ambiguous"), "{err}");
    }

    #[test]
    fn join_with_aggregation() {
        let db = orders_db();
        let t = db
            .execute(
                "SELECT c.name, sum(o.total) AS spent FROM orders o JOIN customers c ON o.cust = c.id GROUP BY c.name ORDER BY spent DESC",
            )
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(
            t.row(0),
            vec![SqlValue::Str("ada".into()), SqlValue::Int(150)]
        );
        assert_eq!(
            t.row(1),
            vec![SqlValue::Str("bob".into()), SqlValue::Int(75)]
        );
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let db = orders_db();
        let t = db
            .execute("SELECT count(*) FROM orders o JOIN customers c ON o.cust < c.id")
            .unwrap()
            .into_table()
            .unwrap();
        // cust=1 matches ids 2,3 (×2 orders) ; cust=2 matches id 3.
        assert_eq!(t.row(0)[0], SqlValue::Int(5));
    }

    #[test]
    fn chained_three_way_join() {
        let db = orders_db();
        db.execute("CREATE TABLE regions (cust INTEGER, region STRING)")
            .unwrap();
        db.execute("INSERT INTO regions VALUES (1, 'eu'), (2, 'us')")
            .unwrap();
        let t = db
            .execute(
                "SELECT c.name, r.region FROM orders o JOIN customers c ON o.cust = c.id JOIN regions r ON r.cust = c.id ORDER BY c.name",
            )
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.row(0)[1], SqlValue::Str("eu".into()));
        assert_eq!(t.row(2)[1], SqlValue::Str("us".into()));
    }

    #[test]
    fn join_against_subquery() {
        let db = orders_db();
        let t = db
            .execute(
                "SELECT c.name FROM (SELECT cust FROM orders WHERE total > 60) big JOIN customers c ON big.cust = c.id ORDER BY c.name",
            )
            .unwrap()
            .into_table()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(0)[0], SqlValue::Str("ada".into()));
        assert_eq!(t.row(1)[0], SqlValue::Str("bob".into()));
    }
}
